"""Dataset inspection: composition and signal-quality statistics.

Summarises a :class:`~repro.data.dataset.HandPoseDataset` the way a data
sheet would -- per-user/environment/gesture composition, label geometry
(distance and workspace coverage) and a cube SNR proxy -- so campaigns
can be sanity-checked before spending training time on them.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

import numpy as np

from repro.data.dataset import HandPoseDataset
from repro.errors import DatasetError


def composition(dataset: HandPoseDataset) -> Dict[str, Dict[str, int]]:
    """Segment counts per user, environment, gesture and condition."""
    if len(dataset) == 0:
        raise DatasetError("cannot summarise an empty dataset")
    return {
        "users": dict(
            Counter(str(m.user_id) for m in dataset.meta)
        ),
        "environments": dict(
            Counter(m.environment for m in dataset.meta)
        ),
        "gestures": dict(Counter(m.gesture for m in dataset.meta)),
        "conditions": dict(Counter(m.condition for m in dataset.meta)),
    }


def label_statistics(dataset: HandPoseDataset) -> Dict[str, float]:
    """Geometry of the labels: distance band and workspace extents."""
    if len(dataset) == 0:
        raise DatasetError("cannot summarise an empty dataset")
    wrists = dataset.labels[:, 0, :]
    distances = np.linalg.norm(wrists, axis=1)
    spans = dataset.labels.max(axis=1) - dataset.labels.min(axis=1)
    label_noise = np.linalg.norm(
        dataset.labels - dataset.true_joints, axis=2
    )
    return {
        "distance_min_m": float(distances.min()),
        "distance_mean_m": float(distances.mean()),
        "distance_max_m": float(distances.max()),
        "hand_span_mean_m": float(spans.mean()),
        "label_noise_mean_mm": float(label_noise.mean() * 1000.0),
        "label_noise_p95_mm": float(
            np.percentile(label_noise, 95) * 1000.0
        ),
    }


def cube_statistics(dataset: HandPoseDataset) -> Dict[str, float]:
    """Signal statistics of the radar cubes.

    The SNR proxy compares the mean of the strongest 1% of cube cells
    (target returns) against the median cell (noise floor), in dB of the
    log-magnitude domain's linear equivalent.
    """
    if len(dataset) == 0:
        raise DatasetError("cannot summarise an empty dataset")
    values = dataset.segments
    flat = values.reshape(len(values), -1)
    top = np.quantile(flat, 0.99, axis=1)
    floor = np.median(flat, axis=1)
    # Cube cells store log1p magnitudes; convert back for a power ratio.
    linear_top = np.expm1(top)
    linear_floor = np.maximum(np.expm1(floor), 1e-9)
    snr_db = 20.0 * np.log10(np.maximum(linear_top / linear_floor, 1e-9))
    return {
        "cube_mean": float(values.mean()),
        "cube_max": float(values.max()),
        "occupancy_percent": float(
            (flat > 0.05 * flat.max()).mean() * 100.0
        ),
        "snr_proxy_db_mean": float(snr_db.mean()),
        "snr_proxy_db_min": float(snr_db.min()),
    }


def summarize(dataset: HandPoseDataset) -> str:
    """Human-readable multi-section dataset summary."""
    comp = composition(dataset)
    labels = label_statistics(dataset)
    cubes = cube_statistics(dataset)
    lines = [f"dataset: {len(dataset)} segments"]
    lines.append(
        "users: " + ", ".join(
            f"{k}:{v}" for k, v in sorted(comp["users"].items())
        )
    )
    lines.append(
        "environments: " + ", ".join(
            f"{k}:{v}" for k, v in sorted(comp["environments"].items())
        )
    )
    lines.append(
        f"distance: {labels['distance_min_m']:.2f}-"
        f"{labels['distance_max_m']:.2f} m "
        f"(mean {labels['distance_mean_m']:.2f})"
    )
    lines.append(
        f"label noise: {labels['label_noise_mean_mm']:.1f} mm mean, "
        f"{labels['label_noise_p95_mm']:.1f} mm p95"
    )
    lines.append(
        f"cube SNR proxy: {cubes['snr_proxy_db_mean']:.1f} dB mean"
    )
    return "\n".join(lines)
