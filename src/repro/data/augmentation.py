"""Train-time radar-cube augmentation.

The paper trains on 1.5M real frames; at simulation scale, augmenting
cube segments improves cross-user generalisation. All transforms act on
the log-magnitude cube and preserve label validity:

* amplitude gain/noise -- per-subject reflectivity and RCS speckle vary;
* Doppler flip with velocity-consistent label (disabled by default: it
  would require reversing time);
* small range-axis shifts with matching label translation along
  boresight -- the dominant placement variation;
* frame dropout -- emulates occasional weak frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True)
class AugmentationConfig:
    """Augmentation strengths; zeros disable each transform."""

    gain_std: float = 0.08
    noise_std: float = 0.02
    range_shift_bins: int = 1
    range_resolution_m: float = 0.03747405725
    frame_dropout_prob: float = 0.05

    def __post_init__(self) -> None:
        if self.gain_std < 0 or self.noise_std < 0:
            raise DatasetError("augmentation stds must be non-negative")
        if self.range_shift_bins < 0:
            raise DatasetError("range_shift_bins must be >= 0")
        if not 0.0 <= self.frame_dropout_prob < 1.0:
            raise DatasetError("frame_dropout_prob must lie in [0, 1)")
        if self.range_resolution_m <= 0:
            raise DatasetError("range_resolution_m must be positive")


def augment_batch(
    segments: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    config: AugmentationConfig = AugmentationConfig(),
) -> Tuple[np.ndarray, np.ndarray]:
    """Augment a batch of (segments, labels) consistently.

    ``segments``: (B, st, V, D, A) log-magnitude cubes;
    ``labels``: (B, 21, 3) joints in metres. Returns new arrays; inputs
    are not modified.
    """
    segments = np.asarray(segments, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.float32)
    if segments.ndim != 5:
        raise DatasetError(
            f"expected (B, st, V, D, A) segments, got {segments.shape}"
        )
    if labels.shape != (len(segments), 21, 3):
        raise DatasetError("labels must have shape (B, 21, 3)")
    out_x = segments.copy()
    out_y = labels.copy()
    batch = len(segments)

    if config.gain_std > 0:
        gains = rng.normal(1.0, config.gain_std, size=(batch, 1, 1, 1, 1))
        out_x *= np.abs(gains).astype(np.float32)

    if config.noise_std > 0:
        out_x += rng.normal(
            0.0, config.noise_std, size=out_x.shape
        ).astype(np.float32)
        np.clip(out_x, 0.0, None, out=out_x)

    if config.range_shift_bins > 0:
        shifts = rng.integers(
            -config.range_shift_bins, config.range_shift_bins + 1,
            size=batch,
        )
        for b, shift in enumerate(shifts):
            if shift == 0:
                continue
            out_x[b] = np.roll(out_x[b], shift, axis=2)
            if shift > 0:
                out_x[b, :, :, :shift, :] = 0.0
            else:
                out_x[b, :, :, shift:, :] = 0.0
            # The radar cube's range axis is boresight (+x): shift the
            # label the same physical amount.
            out_y[b, :, 0] += shift * config.range_resolution_m

    if config.frame_dropout_prob > 0:
        drops = rng.random(size=(batch, segments.shape[1]))
        mask = drops < config.frame_dropout_prob
        for b, frame in np.argwhere(mask):
            out_x[b, frame] *= 0.2
    return out_x, out_y
