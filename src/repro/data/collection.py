"""Simulated data-collection campaign (paper Sec. VI-A).

Mirrors the paper's setup: subjects stand in front of the radar, keep the
hand 20-40 cm away, and perform continuous interaction/counting gestures
while radar and depth camera record synchronously. One *capture* is a
continuous gesture sequence producing several radar-cube segments; a
campaign runs many captures per subject under configurable conditions
(environment, body position, gloves, handheld objects, occluders,
distance and angle overrides).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CampaignConfig, DspConfig, RadarConfig
from repro.data.dataset import HandPoseDataset, SegmentMeta
from repro.data.groundtruth import CameraNoiseModel, camera_ground_truth
from repro.dsp.radar_cube import CubeBuilder, segment_cube
from repro.errors import DatasetError
from repro.hand.animation import sample_gesture_sequence
from repro.hand.gestures import list_gestures
from repro.hand.kinematics import forward_kinematics
from repro.hand.subjects import Subject, make_subjects
from repro.radar.clutter import (
    ENVIRONMENTS,
    OCCLUDER_MATERIALS,
    BodyPosition,
    body_scatterers,
    environment_scatterers,
    occluder_scatterers,
)
from repro.radar.radar import RadarSimulator
from repro.radar.scatterers import (
    GLOVE_MATERIALS,
    HANDHELD_OBJECTS,
    hand_scatterers,
)
from repro.radar.scene import Scatterers, Scene


@dataclass(frozen=True)
class CaptureOptions:
    """Conditions of one capture session.

    ``distance_m`` / ``angle_deg`` override the sampled hand placement
    (used by the distance/angle sweeps); ``glove`` / ``handheld`` /
    ``occluder`` name entries of the corresponding registries.
    """

    environment: str = "classroom"
    body_position: BodyPosition = BodyPosition.FRONT
    glove: Optional[str] = None
    handheld: Optional[str] = None
    occluder: Optional[str] = None
    distance_m: Optional[float] = None
    angle_deg: float = 0.0
    gestures: Optional[Tuple[str, ...]] = None
    segments_per_capture: int = 4

    def __post_init__(self) -> None:
        if self.environment not in ENVIRONMENTS:
            raise DatasetError(f"unknown environment {self.environment!r}")
        if self.glove is not None and self.glove not in GLOVE_MATERIALS:
            raise DatasetError(f"unknown glove {self.glove!r}")
        if self.handheld is not None and self.handheld not in HANDHELD_OBJECTS:
            raise DatasetError(f"unknown handheld object {self.handheld!r}")
        if self.occluder is not None and self.occluder not in OCCLUDER_MATERIALS:
            raise DatasetError(f"unknown occluder {self.occluder!r}")
        if self.segments_per_capture < 1:
            raise DatasetError("segments_per_capture must be >= 1")

    @property
    def condition_tag(self) -> str:
        """Compact label recorded in segment metadata."""
        tags = []
        if self.glove:
            tags.append(f"glove:{self.glove}")
        if self.handheld:
            tags.append(f"handheld:{self.handheld}")
        if self.occluder:
            tags.append(f"occluder:{self.occluder}")
        if self.body_position is not BodyPosition.FRONT:
            tags.append(f"body:{self.body_position.value}")
        return "+".join(tags) if tags else "baseline"


class CampaignGenerator:
    """Generates labelled radar-cube datasets under arbitrary conditions."""

    def __init__(
        self,
        radar: Optional[RadarConfig] = None,
        dsp: Optional[DspConfig] = None,
        campaign: Optional[CampaignConfig] = None,
        noise_model: CameraNoiseModel = CameraNoiseModel(),
    ) -> None:
        self.radar = radar if radar is not None else RadarConfig()
        self.dsp = dsp if dsp is not None else DspConfig()
        self.campaign = campaign if campaign is not None else CampaignConfig()
        self.noise_model = noise_model
        self.builder = CubeBuilder(self.radar, self.dsp)

    # ------------------------------------------------------------------
    def capture(
        self,
        subject: Subject,
        options: CaptureOptions,
        rng: np.random.Generator,
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], List[SegmentMeta]]:
        """Run one continuous-gesture capture and return per-segment
        (cube segment, camera label, true joints, meta) lists."""
        st = self.dsp.segment_frames
        num_frames = options.segments_per_capture * st
        frame_period = self.radar.frame_period_s

        distance = (
            options.distance_m
            if options.distance_m is not None
            else float(rng.uniform(*self.campaign.distance_range_m))
        )
        angle = np.radians(options.angle_deg)
        base = np.array(
            [
                distance * np.cos(angle),
                distance * np.sin(angle),
                float(rng.uniform(-0.03, 0.03)),
            ]
        )
        gestures = (
            list(options.gestures)
            if options.gestures is not None
            else list_gestures()
        )
        sequence = sample_gesture_sequence(
            rng, gestures, num_keyframes=max(2, num_frames // 6),
            base_position=base,
        )
        poses = sequence.sample(frame_period, num_frames)

        shape = subject.hand_shape()
        glove = GLOVE_MATERIALS.get(options.glove) if options.glove else None
        handheld = (
            HANDHELD_OBJECTS.get(options.handheld)
            if options.handheld
            else None
        )
        occluder = (
            OCCLUDER_MATERIALS.get(options.occluder)
            if options.occluder
            else None
        )

        env_seed = int(rng.integers(2**31))
        body_seed = int(rng.integers(2**31))
        occ_seed = int(rng.integers(2**31))
        sim = RadarSimulator(self.radar, seed=int(rng.integers(2**31)))
        scatter_rng = np.random.default_rng(int(rng.integers(2**31)))

        raw_frames = []
        for i, pose in enumerate(poses):
            prev = poses[i - 1] if i > 0 else None
            hand = hand_scatterers(
                shape,
                pose,
                prev_pose=prev,
                frame_period_s=frame_period,
                reflectivity=subject.skin_reflectivity,
                glove=glove,
                handheld=handheld,
                rng=scatter_rng,
            )
            env = environment_scatterers(
                options.environment,
                np.random.default_rng(env_seed),
                time_s=i * frame_period,
            )
            body = body_scatterers(
                options.body_position,
                np.random.default_rng(body_seed),
                body_rcs=subject.body_rcs,
                hand_range_m=distance,
            )
            occ = occluder_scatterers(
                occluder, np.random.default_rng(occ_seed)
            )
            scene = Scene(
                hand=hand,
                background=Scatterers.concatenate([env, body, occ]),
                hand_attenuation=(
                    occluder.transmission if occluder is not None else 1.0
                ),
            )
            raw_frames.append(sim.frame(scene))

        cube = self.builder.build(np.stack(raw_frames))
        segments = segment_cube(cube.values, st)

        seg_data, labels, trues, metas = [], [], [], []
        for s, segment in enumerate(segments):
            # The label is the pose at the segment's final frame: the
            # network regresses the skeleton "at that moment" (Sec. IV).
            pose = poses[(s + 1) * st - 1]
            joints = forward_kinematics(shape, pose)
            label = camera_ground_truth(joints, rng, self.noise_model)
            seg_data.append(segment.astype(np.float32))
            labels.append(label.astype(np.float32))
            trues.append(joints.astype(np.float32))
            metas.append(
                SegmentMeta(
                    user_id=subject.user_id,
                    environment=options.environment,
                    distance_m=distance,
                    angle_deg=options.angle_deg,
                    gesture=sequence.keyframes[-1].gesture,
                    condition=options.condition_tag,
                )
            )
        return seg_data, labels, trues, metas

    # ------------------------------------------------------------------
    def generate(
        self,
        subjects: Optional[Sequence[Subject]] = None,
        options: CaptureOptions = CaptureOptions(),
        segments_per_user: Optional[int] = None,
        seed: Optional[int] = None,
        rotate_environments: bool = True,
    ) -> HandPoseDataset:
        """Generate a full campaign dataset.

        With ``rotate_environments`` (the default) captures cycle through
        the campaign's environments, as in the paper's three test sites;
        the explicit ``options.environment`` is used otherwise.
        """
        if subjects is None:
            subjects = make_subjects(
                self.campaign.num_users, seed=self.campaign.seed
            )
        if segments_per_user is None:
            segments_per_user = self.campaign.segments_per_user
        if seed is None:
            seed = self.campaign.seed
        rng = np.random.default_rng(seed)

        all_segments, all_labels, all_true, all_meta = [], [], [], []
        for subject in subjects:
            collected = 0
            capture_index = 0
            while collected < segments_per_user:
                capture_options = options
                if rotate_environments:
                    env = self.campaign.environments[
                        capture_index % len(self.campaign.environments)
                    ]
                    capture_options = replace(options, environment=env)
                segs, labels, trues, metas = self.capture(
                    subject, capture_options, rng
                )
                take = min(len(segs), segments_per_user - collected)
                all_segments.extend(segs[:take])
                all_labels.extend(labels[:take])
                all_true.extend(trues[:take])
                all_meta.extend(metas[:take])
                collected += take
                capture_index += 1
        return HandPoseDataset(
            segments=np.stack(all_segments),
            labels=np.stack(all_labels),
            true_joints=np.stack(all_true),
            meta=all_meta,
        )
