"""Dataset containers for radar-cube segments and joint labels."""

from __future__ import annotations

import io
import json
import os
import struct
import zipfile
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np
from numpy.lib import format as _npy_format

from repro.errors import DatasetError


@dataclass(frozen=True)
class SegmentMeta:
    """Provenance of one radar-cube segment."""

    user_id: int
    environment: str = "classroom"
    distance_m: float = 0.3
    angle_deg: float = 0.0
    gesture: str = ""
    condition: str = "baseline"


@dataclass
class HandPoseDataset:
    """Aligned arrays of segments, labels and provenance.

    Attributes
    ----------
    segments:
        (N, st, V, D, A) float32 radar-cube segments (log magnitudes).
    labels:
        (N, 21, 3) float32 camera ground-truth joints (what the paper
        trains against -- depth-camera MediaPipe output, itself noisy).
    true_joints:
        (N, 21, 3) float32 simulator-exact joints (available only because
        this is a simulation; used for ground-truth-quality analyses).
    meta:
        Per-segment provenance records.
    """

    segments: np.ndarray
    labels: np.ndarray
    true_joints: np.ndarray
    meta: List[SegmentMeta] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Cast only when needed: an array already in float32 (including a
        # read-only np.memmap from a lazily-opened shard) passes through
        # untouched, so construction never copies multi-GB payloads.
        self.segments = _as_float32(self.segments)
        self.labels = _as_float32(self.labels)
        self.true_joints = _as_float32(self.true_joints)
        n = len(self.segments)
        if self.segments.ndim != 5:
            raise DatasetError(
                f"segments must be 5-D (N, st, V, D, A), got "
                f"{self.segments.shape}"
            )
        if self.labels.shape != (n, 21, 3):
            raise DatasetError(
                f"labels must have shape ({n}, 21, 3), got "
                f"{self.labels.shape}"
            )
        if self.true_joints.shape != (n, 21, 3):
            raise DatasetError("true_joints shape mismatch")
        if len(self.meta) != n:
            raise DatasetError(
                f"need {n} meta records, got {len(self.meta)}"
            )

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def user_ids(self) -> np.ndarray:
        return np.array([m.user_id for m in self.meta])

    def subset(self, indices: Sequence[int]) -> "HandPoseDataset":
        indices = np.asarray(indices, dtype=int)
        return HandPoseDataset(
            segments=self.segments[indices],
            labels=self.labels[indices],
            true_joints=self.true_joints[indices],
            meta=[self.meta[i] for i in indices],
        )

    def for_user(self, user_id: int) -> "HandPoseDataset":
        mask = self.user_ids == user_id
        return self.subset(np.nonzero(mask)[0])

    def filter(self, **conditions) -> "HandPoseDataset":
        """Subset by exact-match meta fields, e.g.
        ``dataset.filter(environment="corridor")``."""
        indices = [
            i
            for i, m in enumerate(self.meta)
            if all(getattr(m, k) == v for k, v in conditions.items())
        ]
        return self.subset(indices)

    @staticmethod
    def concatenate(parts: Sequence["HandPoseDataset"]) -> "HandPoseDataset":
        parts = [p for p in parts if len(p)]
        if not parts:
            raise DatasetError("cannot concatenate zero non-empty datasets")
        return HandPoseDataset(
            segments=np.concatenate([p.segments for p in parts]),
            labels=np.concatenate([p.labels for p in parts]),
            true_joints=np.concatenate([p.true_joints for p in parts]),
            meta=[m for p in parts for m in p.meta],
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_npz_bytes(self, compress: bool = True) -> bytes:
        """The dataset serialised as one in-memory ``.npz`` archive.

        ``compress=False`` stores the arrays raw (``ZIP_STORED``), which
        is what makes :meth:`load`'s ``mmap_mode`` possible -- campaign
        shards are written this way so training can map them instead of
        reading them.
        """
        meta_json = json.dumps([asdict(m) for m in self.meta])
        buffer = io.BytesIO()
        writer = np.savez_compressed if compress else np.savez
        writer(
            buffer,
            segments=self.segments,
            labels=self.labels,
            true_joints=self.true_joints,
            meta=np.frombuffer(meta_json.encode(), dtype=np.uint8),
        )
        return buffer.getvalue()

    def save(
        self, path: Union[str, os.PathLike], compress: bool = True
    ) -> None:
        """Write the dataset as a single ``.npz`` archive."""
        path = os.fspath(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(self.to_npz_bytes(compress=compress))

    @staticmethod
    def load(
        path: Union[str, os.PathLike],
        mmap_mode: Optional[str] = None,
    ) -> "HandPoseDataset":
        """Read a dataset archive back.

        ``mmap_mode="r"`` memory-maps the three arrays directly out of
        the (uncompressed) archive instead of materialising them: open
        cost and resident memory stay O(metadata) no matter how many GB
        the shard holds, and pages are faulted in only as batches touch
        them. Compressed archives (the ``save`` default) cannot be
        mapped and raise :class:`DatasetError` under ``mmap_mode``.
        """
        path = os.fspath(path)
        if not path.endswith(".npz"):
            path = path + ".npz"
        if not os.path.exists(path):
            raise DatasetError(f"no dataset at {path}")
        if mmap_mode is not None:
            if mmap_mode != "r":
                raise DatasetError(
                    f"unsupported mmap_mode {mmap_mode!r}; only 'r' "
                    "(read-only lazy mapping) is available"
                )
            arrays = mmap_npz(
                path, ("segments", "labels", "true_joints")
            )
            with zipfile.ZipFile(path) as zf:
                meta_npy = zf.read("meta.npy")
            # The meta entry is a uint8 .npy; strip its header by
            # parsing it the normal way (tiny, so eager is fine).
            meta_bytes = bytes(
                np.load(io.BytesIO(meta_npy), allow_pickle=False)
            )
            meta = [
                SegmentMeta(**record)
                for record in json.loads(meta_bytes.decode())
            ]
            return HandPoseDataset(meta=meta, **arrays)
        with np.load(path) as archive:
            meta_json = bytes(archive["meta"]).decode()
            meta = [SegmentMeta(**record) for record in json.loads(meta_json)]
            return HandPoseDataset(
                segments=archive["segments"],
                labels=archive["labels"],
                true_joints=archive["true_joints"],
                meta=meta,
            )


def _as_float32(values: np.ndarray) -> np.ndarray:
    """``values`` as float32, copying only if a cast is required."""
    if isinstance(values, np.ndarray) and values.dtype == np.float32:
        return values
    return np.asarray(values, dtype=np.float32)


def mmap_npz(
    path: Union[str, os.PathLike], names: Sequence[str]
) -> Dict[str, np.ndarray]:
    """Memory-map arrays stored inside an uncompressed ``.npz``.

    ``np.load`` ignores ``mmap_mode`` for zipped archives, so this
    resolves each member's byte offset from the zip local header, parses
    the embedded ``.npy`` header, and hands the tail of the file to
    :class:`numpy.memmap`. Only ``ZIP_STORED`` members qualify; a
    compressed member raises :class:`DatasetError` naming the entry.
    """
    path = os.fspath(path)
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf:
        offsets = {}
        for name in names:
            member = name + ".npy"
            try:
                info = zf.getinfo(member)
            except KeyError:
                raise DatasetError(
                    f"{path} has no array {name!r}"
                ) from None
            if info.compress_type != zipfile.ZIP_STORED:
                raise DatasetError(
                    f"{path}:{member} is compressed and cannot be "
                    "memory-mapped; write shards with "
                    "save(compress=False)"
                )
            offsets[name] = info.header_offset
    with open(path, "rb") as fh:
        for name, header_offset in offsets.items():
            fh.seek(header_offset)
            local = fh.read(30)
            if local[:4] != b"PK\x03\x04":
                raise DatasetError(
                    f"{path}: corrupt zip local header for {name!r}"
                )
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            fh.seek(header_offset + 30 + name_len + extra_len)
            version = _npy_format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = (
                    _npy_format.read_array_header_1_0(fh)
                )
            elif version == (2, 0):
                shape, fortran, dtype = (
                    _npy_format.read_array_header_2_0(fh)
                )
            else:
                raise DatasetError(
                    f"{path}:{name} uses npy format {version}, which "
                    "this reader does not memory-map"
                )
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                shape=shape,
                order="F" if fortran else "C",
                offset=fh.tell(),
            )
    return arrays
