"""Dataset containers for radar-cube segments and joint labels."""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import List, Sequence, Union

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True)
class SegmentMeta:
    """Provenance of one radar-cube segment."""

    user_id: int
    environment: str = "classroom"
    distance_m: float = 0.3
    angle_deg: float = 0.0
    gesture: str = ""
    condition: str = "baseline"


@dataclass
class HandPoseDataset:
    """Aligned arrays of segments, labels and provenance.

    Attributes
    ----------
    segments:
        (N, st, V, D, A) float32 radar-cube segments (log magnitudes).
    labels:
        (N, 21, 3) float32 camera ground-truth joints (what the paper
        trains against -- depth-camera MediaPipe output, itself noisy).
    true_joints:
        (N, 21, 3) float32 simulator-exact joints (available only because
        this is a simulation; used for ground-truth-quality analyses).
    meta:
        Per-segment provenance records.
    """

    segments: np.ndarray
    labels: np.ndarray
    true_joints: np.ndarray
    meta: List[SegmentMeta] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.segments = np.asarray(self.segments, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.float32)
        self.true_joints = np.asarray(self.true_joints, dtype=np.float32)
        n = len(self.segments)
        if self.segments.ndim != 5:
            raise DatasetError(
                f"segments must be 5-D (N, st, V, D, A), got "
                f"{self.segments.shape}"
            )
        if self.labels.shape != (n, 21, 3):
            raise DatasetError(
                f"labels must have shape ({n}, 21, 3), got "
                f"{self.labels.shape}"
            )
        if self.true_joints.shape != (n, 21, 3):
            raise DatasetError("true_joints shape mismatch")
        if len(self.meta) != n:
            raise DatasetError(
                f"need {n} meta records, got {len(self.meta)}"
            )

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def user_ids(self) -> np.ndarray:
        return np.array([m.user_id for m in self.meta])

    def subset(self, indices: Sequence[int]) -> "HandPoseDataset":
        indices = np.asarray(indices, dtype=int)
        return HandPoseDataset(
            segments=self.segments[indices],
            labels=self.labels[indices],
            true_joints=self.true_joints[indices],
            meta=[self.meta[i] for i in indices],
        )

    def for_user(self, user_id: int) -> "HandPoseDataset":
        mask = self.user_ids == user_id
        return self.subset(np.nonzero(mask)[0])

    def filter(self, **conditions) -> "HandPoseDataset":
        """Subset by exact-match meta fields, e.g.
        ``dataset.filter(environment="corridor")``."""
        indices = [
            i
            for i, m in enumerate(self.meta)
            if all(getattr(m, k) == v for k, v in conditions.items())
        ]
        return self.subset(indices)

    @staticmethod
    def concatenate(parts: Sequence["HandPoseDataset"]) -> "HandPoseDataset":
        parts = [p for p in parts if len(p)]
        if not parts:
            raise DatasetError("cannot concatenate zero non-empty datasets")
        return HandPoseDataset(
            segments=np.concatenate([p.segments for p in parts]),
            labels=np.concatenate([p.labels for p in parts]),
            true_joints=np.concatenate([p.true_joints for p in parts]),
            meta=[m for p in parts for m in p.meta],
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the dataset as a single ``.npz`` archive."""
        path = os.fspath(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        meta_json = json.dumps([asdict(m) for m in self.meta])
        np.savez_compressed(
            path,
            segments=self.segments,
            labels=self.labels,
            true_joints=self.true_joints,
            meta=np.frombuffer(meta_json.encode(), dtype=np.uint8),
        )

    @staticmethod
    def load(path: Union[str, os.PathLike]) -> "HandPoseDataset":
        path = os.fspath(path)
        if not path.endswith(".npz"):
            path = path + ".npz"
        if not os.path.exists(path):
            raise DatasetError(f"no dataset at {path}")
        with np.load(path) as archive:
            meta_json = bytes(archive["meta"]).decode()
            meta = [SegmentMeta(**record) for record in json.loads(meta_json)]
            return HandPoseDataset(
                segments=archive["segments"],
                labels=archive["labels"],
                true_joints=archive["true_joints"],
                meta=meta,
            )
