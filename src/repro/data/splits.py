"""Cross-validation splits (paper Sec. VI-A).

The paper applies 5-fold cross-validation with the 10 volunteers divided
into 5 sub-datasets of 2 volunteers each: fold ``k`` tests on sub-dataset
``k`` and trains on the remaining 4, so evaluation is always on unseen
users.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError


def kfold_user_splits(
    user_ids: Sequence[int], num_folds: int = 5
) -> List[Tuple[np.ndarray, np.ndarray, List[int]]]:
    """Per-fold (train_indices, test_indices, test_users).

    Users are grouped into ``num_folds`` contiguous sub-datasets in
    ascending user-id order (the paper's pairing of 10 users into 5
    folds of 2).
    """
    user_ids = np.asarray(user_ids)
    unique = np.unique(user_ids)
    if num_folds < 2:
        raise DatasetError("num_folds must be >= 2")
    if len(unique) < num_folds:
        raise DatasetError(
            f"need at least {num_folds} distinct users, got {len(unique)}"
        )
    groups = np.array_split(unique, num_folds)
    folds = []
    for test_users in groups:
        test_mask = np.isin(user_ids, test_users)
        folds.append(
            (
                np.nonzero(~test_mask)[0],
                np.nonzero(test_mask)[0],
                [int(u) for u in test_users],
            )
        )
    return folds
