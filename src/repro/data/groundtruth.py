"""Depth-camera ground-truth model.

The paper's labels are not perfect: they come from MediaPipe Hands run on
a depth camera co-located with the radar. This module models that
labelling channel -- anisotropic per-joint noise (depth is worse than the
image plane), fingertips noisier than palm joints, and occasional tracking
glitches -- so the training labels carry realistic imperfection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.hand.joints import NUM_JOINTS, PALM_JOINTS


@dataclass(frozen=True)
class CameraNoiseModel:
    """Noise statistics of the depth-camera + MediaPipe labelling chain.

    All sigmas in metres. ``depth_sigma_m`` applies along the camera's
    optical axis (world +x, since camera and radar are co-located and
    face the user); ``lateral_sigma_m`` in the image plane. Fingertip
    joints get ``finger_noise_scale`` times more noise; with probability
    ``glitch_rate`` a joint is displaced by ``glitch_sigma_m``.
    """

    lateral_sigma_m: float = 0.0020
    depth_sigma_m: float = 0.0040
    finger_noise_scale: float = 1.6
    glitch_rate: float = 0.002
    glitch_sigma_m: float = 0.02

    def __post_init__(self) -> None:
        if min(self.lateral_sigma_m, self.depth_sigma_m,
               self.glitch_sigma_m) < 0:
            raise DatasetError("noise sigmas must be non-negative")
        if not 0 <= self.glitch_rate <= 1:
            raise DatasetError("glitch_rate must lie in [0, 1]")
        if self.finger_noise_scale < 1:
            raise DatasetError("finger_noise_scale must be >= 1")


def camera_ground_truth(
    joints: np.ndarray,
    rng: np.random.Generator,
    model: CameraNoiseModel = CameraNoiseModel(),
) -> np.ndarray:
    """Noisy 21-joint labels as the depth camera would report them."""
    joints = np.asarray(joints, dtype=float)
    if joints.shape != (NUM_JOINTS, 3):
        raise DatasetError(
            f"expected (21, 3) joints, got {joints.shape}"
        )
    sigma = np.empty((NUM_JOINTS, 3))
    sigma[:, 0] = model.depth_sigma_m
    sigma[:, 1] = model.lateral_sigma_m
    sigma[:, 2] = model.lateral_sigma_m
    finger_mask = np.ones(NUM_JOINTS)
    for j in range(NUM_JOINTS):
        if j not in PALM_JOINTS:
            finger_mask[j] = model.finger_noise_scale
    noisy = joints + rng.normal(0.0, 1.0, size=joints.shape) * sigma * (
        finger_mask[:, None]
    )
    glitches = rng.random(NUM_JOINTS) < model.glitch_rate
    if np.any(glitches):
        noisy[glitches] += rng.normal(
            0.0, model.glitch_sigma_m, size=(int(glitches.sum()), 3)
        )
    return noisy
