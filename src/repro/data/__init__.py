"""Dataset generation and management.

Replaces the paper's (unreleased) 1.5M-frame capture campaign: synthetic
subjects perform continuous gestures in front of the simulated radar, the
DSP produces radar-cube segments, and a depth-camera ground-truth model
labels each segment with (noisy) 21-joint positions, exactly mirroring
the paper's MediaPipe-on-depth-camera labelling.
"""

from repro.data.dataset import HandPoseDataset, SegmentMeta
from repro.data.groundtruth import CameraNoiseModel, camera_ground_truth
from repro.data.collection import CaptureOptions, CampaignGenerator
from repro.data.splits import kfold_user_splits

__all__ = [
    "HandPoseDataset",
    "SegmentMeta",
    "CameraNoiseModel",
    "camera_ground_truth",
    "CaptureOptions",
    "CampaignGenerator",
    "kfold_user_splits",
]
