"""On-disk layout of a sharded generation campaign.

A campaign directory holds uncompressed ``shard-NNNN.npz`` dataset
archives (written atomically, memory-mappable via
``HandPoseDataset.load(mmap_mode="r")``) plus one ``manifest.json``
index. The manifest is the single source of truth for everything a
reader needs *without touching shard data*:

* the generation configs (radar/DSP/campaign/randomization) and their
  canonical SHA-256 hash, so a trainer can refuse mismatched data;
* the seeding tree -- one root ``SeedSequence`` entropy plus each
  shard's ``spawn_key``, which makes every shard reproducible in
  isolation and the whole campaign independent of worker count and
  scheduling order;
* exact per-shard streaming moments (count / sum / sum-of-squares in
  float64) for inputs and labels, merged in shard-index order into the
  global normalization statistics -- bit-identical no matter how many
  processes generated or consume the shards.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import HandPoseDataset
from repro.errors import CampaignError
from repro.resilience.checkpoint import atomic_write_bytes

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT_VERSION = 1


def shard_filename(index: int) -> str:
    """Canonical shard file name (zero-padded for lexical ordering)."""
    return f"shard-{index:04d}.npz"


def config_hash(config: Dict[str, Any]) -> str:
    """SHA-256 of the canonical (sorted-key) JSON of ``config``."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """Plan for one shard, fixed before any generation work starts.

    ``entropy`` / ``spawn_key`` reconstruct the shard's private
    ``np.random.SeedSequence`` exactly: the root sequence is spawned
    once per campaign and child ``spawn_key``s are recorded, so a shard
    regenerated alone (or by a different worker) produces identical
    bytes.
    """

    index: int
    entropy: int
    spawn_key: Tuple[int, ...]
    num_segments: int

    def seed_sequence(self) -> np.random.SeedSequence:
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=self.spawn_key
        )


def plan_shards(
    seed: int, num_shards: int, segments_per_shard: int
) -> List[ShardSpec]:
    """Deterministic shard plan: one spawned seed child per shard."""
    if num_shards < 1:
        raise CampaignError("num_shards must be >= 1")
    if segments_per_shard < 1:
        raise CampaignError("segments_per_shard must be >= 1")
    root = np.random.SeedSequence(seed)
    children = root.spawn(num_shards)
    return [
        ShardSpec(
            index=i,
            entropy=int(child.entropy),
            spawn_key=tuple(int(k) for k in child.spawn_key),
            num_segments=segments_per_shard,
        )
        for i, child in enumerate(children)
    ]


# ----------------------------------------------------------------------
# Streaming moments
# ----------------------------------------------------------------------
def dataset_moments(dataset: HandPoseDataset) -> Dict[str, Any]:
    """Exact float64 count/sum/sumsq moments of one shard's arrays.

    Inputs are summarised as scalars over every cube element (matching
    ``Trainer``'s scalar input normalization); labels per joint
    coordinate (21, 3).
    """
    segments = np.asarray(dataset.segments, dtype=np.float64)
    labels = np.asarray(dataset.labels, dtype=np.float64)
    return {
        "input": {
            "count": int(segments.size),
            "sum": float(segments.sum()),
            "sumsq": float((segments * segments).sum()),
        },
        "label": {
            "count": int(len(labels)),
            "sum": labels.sum(axis=0).tolist(),
            "sumsq": (labels * labels).sum(axis=0).tolist(),
        },
    }


def _merged(shards: Sequence[Dict[str, Any]], key: str):
    """Sum the ``key`` moments over shards in shard-index order."""
    ordered = sorted(shards, key=lambda s: s["index"])
    count = 0
    total: Any = None
    sumsq: Any = None
    for shard in ordered:
        stats = shard["stats"][key]
        count += int(stats["count"])
        part_sum = np.asarray(stats["sum"], dtype=np.float64)
        part_sq = np.asarray(stats["sumsq"], dtype=np.float64)
        total = part_sum if total is None else total + part_sum
        sumsq = part_sq if sumsq is None else sumsq + part_sq
    if count == 0:
        raise CampaignError("cannot merge statistics of zero segments")
    return count, total, sumsq


def merged_input_stats(
    shards: Sequence[Dict[str, Any]],
) -> Tuple[float, float]:
    """Global scalar (mean, std) of the input cubes, exactly as if the
    whole campaign were one in-memory array (modulo float64 rounding of
    the streaming formula, which is itself deterministic)."""
    count, total, sumsq = _merged(shards, "input")
    mean = float(total) / count
    var = max(float(sumsq) / count - mean * mean, 0.0)
    return mean, float(np.sqrt(var))


def merged_label_stats(
    shards: Sequence[Dict[str, Any]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Global per-joint-coordinate label (mean, std), shapes (21, 3)."""
    count, total, sumsq = _merged(shards, "label")
    mean = total / count
    var = np.maximum(sumsq / count - mean * mean, 0.0)
    return mean, np.sqrt(var)


# ----------------------------------------------------------------------
# Shard + manifest I/O
# ----------------------------------------------------------------------
def write_shard(
    directory: str, spec: ShardSpec, dataset: HandPoseDataset
) -> Dict[str, Any]:
    """Atomically publish one shard; returns its manifest record.

    The archive is uncompressed (``ZIP_STORED``) so readers can map it,
    and lands via the checkpoint module's write-tmp+fsync+rename
    discipline: a crashed or preempted worker never leaves a partial
    shard under the canonical name.
    """
    filename = shard_filename(spec.index)
    atomic_write_bytes(
        os.path.join(directory, filename),
        dataset.to_npz_bytes(compress=False),
    )
    return {
        "file": filename,
        "index": spec.index,
        "entropy": spec.entropy,
        "spawn_key": list(spec.spawn_key),
        "num_segments": len(dataset),
        "user_ids": sorted({int(m.user_id) for m in dataset.meta}),
        "stats": dataset_moments(dataset),
    }


def write_manifest(
    directory: str,
    seed: int,
    config: Dict[str, Any],
    shards: Sequence[Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Atomically publish the campaign index manifest."""
    manifest = {
        "format_version": MANIFEST_FORMAT_VERSION,
        "seed": int(seed),
        "config": config,
        "config_sha256": config_hash(config),
        "num_shards": len(shards),
        "total_segments": sum(int(s["num_segments"]) for s in shards),
        "shards": sorted(shards, key=lambda s: s["index"]),
    }
    if extra:
        manifest.update(extra)
    path = os.path.join(directory, MANIFEST_NAME)
    payload = json.dumps(manifest, indent=2, sort_keys=True).encode()
    atomic_write_bytes(path, payload)
    return path


def read_manifest(directory: str) -> Dict[str, Any]:
    """Load and validate ``manifest.json`` from a campaign directory."""
    path = os.path.join(os.fspath(directory), MANIFEST_NAME)
    if not os.path.exists(path):
        raise CampaignError(
            f"{directory} is not a campaign directory (no {MANIFEST_NAME})"
        )
    try:
        with open(path) as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"unreadable manifest {path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != MANIFEST_FORMAT_VERSION:
        raise CampaignError(
            f"manifest {path} has format_version {version!r}; this "
            f"reader understands {MANIFEST_FORMAT_VERSION}"
        )
    for record in manifest.get("shards", []):
        shard_path = os.path.join(directory, record["file"])
        if not os.path.exists(shard_path):
            raise CampaignError(
                f"manifest lists {record['file']} but the shard file "
                "is missing -- was the campaign interrupted?"
            )
    if not manifest.get("shards"):
        raise CampaignError(f"manifest {path} lists no shards")
    return manifest
