"""Deterministic data-parallel training over campaign shards.

The central design rule: **the gradient math is defined by the logical
``world_size`` W, and the physical process count only distributes it.**
Every optimisation step runs W micro-batches (one per rank, each rank
drawing from its own shard slice with a stateless
``SeedSequence([seed, epoch, rank])`` permutation), reduces the W
float32 gradient vectors in fixed rank order, and applies the averaged
gradient to every model replica. ``processes=1`` executes the W rank
micro-steps sequentially in one process; ``processes=W`` forks one
process per rank and moves the same vectors over the shared-memory
:class:`~repro.campaign.allreduce.GradBus`. Both paths therefore
produce bit-identical loss trajectories, parameters and optimizer
state -- the property the chaos tests pin down.

Checkpoints compose with the PR 5 contract: rank 0 writes atomic
archives via ``resilience.checkpoint``; because per-epoch RNG is
stateless, a checkpoint needs no RNG state and every rank resumes
bit-identically from just the epoch number (workers are re-forked from
the restored parent, so all replicas restart in the same state).

One asymmetry is deliberate: batch-norm *running statistics* (buffers,
not parameters) track whichever micro-batches a replica forwards, so
the sequential reference accumulates all W streams while parallel
rank r sees only stream r. Training-mode forwards use batch statistics,
so losses, gradients and parameters are unaffected; only post-training
eval-mode buffer contents differ between the two execution modes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from threading import BrokenBarrierError
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import TrainConfig
from repro.core.losses import combined_loss
from repro.core.regressor import HandJointRegressor
from repro.core.training import TrainResult
from repro.data.dataset import HandPoseDataset
from repro.errors import CampaignError, CheckpointError
from repro.nn.optim import Adam, CosineSchedule
from repro.nn.tensor import Tensor
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.resilience.checkpoint import (
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.campaign.allreduce import GradBus, average_vectors
from repro.campaign.dataset import ShardedDataset


@dataclass(frozen=True)
class DataParallelConfig:
    """Shape of a data-parallel run.

    ``world_size`` fixes the gradient math (W micro-batches averaged
    per step; the effective global batch is ``W * batch_size``).
    ``processes`` is the physical fan-out: 1 (sequential reference) or
    exactly ``world_size`` (one forked worker per rank).
    """

    world_size: int = 2
    processes: int = 1
    barrier_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise CampaignError("world_size must be >= 1")
        if self.processes not in (1, self.world_size):
            raise CampaignError(
                f"processes must be 1 or world_size "
                f"({self.world_size}), got {self.processes}"
            )
        if self.barrier_timeout_s <= 0:
            raise CampaignError("barrier_timeout_s must be positive")


def _epoch_order(
    seed: int, epoch: int, rank: int, length: int
) -> np.ndarray:
    """Stateless per-(epoch, rank) shuffle: no RNG object survives
    between epochs, so resume needs only the epoch number."""
    rng = np.random.default_rng(
        np.random.SeedSequence([int(seed), int(epoch), int(rank)])
    )
    return rng.permutation(length)


def _mean_losses(
    losses: Sequence[Tuple[float, float, float]],
) -> Tuple[float, float, float]:
    """Rank-order float64 mean of per-rank loss triples."""
    count = len(losses)
    return (
        sum(entry[0] for entry in losses) / count,
        sum(entry[1] for entry in losses) / count,
        sum(entry[2] for entry in losses) / count,
    )


class _RankData:
    """One rank's normalized training arrays."""

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.x)


def _split_ranks(
    regressor: HandJointRegressor,
    dataset: Union[HandPoseDataset, ShardedDataset],
    world_size: int,
) -> List[_RankData]:
    """Fit normalization and build each rank's slice.

    Sharded campaigns: normalization comes exactly from the manifest
    moments, shards go round-robin to ranks, and each slice is
    materialised through the prefetching loader. In-memory datasets:
    normalization over the full arrays (the single-process recipe) and
    contiguous ``len // W`` slices. Either way the split depends only
    on ``world_size``.
    """
    if isinstance(dataset, ShardedDataset):
        if dataset.num_shards < world_size:
            raise CampaignError(
                f"campaign has {dataset.num_shards} shards; cannot feed "
                f"{world_size} ranks -- regenerate with more shards"
            )
        mean, std = dataset.input_stats()
        label_mean, label_std = dataset.label_stats()
        regressor.set_normalization(
            input_mean=mean,
            input_std=std + 1e-6,
            label_mean=label_mean.astype(np.float32),
            label_std=(label_std + 1e-6).astype(np.float32),
        )
        ranks = []
        for rank in range(world_size):
            shard = dataset.materialize(
                dataset.shard_slice(rank, world_size)
            )
            ranks.append(
                _RankData(
                    regressor.normalize_inputs(shard.segments),
                    shard.labels.astype(np.float32),
                )
            )
        return ranks
    segments = dataset.segments
    labels = dataset.labels
    regressor.set_normalization(
        input_mean=float(segments.mean()),
        input_std=float(segments.std() + 1e-6),
        label_mean=labels.mean(axis=0),
        label_std=labels.std(axis=0) + 1e-6,
    )
    per_rank = len(dataset) // world_size
    if per_rank == 0:
        raise CampaignError(
            f"dataset of {len(dataset)} segments cannot feed "
            f"{world_size} ranks"
        )
    x = regressor.normalize_inputs(segments)
    y = labels.astype(np.float32)
    return [
        _RankData(
            x[rank * per_rank : (rank + 1) * per_rank],
            y[rank * per_rank : (rank + 1) * per_rank],
        )
        for rank in range(world_size)
    ]


def _local_step(
    regressor: HandJointRegressor,
    optimizer: Adam,
    data: _RankData,
    idx: np.ndarray,
    cfg: TrainConfig,
    label_mean: Tensor,
    label_std: Tensor,
) -> Tuple[Tuple[float, float, float], np.ndarray]:
    """One rank-local forward/backward; returns (losses, grad vector)."""
    pred_norm = regressor(Tensor(data.x[idx]))
    pred_m = pred_norm * label_std + label_mean
    total, l3d, lkine = combined_loss(pred_m, data.y[idx], cfg)
    optimizer.zero_grad()
    total.backward()
    return (
        (float(total.data), float(l3d.data), float(lkine.data)),
        optimizer.grad_vector(),
    )


def _apply_averaged(
    optimizer: Adam,
    schedule: CosineSchedule,
    averaged: np.ndarray,
    cfg: TrainConfig,
) -> float:
    """Scatter the averaged gradient, clip, and step -- identical on
    every rank, so replicas never drift."""
    optimizer.set_grad_vector(averaged)
    if cfg.grad_clip > 0:
        grad_norm = optimizer.clip_gradients(cfg.grad_clip)
    else:
        grad_norm = float(np.linalg.norm(averaged))
    optimizer.step()
    schedule.step()
    return float(grad_norm)


# ----------------------------------------------------------------------
# Checkpoints (campaign flavour of the PR 5 contract)
# ----------------------------------------------------------------------
def _write_campaign_checkpoint(
    directory, epoch, regressor, optimizer, schedule, result, step,
    world_size, seed,
) -> str:
    extra = {
        "campaign_format": 1,
        "epoch": int(epoch),
        "step": int(step),
        "schedule_step": int(schedule._step),
        "world_size": int(world_size),
        "seed": int(seed),
        "total_loss": result.total_loss,
        "l3d": result.l3d,
        "lkine": result.lkine,
        "epoch_stats": result.epoch_stats,
    }
    path = checkpoint_path(directory, epoch)
    save_checkpoint(
        path, regressor.state_dict(), optimizer.state_dict(), extra
    )
    obs_metrics.counter("campaign.train.checkpoints").increment()
    return path


def _restore_campaign_checkpoint(
    resume_from, regressor, optimizer, schedule, result, world_size, seed
) -> Tuple[int, int]:
    payload = load_checkpoint(resume_from)
    extra = payload["extra"]
    if extra.get("campaign_format") != 1:
        raise CheckpointError(
            f"{resume_from} is not a campaign checkpoint (was it "
            "written by Trainer.fit instead of fit_data_parallel?)"
        )
    if int(extra.get("world_size", -1)) != world_size:
        raise CheckpointError(
            f"checkpoint was trained at world_size "
            f"{extra.get('world_size')}, run is configured for "
            f"{world_size}; gradient averaging would differ"
        )
    if int(extra.get("seed", -1)) != seed:
        raise CheckpointError(
            f"checkpoint seed {extra.get('seed')} != configured {seed}"
        )
    regressor.load_state_dict(payload["model"])
    if payload["optimizer"] is not None:
        optimizer.load_state_dict(payload["optimizer"])
    schedule._step = int(extra["schedule_step"])
    result.total_loss = [float(v) for v in extra.get("total_loss", [])]
    result.l3d = [float(v) for v in extra.get("l3d", [])]
    result.lkine = [float(v) for v in extra.get("lkine", [])]
    result.epoch_stats = list(extra.get("epoch_stats", []))
    result.epochs = int(extra["epoch"])
    return int(extra["epoch"]), int(extra["step"])


# ----------------------------------------------------------------------
# The fit
# ----------------------------------------------------------------------
def fit_data_parallel(
    regressor: HandJointRegressor,
    dataset: Union[HandPoseDataset, ShardedDataset],
    config: Optional[TrainConfig] = None,
    dp: Optional[DataParallelConfig] = None,
    verbose: bool = False,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    resume_from: Optional[str] = None,
    fault_injector=None,
) -> TrainResult:
    """Data-parallel :meth:`Trainer.fit` over a campaign or dataset.

    See the module docstring for the determinism contract. Rank 0 runs
    in the calling process (and is the only writer of history,
    checkpoints and logs); with ``dp.processes == world_size`` ranks
    1..W-1 are forked *after* normalization, optimizer construction and
    any checkpoint restore, so every replica starts from identical
    state and stays identical by construction.
    """
    cfg = config if config is not None else TrainConfig()
    dp = dp if dp is not None else DataParallelConfig()
    if checkpoint_every < 1:
        raise CheckpointError("checkpoint_every must be >= 1")
    world = dp.world_size

    ranks = _split_ranks(regressor, dataset, world)
    steps_per_epoch = min(len(r) // cfg.batch_size for r in ranks)
    if steps_per_epoch < 1:
        raise CampaignError(
            f"smallest rank slice ({min(len(r) for r in ranks)} segments)"
            f" is below one batch of {cfg.batch_size}"
        )

    optimizer = Adam(
        regressor.parameters(),
        lr=cfg.learning_rate,
        weight_decay=cfg.weight_decay,
    )
    schedule = CosineSchedule(
        optimizer, cfg.learning_rate, cfg.epochs * steps_per_epoch
    )
    result = TrainResult()
    step = 0
    start_epoch = 0
    if resume_from is not None:
        start_epoch, step = _restore_campaign_checkpoint(
            resume_from, regressor, optimizer, schedule, result,
            world, cfg.seed,
        )

    label_mean = Tensor(regressor.label_mean)
    label_std = Tensor(regressor.label_std)
    logger = get_logger("campaign")
    regressor.train()
    started = time.perf_counter()

    def run_rank0_loop(reduce_step) -> None:
        """The shared epoch/step loop; ``reduce_step(epoch, b, seq)``
        returns (averaged losses, grad_norm) for one global step."""
        nonlocal step
        for epoch in range(start_epoch, cfg.epochs):
            epoch_start = time.perf_counter()
            grad_norm = 0.0
            for b in range(steps_per_epoch):
                if fault_injector is not None:
                    fault_injector.maybe_kill_batch()
                seq = epoch * steps_per_epoch + b + 1
                (total, l3d, lkine), grad_norm = reduce_step(
                    epoch, b, seq
                )
                result.total_loss.append(total)
                result.l3d.append(l3d)
                result.lkine.append(lkine)
                step += 1
            result.epochs = epoch + 1
            epoch_s = time.perf_counter() - epoch_start
            segments = steps_per_epoch * cfg.batch_size * world
            epoch_loss = float(
                np.mean(result.total_loss[-steps_per_epoch:])
            )
            throughput = segments / epoch_s if epoch_s > 0 else 0.0
            result.epoch_stats.append({
                "epoch": epoch + 1,
                "loss": epoch_loss,
                "grad_norm": float(grad_norm),
                "segments_per_s": throughput,
                "elapsed_s": epoch_s,
            })
            obs_metrics.histogram("campaign.train.epoch_s").observe(
                epoch_s
            )
            obs_metrics.histogram(
                "campaign.train.segments_per_s"
            ).observe(throughput)
            obs_metrics.gauge("campaign.train.last_loss").set(epoch_loss)
            if checkpoint_dir is not None and (
                (epoch + 1) % checkpoint_every == 0
                or epoch + 1 == cfg.epochs
            ):
                _write_campaign_checkpoint(
                    checkpoint_dir, epoch + 1, regressor, optimizer,
                    schedule, result, step, world, cfg.seed,
                )
            if verbose:
                logger.info(
                    "campaign_epoch",
                    epoch=epoch + 1,
                    epochs=cfg.epochs,
                    loss=epoch_loss,
                    grad_norm=float(grad_norm),
                    segments_per_s=throughput,
                    world_size=world,
                    processes=dp.processes,
                )

    if dp.processes == 1:
        # Sequential reference: one model, W micro-steps per global
        # step, identical reduction. Permutations are cached per epoch.
        orders_cache = {}

        def reduce_sequential(epoch, b, seq):
            if orders_cache.get("epoch") != epoch:
                orders_cache["epoch"] = epoch
                orders_cache["orders"] = [
                    _epoch_order(cfg.seed, epoch, r, len(ranks[r]))
                    for r in range(world)
                ]
            vectors = []
            losses = []
            for r in range(world):
                idx = orders_cache["orders"][r][
                    b * cfg.batch_size : (b + 1) * cfg.batch_size
                ]
                loss, vector = _local_step(
                    regressor, optimizer, ranks[r], idx, cfg,
                    label_mean, label_std,
                )
                losses.append(loss)
                vectors.append(vector)
            averaged = average_vectors(vectors)
            grad_norm = _apply_averaged(
                optimizer, schedule, averaged, cfg
            )
            return _mean_losses(losses), grad_norm

        run_rank0_loop(reduce_sequential)
    else:
        _run_parallel(
            run_rank0_loop, regressor, optimizer, schedule, ranks, cfg,
            dp, start_epoch, steps_per_epoch, label_mean, label_std,
        )

    result.elapsed_s = time.perf_counter() - started
    regressor.eval()
    return result


def _run_parallel(
    run_rank0_loop, regressor, optimizer, schedule, ranks, cfg, dp,
    start_epoch, steps_per_epoch, label_mean, label_std,
) -> None:
    """Fork one worker per non-zero rank and drive the GradBus steps."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX hosts
        raise CampaignError(
            "data-parallel processes require the fork start method"
        ) from exc
    world = dp.world_size
    bus = GradBus(world, optimizer.grad_vector_size())
    barrier = ctx.Barrier(world)
    timeout = dp.barrier_timeout_s

    def rank_worker(rank: int) -> None:
        # Forked replica: regressor/optimizer/schedule/data arrived via
        # copy-on-write in exactly rank 0's state. Never unlink the
        # inherited bus from a child.
        bus._owner = False
        try:
            for epoch in range(start_epoch, cfg.epochs):
                order = _epoch_order(
                    cfg.seed, epoch, rank, len(ranks[rank])
                )
                for b in range(steps_per_epoch):
                    idx = order[
                        b * cfg.batch_size : (b + 1) * cfg.batch_size
                    ]
                    losses, vector = _local_step(
                        regressor, optimizer, ranks[rank], idx, cfg,
                        label_mean, label_std,
                    )
                    seq = epoch * steps_per_epoch + b + 1
                    bus.publish(rank, seq, losses, vector)
                    barrier.wait(timeout)
                    averaged, _ = bus.gather(seq)
                    barrier.wait(timeout)
                    if bus.stopped():
                        os._exit(2)
                    _apply_averaged(optimizer, schedule, averaged, cfg)
            os._exit(0)
        except (BrokenBarrierError, CampaignError):
            os._exit(3)
        except BaseException:  # pragma: no cover - defensive
            os._exit(4)

    children = [
        ctx.Process(target=rank_worker, args=(rank,), daemon=True)
        for rank in range(1, world)
    ]
    for child in children:
        child.start()

    epoch_orders = {}

    def reduce_parallel(epoch, b, seq):
        if epoch_orders.get("epoch") != epoch:
            epoch_orders["epoch"] = epoch
            epoch_orders["order"] = _epoch_order(
                cfg.seed, epoch, 0, len(ranks[0])
            )
        idx = epoch_orders["order"][
            b * cfg.batch_size : (b + 1) * cfg.batch_size
        ]
        losses0, vector = _local_step(
            regressor, optimizer, ranks[0], idx, cfg,
            label_mean, label_std,
        )
        bus.publish(0, seq, losses0, vector)
        try:
            barrier.wait(timeout)
            averaged, losses = bus.gather(seq)
            barrier.wait(timeout)
        except BrokenBarrierError:
            dead = [c.exitcode for c in children if not c.is_alive()]
            raise CampaignError(
                f"gradient allreduce barrier broke at step {seq} "
                f"(dead worker exit codes: {dead})"
            ) from None
        grad_norm = _apply_averaged(optimizer, schedule, averaged, cfg)
        return _mean_losses(losses), grad_norm

    try:
        run_rank0_loop(reduce_parallel)
        for child in children:
            child.join(timeout=10.0)
    finally:
        bus.signal_stop()
        barrier.abort()
        for child in children:
            if child.is_alive():
                child.terminate()
                child.join(timeout=5.0)
        bus.close()
