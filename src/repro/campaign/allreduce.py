"""Shared-memory gradient allreduce for data-parallel training.

A :class:`GradBus` is one ``multiprocessing.shared_memory`` segment
holding a fixed slot per rank, following the gateway ring's layout
conventions (magic/version control block, cache-line-separated fields,
publish-sequence torn-write guard):

Layout::

    [control 64 B][stop 64 B][slot 0][slot 1]...[slot W-1]

    control: magic, version, ranks, vector_len, slot_bytes
    stop:    one abort flag byte on its own cache line
    slot:    64 B header (seq u64, total/l3d/lkine f64)
             + float32 gradient vector, padded to a 64 B boundary

Per optimisation step every rank writes its local gradient vector and
micro-batch losses into its own slot (payload first, then ``seq`` --
the ring's publication order), the ranks synchronise on a barrier, and
each rank independently reduces all W slots **in fixed rank order**
with float32 accumulation. Because every rank runs the identical
deterministic reduction over identical bytes, all model replicas apply
bit-identical averaged gradients and never drift -- which is what makes
``processes=W`` training match the ``processes=1`` reference exactly.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CampaignError

_MAGIC = 0x6D6D4742  # "mmGB"
_VERSION = 1

_CONTROL = struct.Struct("<IIQQQ")  # magic, version, ranks, vec_len, slot_b
_STOP_OFFSET = 64
_SLOTS_OFFSET = 128
_SLOT_HEADER = struct.Struct("<Qddd")  # seq, total, l3d, lkine
SLOT_HEADER_BYTES = 64
_ALIGN = 64


def average_vectors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Fixed-order float32 mean of equally-shaped gradient vectors.

    The accumulation order is the sequence order (rank 0 first), in
    float32 -- the one true reduction both the sequential and the
    multi-process paths run, so their results agree to the bit.
    """
    if not vectors:
        raise CampaignError("cannot average zero gradient vectors")
    acc = np.zeros_like(vectors[0])
    for vector in vectors:
        acc += vector
    return acc / np.float32(len(vectors))


class GradBus:
    """Per-rank gradient slots in one shared-memory segment."""

    def __init__(
        self,
        ranks: int,
        vector_len: int,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        if create:
            if ranks < 1:
                raise CampaignError("GradBus needs at least one rank")
            if vector_len < 1:
                raise CampaignError("gradient vector must be non-empty")
        payload = SLOT_HEADER_BYTES + 4 * vector_len
        slot_bytes = -(-payload // _ALIGN) * _ALIGN
        total = _SLOTS_OFFSET + ranks * slot_bytes
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=total)
            self._owner = True
            self._shm.buf[:_SLOTS_OFFSET] = b"\x00" * _SLOTS_OFFSET
            _CONTROL.pack_into(
                self._shm.buf, 0,
                _MAGIC, _VERSION, ranks, vector_len, slot_bytes,
            )
        else:
            if name is None:
                raise CampaignError("attaching to a GradBus requires name")
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
            magic, version, got_ranks, got_len, got_slot = (
                _CONTROL.unpack_from(self._shm.buf, 0)
            )
            if magic != _MAGIC or version != _VERSION:
                raise CampaignError(
                    f"{name} is not a v{_VERSION} GradBus segment"
                )
            if (got_ranks, got_len) != (ranks, vector_len):
                raise CampaignError(
                    f"GradBus geometry mismatch: segment has "
                    f"{got_ranks} ranks x {got_len}, expected "
                    f"{ranks} x {vector_len}"
                )
            slot_bytes = got_slot
        self.ranks = ranks
        self.vector_len = vector_len
        self.slot_bytes = slot_bytes
        self._views = [
            np.frombuffer(
                self._shm.buf,
                dtype=np.float32,
                count=vector_len,
                offset=(
                    _SLOTS_OFFSET + r * slot_bytes + SLOT_HEADER_BYTES
                ),
            )
            for r in range(ranks)
        ]

    @property
    def name(self) -> str:
        return self._shm.name

    def _slot_offset(self, rank: int) -> int:
        if not 0 <= rank < self.ranks:
            raise CampaignError(f"no slot for rank {rank}")
        return _SLOTS_OFFSET + rank * self.slot_bytes

    # -- per-step protocol ----------------------------------------------
    def publish(
        self,
        rank: int,
        seq: int,
        losses: Tuple[float, float, float],
        grads: np.ndarray,
    ) -> None:
        """Write rank-local losses + gradient vector, payload before
        ``seq`` (the ring's torn-write publication order)."""
        if grads.shape != (self.vector_len,):
            raise CampaignError(
                f"gradient vector has shape {grads.shape}, bus expects "
                f"({self.vector_len},)"
            )
        offset = self._slot_offset(rank)
        self._views[rank][:] = grads
        _SLOT_HEADER.pack_into(
            self._shm.buf, offset, seq,
            float(losses[0]), float(losses[1]), float(losses[2]),
        )

    def gather(
        self, seq: int
    ) -> Tuple[np.ndarray, List[Tuple[float, float, float]]]:
        """Reduce all slots: (fixed-order averaged float32 gradients,
        per-rank loss triples). Caller must have synchronised writers
        first (barrier); a stale ``seq`` means a rank missed the step."""
        losses: List[Tuple[float, float, float]] = []
        for rank in range(self.ranks):
            got_seq, total, l3d, lkine = _SLOT_HEADER.unpack_from(
                self._shm.buf, self._slot_offset(rank)
            )
            if got_seq != seq:
                raise CampaignError(
                    f"rank {rank} slot holds step {got_seq}, expected "
                    f"{seq}: a worker fell out of lockstep"
                )
            losses.append((total, l3d, lkine))
        averaged = average_vectors(self._views)
        return averaged, losses

    # -- abort flag ------------------------------------------------------
    def signal_stop(self) -> None:
        self._shm.buf[_STOP_OFFSET] = 1

    def stopped(self) -> bool:
        return self._shm.buf[_STOP_OFFSET] != 0

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        # Views alias the shm buffer; drop them before closing so the
        # memoryview release does not fail with exported pointers.
        self._views = []
        try:
            self._shm.close()
        except BufferError:
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "GradBus":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
