"""Campaign-scale data engine: sharded parallel generation, streaming
prefetch datasets, and deterministic data-parallel training.

The three stages compose into the scaled training path::

    generate_campaign(out, shards, segs, workers=N)   # process fan-out
        -> ShardedDataset(out)                        # mmap + prefetch
        -> fit_data_parallel(regressor, ds, cfg, dp)  # GradBus ranks

Every stage is bit-deterministic in its seed and independent of its
physical parallelism (worker count, process count), which is what makes
the chaos/regression suites able to pin outputs exactly.
"""

from repro.campaign.allreduce import GradBus, average_vectors
from repro.campaign.dataset import ShardedDataset, ShardPrefetcher
from repro.campaign.generate import (
    DomainRandomization,
    GenerationReport,
    generate_campaign,
)
from repro.campaign.sharding import (
    ShardSpec,
    config_hash,
    merged_input_stats,
    merged_label_stats,
    plan_shards,
    read_manifest,
    shard_filename,
    write_manifest,
    write_shard,
)
from repro.campaign.train import (
    DataParallelConfig,
    fit_data_parallel,
)

__all__ = [
    "DataParallelConfig",
    "DomainRandomization",
    "GenerationReport",
    "GradBus",
    "ShardPrefetcher",
    "ShardSpec",
    "ShardedDataset",
    "average_vectors",
    "config_hash",
    "fit_data_parallel",
    "generate_campaign",
    "merged_input_stats",
    "merged_label_stats",
    "plan_shards",
    "read_manifest",
    "shard_filename",
    "write_manifest",
    "write_shard",
]
