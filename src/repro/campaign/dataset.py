"""Streaming view over a sharded campaign directory.

``ShardedDataset`` reads only ``manifest.json`` eagerly; shard arrays
stay on disk until asked for. Two access paths exist:

* :meth:`shard` memory-maps one shard lazily (``HandPoseDataset.load``
  with ``mmap_mode="r"``) -- open cost and RSS stay O(metadata);
* :meth:`iter_shards` streams shards *eagerly* (materialised into RAM)
  through a double-buffered background prefetch thread: while the
  consumer chews on shard *i*, the loader thread is already reading
  shard *i+1*, so disk time overlaps compute time. Hit/wait counts and
  wait/load second histograms are published as ``campaign.prefetch.*``
  metrics; the overlap ratio reported by the training bench is
  ``1 - wait_s / load_s``.

Normalization statistics come straight from the manifest's per-shard
streaming moments (:func:`merged_input_stats` /
:func:`merged_label_stats`): exact, deterministic, and available
without touching a single shard byte -- which is what lets every
data-parallel rank agree on normalization without a synchronisation
pass over the data.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.dataset import HandPoseDataset
from repro.errors import CampaignError
from repro.obs import metrics as obs_metrics
from repro.campaign.sharding import (
    merged_input_stats,
    merged_label_stats,
    read_manifest,
)

_SENTINEL = object()


class ShardPrefetcher:
    """Double-buffered background shard loader.

    One daemon thread walks ``indices`` in order, loads each shard via
    ``loader`` and parks it in a bounded queue (``depth`` shards deep,
    default 1 = classic double buffering: one shard in the consumer's
    hands, one being read ahead). Iterating yields ``(index, shard)``
    pairs in order. Loader exceptions are re-raised in the consumer.
    """

    def __init__(
        self,
        loader,
        indices: Iterable[int],
        depth: int = 1,
    ) -> None:
        if depth < 1:
            raise CampaignError("prefetch depth must be >= 1")
        self._indices = list(indices)
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self._loader = loader
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="shard-prefetch", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        for index in self._indices:
            if self._stop.is_set():
                return
            started = time.perf_counter()
            try:
                shard = self._loader(index)
            except BaseException as exc:  # re-raised consumer-side
                self._put((index, exc, 0.0))
                return
            load_s = time.perf_counter() - started
            obs_metrics.histogram("campaign.prefetch.load_s").observe(
                load_s
            )
            self._put((index, shard, load_s))
        self._put(_SENTINEL)

    def _put(self, item) -> None:
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def __iter__(self) -> Iterator[Tuple[int, HandPoseDataset]]:
        try:
            while True:
                if self._queue.empty():
                    # The consumer outran the loader: the wait below is
                    # time NOT overlapped with compute.
                    obs_metrics.counter("campaign.prefetch.waits").increment()
                    started = time.perf_counter()
                    item = self._queue.get()
                    obs_metrics.histogram(
                        "campaign.prefetch.wait_s"
                    ).observe(time.perf_counter() - started)
                else:
                    obs_metrics.counter("campaign.prefetch.hits").increment()
                    item = self._queue.get()
                if item is _SENTINEL:
                    return
                index, shard, _ = item
                if isinstance(shard, BaseException):
                    raise CampaignError(
                        f"prefetching shard {index} failed: {shard}"
                    ) from shard
                yield index, shard
        finally:
            self.close()

    def close(self) -> None:
        self._stop.set()
        try:
            while True:
                self._queue.get_nowait()
        except queue.Empty:
            pass
        self._thread.join(timeout=5.0)


class ShardedDataset:
    """Lazy, manifest-indexed view over a campaign directory.

    Presents enough of the :class:`HandPoseDataset` surface
    (``__len__``, batch iteration, ``sample_segments`` for int8
    calibration, ``materialize`` for code that needs plain arrays) that
    the trainer and the compiled engine's calibration pass consume a
    campaign without knowing about shards.
    """

    def __init__(self, directory: str, prefetch_depth: int = 1) -> None:
        self.directory = os.fspath(directory)
        self.manifest = read_manifest(self.directory)
        self.prefetch_depth = prefetch_depth
        self._shard_records: List[Dict] = self.manifest["shards"]

    # -- shape -----------------------------------------------------------
    def __len__(self) -> int:
        return int(self.manifest["total_segments"])

    @property
    def num_shards(self) -> int:
        return len(self._shard_records)

    @property
    def shard_lengths(self) -> List[int]:
        return [int(r["num_segments"]) for r in self._shard_records]

    def shard_path(self, index: int) -> str:
        return os.path.join(
            self.directory, self._shard_records[index]["file"]
        )

    def shard_slice(self, rank: int, world_size: int) -> List[int]:
        """Round-robin shard indices owned by ``rank`` of
        ``world_size`` -- a function of the logical world size only,
        never of how many physical processes happen to run."""
        if not 0 <= rank < world_size:
            raise CampaignError(
                f"rank {rank} outside world of {world_size}"
            )
        return list(range(rank, self.num_shards, world_size))

    # -- access ----------------------------------------------------------
    def shard(self, index: int) -> HandPoseDataset:
        """One shard, lazily memory-mapped (no data read on open)."""
        if not 0 <= index < self.num_shards:
            raise CampaignError(f"no shard {index} (have {self.num_shards})")
        return HandPoseDataset.load(self.shard_path(index), mmap_mode="r")

    def _load_eager(self, index: int) -> HandPoseDataset:
        """One shard fully materialised into RAM (prefetch loader)."""
        lazy = self.shard(index)
        return HandPoseDataset(
            segments=np.array(lazy.segments),
            labels=np.array(lazy.labels),
            true_joints=np.array(lazy.true_joints),
            meta=lazy.meta,
        )

    def iter_shards(
        self, indices: Optional[Iterable[int]] = None
    ) -> Iterator[Tuple[int, HandPoseDataset]]:
        """Stream (index, in-RAM shard) pairs with background prefetch."""
        if indices is None:
            indices = range(self.num_shards)
        prefetcher = ShardPrefetcher(
            self._load_eager, indices, depth=self.prefetch_depth
        )
        return iter(prefetcher)

    def materialize(
        self, indices: Optional[Iterable[int]] = None
    ) -> HandPoseDataset:
        """Concatenate shards (all, or ``indices``) into one in-memory
        dataset, loading through the prefetcher so disk reads overlap
        the concatenation work."""
        shards = [shard for _, shard in self.iter_shards(indices)]
        if not shards:
            raise CampaignError("materialize() selected zero shards")
        if len(shards) == 1:
            return shards[0]
        return HandPoseDataset.concatenate(shards)

    def iter_batches(
        self, batch_size: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Sequential (segments, labels) batches across all shards (no
        shuffling; evaluation / calibration order)."""
        if batch_size < 1:
            raise CampaignError("batch_size must be >= 1")
        for _, shard in self.iter_shards():
            for start in range(0, len(shard), batch_size):
                stop = start + batch_size
                yield shard.segments[start:stop], shard.labels[start:stop]

    def sample_segments(self, count: int, seed: int = 0) -> np.ndarray:
        """``count`` segments sampled across shards (int8 calibration
        input). Deterministic in ``seed``; maps shards lazily and reads
        only the sampled rows."""
        total = len(self)
        rng = np.random.default_rng(seed)
        picks = np.sort(
            rng.choice(total, size=min(count, total), replace=False)
        )
        bounds = np.cumsum([0] + self.shard_lengths)
        out: List[np.ndarray] = []
        for index in range(self.num_shards):
            lo, hi = bounds[index], bounds[index + 1]
            local = picks[(picks >= lo) & (picks < hi)] - lo
            if len(local) == 0:
                continue
            out.append(np.array(self.shard(index).segments[local]))
        return np.concatenate(out)

    # -- statistics ------------------------------------------------------
    def input_stats(self) -> Tuple[float, float]:
        """Exact global (mean, std) of the input cubes, from the
        manifest moments only."""
        return merged_input_stats(self._shard_records)

    def label_stats(self) -> Tuple[np.ndarray, np.ndarray]:
        """Exact global per-joint-coordinate label (mean, std)."""
        return merged_label_stats(self._shard_records)

    def config_sha256(self) -> str:
        return str(self.manifest["config_sha256"])

    def dsp_config(self):
        """The :class:`~repro.config.DspConfig` the shards were built
        with (JSON lists restored to tuples) -- what a regressor must
        use to consume this campaign."""
        from repro.config import DspConfig

        fields = dict(self.manifest["config"]["dsp"])
        fields["hand_band_m"] = tuple(fields["hand_band_m"])
        return DspConfig(**fields)
