"""Performance measurement harness.

:func:`run_pipeline_bench` times every stage the PR's vectorisation work
touched -- cube building, radar synthesis, CFAR -- against the kept
reference implementations, records the equivalence error of each fast
path, and snapshots the plan-cache counters. :func:`run_model_bench`
times the compiled inference engine (:mod:`repro.nn.inference`) against
the eager autograd and ``no_grad`` forwards and records the compiled
outputs' deviation from eager. :func:`write_bench_json` is the single
JSON writer shared by all benchmark entry points (``mmhand bench``,
``benchmarks/bench_pipeline.py``, ``benchmarks/bench_serving.py``).
"""

from repro.perf.bench import (
    print_pipeline_report,
    run_pipeline_bench,
    write_bench_json,
)
from repro.perf.model_bench import (
    print_model_report,
    run_model_bench,
)
from repro.perf.netfront_bench import (
    netfront_invariants_ok,
    run_netfront_bench,
)
from repro.perf.regression import (
    compare_bench,
    print_comparison,
)
from repro.perf.training_bench import (
    print_training_report,
    run_training_bench,
)

__all__ = [
    "compare_bench",
    "netfront_invariants_ok",
    "print_comparison",
    "run_netfront_bench",
    "print_pipeline_report",
    "print_model_report",
    "print_training_report",
    "run_pipeline_bench",
    "run_model_bench",
    "run_training_bench",
    "write_bench_json",
]
