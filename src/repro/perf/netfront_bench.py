"""Loopback benchmark + fuzz drill for the network front end.

:func:`run_netfront_bench` stands up a real stack -- multi-process
:class:`~repro.gateway.Gateway` behind a threaded
:class:`~repro.netfront.NetFrontServer` -- on the loopback interface
and measures what a deployment actually cares about:

* **connection setup** latency (TCP connect + HELLO/WELCOME handshake,
  p50/p95);
* **frame round-trip** latency (send one cube, receive its pose, p50/
  p95) under concurrent clients;
* the **robustness counters** as hard invariants: a clean bench run
  must lose zero clean frames, shed zero poses, reject zero frames and
  restart zero workers.

With ``fuzz_s > 0`` the bench doubles as the CI fuzz drill: a seeded
:class:`~repro.netfront.ProtocolFuzzer` hammers the server with
corrupted streams (reconnecting every time the server quarantines it)
while clean clients keep streaming; the gate is that every clean frame
is still answered, the fuzzer's garbage lands in the dead-letter log,
and no worker restarts. The summary dict feeds ``mmhand bench-compare``
(committed baseline: the ``netfront`` section of ``BENCH_serving.json``).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import NetFrontError
from repro.gateway import Gateway, GatewayConfig
from repro.gateway.loadgen import bench_configs, make_frame_pool
from repro.netfront import (
    NetFrontClient,
    NetFrontConfig,
    ProtocolFuzzer,
    encode_message,
    start_in_thread,
)
from repro.netfront.protocol import MSG_FRAME_CUBE, MSG_HELLO

BENCH_TOKEN = "netfront-bench-token"


def _percentiles_ms(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0}
    arr = np.asarray(samples) * 1e3
    p50, p95 = np.percentile(arr, [50.0, 95.0])
    return {
        "count": len(samples),
        "p50_ms": float(p50),
        "p95_ms": float(p95),
        "max_ms": float(arr.max()),
    }


def _clean_client(
    host: str,
    port: int,
    frames: np.ndarray,
    out: Dict[str, Any],
    stop: threading.Event,
    loop_frames: bool,
) -> None:
    """One clean client: stream cubes, await poses, record latencies.

    Frames are sent one-at-a-time (send, wait for the pose) so the
    recorded round-trip is a true per-frame latency, not a pipelining
    artifact. The first frame of a session fills the model's sliding
    window and returns no pose; it is excluded from the latency sample.
    """
    setup_start = time.monotonic()
    client = NetFrontClient.connect(
        host, port, token=BENCH_TOKEN, timeout_s=30.0
    )
    out["setup_s"] = time.monotonic() - setup_start
    rtts: List[float] = []
    poses: List[np.ndarray] = []
    sent = 0
    try:
        session = client.open_session()
        while True:
            for index in range(frames.shape[0]):
                if stop.is_set() and loop_frames:
                    return
                start = time.monotonic()
                client.send_cube(session, frames[index], frame_id=sent)
                sent += 1
                if index == 0 and not poses and not rtts:
                    continue  # window fill: no pose for this one
                client.poll_poses(
                    expect=len(rtts) + 1, timeout_s=60.0
                )
                rtts.append(time.monotonic() - start)
                poses.append(client.poses[-1].joints)
            if not loop_frames or stop.is_set():
                return
    finally:
        out["rtts"] = rtts
        out["poses"] = poses
        out["sent"] = sent
        out["errors"] = list(client.errors)
        client.close()


def _fuzzer_client(
    host: str,
    port: int,
    template: bytes,
    seed: int,
    stop: threading.Event,
    out: Dict[str, Any],
) -> None:
    """Reconnect-and-corrupt loop: every connection the server
    quarantines is immediately replaced, so the fuzz pressure is
    continuous for the whole drill."""
    fuzzer = ProtocolFuzzer(seed=seed)
    connections = 0
    chunks_sent = 0
    while not stop.is_set():
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            time.sleep(0.01)
            continue
        connections += 1
        try:
            sock.sendall(encode_message(
                MSG_HELLO, payload=BENCH_TOKEN.encode()
            ))
            for chunk in fuzzer.stream(template):
                if stop.is_set():
                    break
                sock.sendall(chunk)
                chunks_sent += 1
                time.sleep(0.001)
        except OSError:
            pass  # server killed the poisoned connection: expected
        finally:
            sock.close()
    out["connections"] = connections
    out["chunks_sent"] = chunks_sent


def run_netfront_bench(
    smoke: bool = False,
    seed: int = 0,
    workers: int = 1,
    clients: Optional[int] = None,
    frames_per_client: Optional[int] = None,
    fuzz_s: float = 0.0,
    dead_letter_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the loopback bench (and optional fuzz drill); return the
    ``netfront_serving`` summary for ``mmhand bench-compare``."""
    radar, dsp, model = bench_configs()
    n_clients = clients if clients is not None else (2 if smoke else 4)
    n_frames = (
        frames_per_client if frames_per_client is not None
        else (4 if smoke else 8)
    )
    gateway = Gateway(
        radar, dsp, model,
        GatewayConfig(workers=workers, ring_slots=64, seed=seed),
    )
    handle = start_in_thread(
        gateway,
        NetFrontConfig(
            auth_token=BENCH_TOKEN,
            idle_timeout_s=60.0,
            max_connections=max(64, n_clients + 8),
        ),
    )
    pool = make_frame_pool(dsp, 8, seed=seed)
    stop = threading.Event()
    client_outs: List[Dict[str, Any]] = [{} for _ in range(n_clients)]
    threads = [
        threading.Thread(
            target=_clean_client,
            args=(
                handle.host, handle.port, pool[:n_frames],
                client_outs[i], stop, fuzz_s > 0,
            ),
            name=f"bench-client-{i}",
            daemon=True,
        )
        for i in range(n_clients)
    ]

    fuzz_out: Dict[str, Any] = {}
    fuzz_thread = None
    if fuzz_s > 0:
        template = encode_message(
            MSG_FRAME_CUBE, session_id="fuzz-template", frame_id=0,
            payload=pool[0],
        )
        fuzz_thread = threading.Thread(
            target=_fuzzer_client,
            args=(handle.host, handle.port, template, seed + 1,
                  stop, fuzz_out),
            name="bench-fuzzer",
            daemon=True,
        )

    started = time.monotonic()
    for thread in threads:
        thread.start()
    if fuzz_thread is not None:
        fuzz_thread.start()
        time.sleep(fuzz_s)
        stop.set()
    for thread in threads:
        thread.join(timeout=120.0)
    if fuzz_thread is not None:
        fuzz_thread.join(timeout=30.0)
    elapsed = time.monotonic() - started

    report = handle.stop()
    if dead_letter_path:
        gateway.dead_letters.export_jsonl(dead_letter_path)
    counters = gateway.metrics.snapshot()["counters"]
    gateway.shutdown()

    if any(thread.is_alive() for thread in threads):
        raise NetFrontError("a bench client never finished")

    setups = [
        out["setup_s"] for out in client_outs if "setup_s" in out
    ]
    rtts = [
        value for out in client_outs for value in out.get("rtts", [])
    ]
    total_sent = sum(out.get("sent", 0) for out in client_outs)
    total_poses = sum(len(out.get("poses", [])) for out in client_outs)
    client_errors = sum(
        len(out.get("errors", [])) for out in client_outs
    )

    summary: Dict[str, Any] = {
        "benchmark": "netfront_serving",
        "smoke": smoke,
        "seed": seed,
        "workers": workers,
        "clients": n_clients,
        "frames_per_client": n_frames,
        "elapsed_s": elapsed,
        "frames_sent": total_sent,
        "poses_received": total_poses,
        "client_errors": client_errors,
        "connection_setup": _percentiles_ms(setups),
        "round_trip": _percentiles_ms(rtts),
        "accounting": report,
        "counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("netfront.")
            or name in (
                "gateway.acks", "gateway.worker_restarts",
                "gateway.frames_forwarded", "gateway.poses",
            )
        },
        "invariants": {
            "lost_clean_frames": report.get("lost_clean_frames", -1),
            "worker_restarts": report.get("worker_restarts", -1),
            "poses_shed": report.get("poses_shed", -1),
            "frames_rejected": report.get("frames_rejected", -1),
            "client_errors": client_errors,
        },
    }
    if fuzz_s > 0:
        summary["fuzz"] = {
            "duration_s": fuzz_s,
            "fuzzer_seed": seed + 1,
            "fuzzer_connections": fuzz_out.get("connections", 0),
            "fuzzer_chunks_sent": fuzz_out.get("chunks_sent", 0),
            "protocol_errors": report.get("protocol_errors", 0),
            "dead_letters": report.get("dead_letters", 0),
        }
    return summary


def netfront_invariants_ok(summary: Dict[str, Any]) -> bool:
    """The hard gate shared by the CLI and CI: no clean-frame loss, no
    pool damage, no unexplained client errors."""
    inv = summary.get("invariants", {})
    ok = (
        inv.get("lost_clean_frames") == 0
        and inv.get("worker_restarts") == 0
        and inv.get("poses_shed") == 0
        and inv.get("frames_rejected") == 0
        and inv.get("client_errors") == 0
    )
    if "fuzz" in summary:
        # The drill must actually have exercised the quarantine path.
        ok = ok and summary["fuzz"].get("protocol_errors", 0) > 0
    return ok
