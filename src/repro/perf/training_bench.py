"""Campaign data-engine benchmark: sharded generation throughput,
prefetch overlap, and data-parallel training.

Produces the ``BENCH_training.json`` summary consumed by
``mmhand bench-compare``. Three sections:

* ``generation`` -- frames/s of the sharded generator at 1 process vs
  N processes *in the same run* (the portable speedup ratio), plus a
  byte-level worker-invariance check: every shard produced by the
  parallel run must hash identically to its serial twin.
* ``prefetch`` -- hit/wait counts and wait/load seconds of the
  double-buffered shard prefetcher over one streaming pass;
  ``overlap_ratio = 1 - wait_s / load_s`` (1.0 = disk reads fully
  hidden behind compute).
* ``training`` -- epoch seconds of ``fit_data_parallel`` at
  ``world_size=2`` with ``processes=1`` (sequential reference) vs
  ``processes=2``, and the headline correctness invariant: the two
  loss trajectories must match **bit-identically**.

Like the gateway bench, raw speedups read ~1x on a single-core host
(``cpu_count`` is embedded so the regression guard can condition on
it); the CI campaign job runs on multi-core runners where the parallel
paths must actually win.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from typing import Any, Dict, Optional, Tuple

from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    TrainConfig,
)
from repro.obs import metrics as obs_metrics


def campaign_bench_configs(
    smoke: bool,
) -> Tuple[RadarConfig, DspConfig, ModelConfig, CampaignConfig]:
    """Shrunken configs for CI smoke, fuller ones otherwise."""
    if smoke:
        return (
            RadarConfig(samples_per_chirp=32, chirp_loops=8),
            DspConfig(
                range_bins=16, doppler_bins=4, azimuth_bins=8,
                elevation_bins=8, segment_frames=2,
            ),
            ModelConfig(
                base_channels=4, hourglass_depth=1, num_blocks=1,
                feature_dim=16, lstm_hidden=16,
            ),
            CampaignConfig(num_users=2, segments_per_user=8),
        )
    return (
        RadarConfig(samples_per_chirp=64, chirp_loops=16),
        DspConfig(
            range_bins=32, doppler_bins=8, azimuth_bins=16,
            elevation_bins=16, segment_frames=4,
        ),
        ModelConfig(
            base_channels=8, hourglass_depth=2, num_blocks=1,
            feature_dim=32, lstm_hidden=32,
        ),
        CampaignConfig(num_users=4, segments_per_user=16),
    )


def _shard_digests(directory: str, num_shards: int) -> Tuple[str, ...]:
    from repro.campaign import shard_filename

    digests = []
    for index in range(num_shards):
        with open(os.path.join(directory, shard_filename(index)), "rb") as fh:
            digests.append(hashlib.sha256(fh.read()).hexdigest())
    return tuple(digests)


def _prefetch_snapshot() -> Dict[str, float]:
    return {
        "hits": float(obs_metrics.counter("campaign.prefetch.hits").value),
        "waits": float(
            obs_metrics.counter("campaign.prefetch.waits").value
        ),
        "wait_s": float(
            obs_metrics.histogram("campaign.prefetch.wait_s").sum
        ),
        "load_s": float(
            obs_metrics.histogram("campaign.prefetch.load_s").sum
        ),
    }


def run_training_bench(
    smoke: bool = True,
    seed: int = 11,
    workers: Optional[int] = None,
    keep_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the full campaign data-engine benchmark.

    ``workers`` overrides the parallel generation fan-out (default:
    ``min(4, cpu_count)``). ``keep_dir`` keeps the generated campaign
    at that path for inspection instead of a temp directory.
    """
    from repro.campaign import (
        DataParallelConfig,
        ShardedDataset,
        fit_data_parallel,
        generate_campaign,
    )
    from repro.core.regressor import HandJointRegressor

    radar, dsp, model, campaign = campaign_bench_configs(smoke)
    cpu_count = os.cpu_count() or 1
    if workers is None:
        workers = max(2, min(4, cpu_count))
    num_shards = 4 if smoke else 8
    segments_per_shard = 8 if smoke else 32
    epochs = 2 if smoke else 4
    batch_size = 4 if smoke else 8

    root = keep_dir or tempfile.mkdtemp(prefix="mmhand-campaign-bench-")
    serial_dir = os.path.join(root, "serial")
    parallel_dir = os.path.join(root, "parallel")
    try:
        serial = generate_campaign(
            serial_dir, num_shards, segments_per_shard,
            radar=radar, dsp=dsp, campaign=campaign, seed=seed, workers=1,
        )
        parallel = generate_campaign(
            parallel_dir, num_shards, segments_per_shard,
            radar=radar, dsp=dsp, campaign=campaign, seed=seed,
            workers=workers,
        )
        worker_invariant = (
            _shard_digests(serial_dir, num_shards)
            == _shard_digests(parallel_dir, num_shards)
        )
        generation = {
            "num_shards": num_shards,
            "segments_per_shard": segments_per_shard,
            "frames": serial.total_frames,
            "serial": {
                "workers": 1,
                "elapsed_s": serial.elapsed_s,
                "frames_per_s": serial.frames_per_s,
            },
            "parallel": {
                "workers": workers,
                "elapsed_s": parallel.elapsed_s,
                "frames_per_s": parallel.frames_per_s,
            },
            "speedup": (
                serial.elapsed_s / parallel.elapsed_s
                if parallel.elapsed_s else 0.0
            ),
            "worker_invariant": worker_invariant,
        }

        # -- prefetch overlap over one streaming pass -------------------
        before = _prefetch_snapshot()
        dataset = ShardedDataset(serial_dir)
        dataset.materialize()
        after = _prefetch_snapshot()
        delta = {k: after[k] - before[k] for k in after}
        overlap = (
            1.0 - delta["wait_s"] / delta["load_s"]
            if delta["load_s"] > 0 else 0.0
        )
        prefetch = {
            **{k: round(v, 6) for k, v in delta.items()},
            "overlap_ratio": max(0.0, min(1.0, overlap)),
        }

        # -- data-parallel training -------------------------------------
        cfg = TrainConfig(epochs=epochs, batch_size=batch_size, seed=seed)

        def run_fit(processes: int):
            regressor = HandJointRegressor(dsp=dsp, model=model, seed=0)
            started = time.perf_counter()
            result = fit_data_parallel(
                regressor, ShardedDataset(serial_dir), cfg,
                DataParallelConfig(world_size=2, processes=processes),
            )
            return result, time.perf_counter() - started

        result_1p, elapsed_1p = run_fit(1)
        result_2p, elapsed_2p = run_fit(2)
        training = {
            "world_size": 2,
            "epochs": epochs,
            "batch_size": batch_size,
            "sequential": {
                "processes": 1,
                "elapsed_s": elapsed_1p,
                "epoch_s": elapsed_1p / epochs,
                "final_loss": result_1p.final_loss,
            },
            "parallel": {
                "processes": 2,
                "elapsed_s": elapsed_2p,
                "epoch_s": elapsed_2p / epochs,
                "final_loss": result_2p.final_loss,
            },
            "speedup": elapsed_1p / elapsed_2p if elapsed_2p else 0.0,
            "losses_bit_identical": (
                result_1p.total_loss == result_2p.total_loss
            ),
        }
    finally:
        if keep_dir is None:
            shutil.rmtree(root, ignore_errors=True)

    return {
        "benchmark": "campaign_training",
        "smoke": bool(smoke),
        "seed": int(seed),
        "cpu_count": cpu_count,
        "generation": generation,
        "prefetch": prefetch,
        "training": training,
        "note": (
            "speedup columns compare against same-run serial references; "
            "on a single-core host they read ~1x and the regression "
            "guard only enforces >1x when cpu_count > 1"
        ),
    }


def print_training_report(summary: Dict[str, Any]) -> None:
    """Human-readable table of :func:`run_training_bench` output."""
    gen = summary["generation"]
    pre = summary["prefetch"]
    tr = summary["training"]
    print(
        f"campaign bench (smoke={summary['smoke']}, "
        f"cpu_count={summary['cpu_count']})"
    )
    print(
        f"  generation: {gen['frames']} frames, "
        f"{gen['serial']['frames_per_s']:.1f} f/s serial vs "
        f"{gen['parallel']['frames_per_s']:.1f} f/s x"
        f"{gen['parallel']['workers']} "
        f"(speedup {gen['speedup']:.2f}x, "
        f"worker_invariant={gen['worker_invariant']})"
    )
    print(
        f"  prefetch:   {int(pre['hits'])} hits / {int(pre['waits'])} "
        f"waits, wait {pre['wait_s']:.3f}s of load {pre['load_s']:.3f}s "
        f"(overlap {pre['overlap_ratio']:.2f})"
    )
    print(
        f"  training:   W={tr['world_size']} epoch "
        f"{tr['sequential']['epoch_s']:.2f}s seq vs "
        f"{tr['parallel']['epoch_s']:.2f}s x{tr['parallel']['processes']}"
        f" (speedup {tr['speedup']:.2f}x, bit_identical="
        f"{tr['losses_bit_identical']})"
    )
