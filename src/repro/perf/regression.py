"""Bench-regression guard: compare a fresh benchmark run against the
committed ``BENCH_*.json`` baselines.

CI runs the smoke benchmarks on whatever shared runner it gets, so raw
wall-clock rates are not comparable to the committed numbers. The guard
therefore checks two kinds of signal that *are* portable:

* **ratios** -- speedup-vs-reference columns (vectorised over loop,
  compiled over eager, N workers over 1). These are computed on the
  same host within one run, so a real regression (a fast path silently
  falling back to the slow one) shows up no matter how slow the runner
  is. A fresh ratio must stay within ``tolerance`` (relative) of the
  committed one.
* **invariants** -- correctness booleans and zero-loss counters
  (``within_tolerance``, ``within_budgets``, ``mask_identical``,
  ``lost_clean_frames == 0``). These must hold in the FRESH run
  outright; the committed value only documents that they ever held.

:func:`compare_bench` dispatches on the benchmark's shape (pipeline /
model / gateway), returns a row-per-check report, and never raises on a
regression -- callers (``mmhand bench-compare``) turn ``ok`` into an
exit code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ReproError

DEFAULT_TOLERANCE = 0.5


def _dig(mapping: Dict[str, Any], path: str) -> Optional[Any]:
    node: Any = mapping
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


class _Report:
    def __init__(
        self,
        benchmark: str,
        tolerance: float,
        scale_mismatch: bool = False,
    ) -> None:
        self.benchmark = benchmark
        self.tolerance = tolerance
        self.scale_mismatch = scale_mismatch
        self.checks: List[Dict[str, Any]] = []

    def ratio(
        self, name: str, fresh: Optional[Any], committed: Optional[Any]
    ) -> None:
        """Fresh ratio must not fall more than ``tolerance`` below the
        committed ratio. Missing on either side is a skip, not a fail:
        smoke runs omit some sections and old baselines predate new
        columns. When one run is smoke and the other is not, the two
        were measured at different problem sizes and size-dependent
        speedups are incomparable; the floor then relaxes to 1.0 --
        the fast path must still beat its reference, which is exactly
        the "did it silently fall back" signal the guard exists for."""
        if fresh is None or committed is None:
            self.checks.append({
                "name": name, "kind": "ratio", "ok": True,
                "skipped": True, "fresh": fresh, "committed": committed,
            })
            return
        floor = float(committed) * (1.0 - self.tolerance)
        if self.scale_mismatch:
            floor = min(floor, 1.0)
        self.checks.append({
            "name": name, "kind": "ratio",
            "ok": float(fresh) >= floor, "skipped": False,
            "fresh": float(fresh), "committed": float(committed),
            "floor": floor,
        })

    def invariant(
        self, name: str, fresh: Optional[Any], expect: Any = True
    ) -> None:
        """The fresh run must satisfy the invariant outright."""
        self.checks.append({
            "name": name, "kind": "invariant",
            "ok": fresh == expect, "skipped": False,
            "fresh": fresh, "committed": expect,
        })

    def result(self) -> Dict[str, Any]:
        failed = [c for c in self.checks if not c["ok"]]
        return {
            "benchmark": self.benchmark,
            "tolerance": self.tolerance,
            "checks": self.checks,
            "failed": len(failed),
            "skipped": sum(1 for c in self.checks if c.get("skipped")),
            "ok": not failed,
        }


def _kind_of(summary: Dict[str, Any]) -> str:
    if summary.get("benchmark") == "gateway_serving":
        return "gateway_serving"
    if summary.get("benchmark") == "netfront_serving":
        return "netfront_serving"
    if summary.get("benchmark") == "campaign_training":
        return "campaign_training"
    if "cube_build" in summary:
        return "pipeline"
    if "within_tolerance" in summary:
        return "model"
    raise ReproError(
        "unrecognised benchmark summary: expected a BENCH_pipeline / "
        "BENCH_model / BENCH_serving / BENCH_training shape, got keys "
        f"{sorted(summary)[:8]}"
    )


def _compare_pipeline(
    fresh: Dict[str, Any], committed: Dict[str, Any], report: _Report
) -> None:
    for name in (
        "cube_build.batched_exact.speedup",
        "cube_build.batched_fast.speedup",
        "simulator.batched.speedup",
        "cfar.vectorized.speedup",
        "end_to_end.batched_fast.speedup",
    ):
        report.ratio(name, _dig(fresh, name), _dig(committed, name))
    report.invariant(
        "cfar.vectorized.mask_identical",
        _dig(fresh, "cfar.vectorized.mask_identical"),
    )
    diff = _dig(fresh, "cube_build.batched_exact.max_abs_diff_vs_reference")
    report.invariant(
        "cube_build.batched_exact.max_abs_diff_vs_reference<=1e-6",
        diff is not None and float(diff) <= 1e-6,
    )


def _compare_model(
    fresh: Dict[str, Any], committed: Dict[str, Any], report: _Report
) -> None:
    report.invariant(
        "within_tolerance", fresh.get("within_tolerance")
    )
    report.invariant(
        "quantized.within_budgets",
        _dig(fresh, "quantized.within_budgets"),
    )
    report.invariant(
        "memory_plan.planned_lt_arena",
        _dig(fresh, "memory_plan.planned_lt_arena"),
    )

    def best(summary: Dict[str, Any], column: str) -> Optional[float]:
        values = [
            _dig(row, column)
            for row in summary.get("batches", [])
            if isinstance(row, dict)
        ]
        values = [float(v) for v in values if v is not None]
        return max(values) if values else None

    for column in (
        "compiled.speedup_vs_autograd",
        "compiled.speedup_vs_no_grad",
    ):
        report.ratio(
            f"batches.max.{column}",
            best(fresh, column), best(committed, column),
        )


def _compare_gateway(
    fresh: Dict[str, Any], committed: Dict[str, Any], report: _Report
) -> None:
    report.invariant(
        "lost_clean_frames", fresh.get("lost_clean_frames"), expect=0
    )
    for row in fresh.get("rows", []):
        report.invariant(
            f"rows[workers={row.get('workers')}].worker_restarts",
            row.get("worker_restarts"), expect=0,
        )
    report.ratio(
        "speedup_max_vs_1_worker",
        fresh.get("speedup_max_vs_1_worker"),
        committed.get("speedup_max_vs_1_worker"),
    )


def _compare_netfront(
    fresh: Dict[str, Any], committed: Dict[str, Any], report: _Report
) -> None:
    """Netfront serving checks.

    The latency percentiles (connection setup p95, frame round-trip
    p95) are not portable across runners, so they gate only on sanity
    (present and positive -- the bench actually measured them); the
    robustness counters are the hard invariants: a clean loopback run
    must lose nothing and damage nothing.
    """
    for name in (
        "invariants.lost_clean_frames",
        "invariants.worker_restarts",
        "invariants.poses_shed",
        "invariants.frames_rejected",
        "invariants.client_errors",
    ):
        report.invariant(name, _dig(fresh, name), expect=0)
    for name in (
        "connection_setup.p95_ms",
        "round_trip.p95_ms",
    ):
        value = _dig(fresh, name)
        report.invariant(
            f"{name}>0", value is not None and float(value) > 0.0
        )
    if "fuzz" in fresh:
        report.invariant(
            "fuzz.protocol_errors>0",
            float(_dig(fresh, "fuzz.protocol_errors") or 0) > 0,
        )
    # Throughput shape: poses per clean frame is host-independent
    # (every frame past each session's window fill returns a pose).
    fresh_ratio = None
    committed_ratio = None
    if fresh.get("frames_sent"):
        fresh_ratio = (
            fresh.get("poses_received", 0) / fresh["frames_sent"]
        )
    if committed.get("frames_sent"):
        committed_ratio = (
            committed.get("poses_received", 0) / committed["frames_sent"]
        )
    report.ratio(
        "poses_per_clean_frame", fresh_ratio, committed_ratio
    )


def _compare_campaign(
    fresh: Dict[str, Any], committed: Dict[str, Any], report: _Report
) -> None:
    report.invariant(
        "training.losses_bit_identical",
        _dig(fresh, "training.losses_bit_identical"),
    )
    report.invariant(
        "generation.worker_invariant",
        _dig(fresh, "generation.worker_invariant"),
    )
    overlap = _dig(fresh, "prefetch.overlap_ratio")
    report.invariant(
        "prefetch.overlap_ratio_in_[0,1]",
        overlap is not None and 0.0 <= float(overlap) <= 1.0,
    )
    # Parallel generation must beat serial whenever the host can
    # actually parallelise; the committed baseline from a 1-core dev
    # box reads ~1x, so this is a fresh-run invariant, not a ratio.
    cpu_count = fresh.get("cpu_count")
    speedup = _dig(fresh, "generation.speedup")
    if isinstance(cpu_count, int) and cpu_count > 1:
        report.invariant(
            "generation.speedup>1_on_multicore",
            speedup is not None and float(speedup) > 1.0,
        )
    report.ratio(
        "generation.speedup",
        speedup, _dig(committed, "generation.speedup"),
    )
    report.ratio(
        "training.speedup",
        _dig(fresh, "training.speedup"),
        _dig(committed, "training.speedup"),
    )


def compare_bench(
    fresh: Dict[str, Any],
    committed: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """Compare a fresh benchmark summary against a committed baseline.

    Both summaries must be the same benchmark type; ``tolerance`` is
    the relative slack on ratio checks (0.5 = a fresh speedup may be up
    to 50% below the committed one before failing -- generous because
    CI runners vary wildly in core count and contention).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    fresh_kind = _kind_of(fresh)
    committed_kind = _kind_of(committed)
    if (
        fresh_kind == "netfront_serving"
        and committed_kind == "gateway_serving"
        and isinstance(committed.get("netfront"), dict)
    ):
        # The netfront baseline is committed as a section inside
        # BENCH_serving.json (one serving baseline file); unwrap it.
        committed = committed["netfront"]
        committed_kind = _kind_of(committed)
    if fresh_kind != committed_kind:
        raise ReproError(
            f"benchmark type mismatch: fresh is {fresh_kind!r}, "
            f"committed is {committed_kind!r}"
        )
    report = _Report(
        fresh_kind, tolerance,
        scale_mismatch=(
            bool(fresh.get("smoke")) != bool(committed.get("smoke"))
        ),
    )
    if fresh_kind == "pipeline":
        _compare_pipeline(fresh, committed, report)
    elif fresh_kind == "model":
        _compare_model(fresh, committed, report)
    elif fresh_kind == "campaign_training":
        _compare_campaign(fresh, committed, report)
    elif fresh_kind == "netfront_serving":
        _compare_netfront(fresh, committed, report)
    else:
        _compare_gateway(fresh, committed, report)
    return report.result()


def print_comparison(result: Dict[str, Any]) -> None:
    """Human-readable table of a :func:`compare_bench` result."""
    print(
        f"bench-compare [{result['benchmark']}] "
        f"tolerance={result['tolerance']:.0%}: "
        f"{len(result['checks'])} checks, "
        f"{result['failed']} failed, {result['skipped']} skipped"
    )
    width = max(len(c["name"]) for c in result["checks"])
    for check in result["checks"]:
        if check.get("skipped"):
            status = "SKIP"
        else:
            status = "ok" if check["ok"] else "FAIL"
        line = f"  {check['name']:<{width}s} {status:>4s}"
        if check["kind"] == "ratio" and not check.get("skipped"):
            line += (
                f"  fresh {check['fresh']:.3f} vs committed "
                f"{check['committed']:.3f} (floor {check['floor']:.3f})"
            )
        else:
            line += f"  fresh {check['fresh']!r}"
        print(line)
