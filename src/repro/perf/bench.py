"""Pipeline benchmark + perf-regression harness.

Measures the DSP hot path end to end and stage by stage:

* **cube build** -- the per-frame reference chain (scipy bandpass, one
  angle-spectra call per frame, plan cache disabled) against the batched
  chain in both precisions. This is the headline number: the batched
  path must deliver >= 3x frames/s over the baseline measured *in the
  same run*.
* **radar synthesis** -- frame-by-frame :meth:`RadarSimulator.frame`
  stacking vs the batched :meth:`RadarSimulator.sequence`.
* **CFAR** -- the per-cell loop vs the cumulative-sum vectorisation.
* **end to end** -- simulate + preprocess, baseline vs batched-fast.

Every fast path's equivalence error against its reference is recorded
next to its timing, so a perf claim and its correctness evidence live in
the same JSON. ``smoke=True`` shrinks sizes and repeats for CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from datetime import datetime, timezone
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.config import DspConfig, RadarConfig
from repro.dsp import PLAN_CACHE, CfarConfig, ca_cfar, ca_cfar_reference
from repro.dsp.radar_cube import CubeBuilder
from repro.radar import RadarSimulator
from repro.radar.scene import Scatterers, Scene


def _git_sha() -> str:
    """Current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip()


def _config_hash(summary: Dict[str, Any]) -> str:
    """Short digest of the summary's top-level scalar knobs.

    Two runs with the same hash measured the same workload shape
    (smoke/repeats/seed/...), so their numbers are comparable.
    """
    scalars = {
        key: value
        for key, value in summary.items()
        if isinstance(value, (str, int, float, bool))
    }
    payload = json.dumps(scalars, sort_keys=True, default=float)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def bench_provenance(summary: Dict[str, Any]) -> Dict[str, Any]:
    """Reproducibility metadata embedded into every benchmark JSON."""
    return {
        "git_sha": _git_sha(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "config_hash": _config_hash(summary),
    }


def write_bench_json(path: str, summary: Dict[str, Any]) -> str:
    """Write a benchmark summary to ``path`` as indented JSON.

    Shared by every benchmark entry point so the output format (and the
    directory handling) stays uniform. A ``provenance`` block (git SHA,
    platform, numpy version, UTC timestamp, config hash) is added unless
    the summary already carries one. Returns ``path``.
    """
    if "provenance" not in summary:
        summary = dict(summary)
        summary["provenance"] = bench_provenance(summary)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(summary, fh, indent=2, default=float, sort_keys=False)
        fh.write("\n")
    return path


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock seconds of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        tic = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tic)
    return best


def _make_scenes(
    rng: np.random.Generator, frames: int, scatterers: int = 20
) -> Sequence[Scene]:
    """Hand-like random scatterer scenes for the simulator benchmark."""
    scenes = []
    for _ in range(frames):
        positions = rng.uniform(
            [0.15, -0.15, -0.15], [0.45, 0.15, 0.15],
            size=(scatterers, 3),
        )
        velocities = rng.normal(0.0, 0.4, size=(scatterers, 3))
        amplitudes = rng.uniform(0.5, 1.5, size=scatterers)
        scenes.append(
            Scene(
                hand=Scatterers(
                    positions=positions,
                    velocities=velocities,
                    amplitudes=amplitudes,
                )
            )
        )
    return scenes


def _rel_diff(a: np.ndarray, b: np.ndarray) -> float:
    scale = float(np.abs(b).max())
    if scale == 0.0:
        return float(np.abs(np.asarray(a) - b).max())
    return float(np.abs(np.asarray(a) - b).max() / scale)


def run_pipeline_bench(
    smoke: bool = False,
    repeats: int = 3,
    seed: int = 0,
    frames: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the full pipeline benchmark; returns the summary dict.

    ``smoke`` shrinks the workload (fewer frames, one repeat) so the
    harness doubles as a CI regression check that every code path still
    runs and every equivalence bound still holds.
    """
    if frames is None:
        frames = 8 if smoke else 64
    if smoke:
        repeats = 1
    rng = np.random.default_rng(seed)
    radar = RadarConfig()
    dsp_exact = DspConfig()
    dsp_fast = DspConfig(precision="fast")

    builder = CubeBuilder(radar, dsp_exact)
    builder_fast = CubeBuilder(radar, dsp_fast)
    shape = (
        frames,
        builder.array.num_virtual,
        radar.chirp_loops,
        radar.samples_per_chirp,
    )
    raw = rng.normal(size=shape) + 1j * rng.normal(size=shape)

    # -- cube build: per-frame uncached baseline vs batched ------------
    def baseline_build() -> None:
        with PLAN_CACHE.disabled():
            for f in range(frames):
                builder.build_reference(raw[f])

    reference = builder.build_reference(raw)
    batched = builder.build(raw)
    batched_fast = builder_fast.build(raw)
    exact_abs = float(np.abs(batched.values - reference.values).max())
    fast_rel = _rel_diff(batched_fast.values, reference.values)

    builder.build(raw[:2])  # warm the plan cache before timing
    t_baseline = _best_of(baseline_build, repeats)
    t_batched = _best_of(lambda: builder.build(raw), repeats)
    t_fast = _best_of(lambda: builder_fast.build(raw), repeats)

    cube_bench = {
        "frames": frames,
        "baseline_per_frame": {
            "elapsed_s": t_baseline,
            "frames_per_s": frames / t_baseline,
        },
        "batched_exact": {
            "elapsed_s": t_batched,
            "frames_per_s": frames / t_batched,
            "speedup": t_baseline / t_batched,
            "max_abs_diff_vs_reference": exact_abs,
        },
        "batched_fast": {
            "elapsed_s": t_fast,
            "frames_per_s": frames / t_fast,
            "speedup": t_baseline / t_fast,
            "max_rel_diff_vs_reference": fast_rel,
        },
    }

    # -- radar synthesis: per-frame vs batched sequence ----------------
    sim_frames = max(4, frames // 4)
    scenes = _make_scenes(rng, sim_frames)
    sim = RadarSimulator(radar, seed=seed)
    seq_batched = RadarSimulator(radar, seed=seed).sequence(scenes)
    seq_reference = RadarSimulator(radar, seed=seed).sequence_reference(
        scenes
    )
    sim_rel = _rel_diff(seq_batched, seq_reference)
    t_seq_ref = _best_of(
        lambda: sim.sequence_reference(scenes), repeats
    )
    t_seq = _best_of(lambda: sim.sequence(scenes), repeats)
    sim_bench = {
        "frames": sim_frames,
        "per_frame": {
            "elapsed_s": t_seq_ref,
            "frames_per_s": sim_frames / t_seq_ref,
        },
        "batched": {
            "elapsed_s": t_seq,
            "frames_per_s": sim_frames / t_seq,
            "speedup": t_seq_ref / t_seq,
            "max_rel_diff_vs_reference": sim_rel,
        },
    }

    # -- CFAR: per-cell loop vs cumulative-sum vectorisation -----------
    profile = rng.exponential(1.0, size=64 if smoke else 512)
    cfar_config = CfarConfig()
    cfar_equal = bool(
        np.array_equal(
            ca_cfar(profile, cfar_config),
            ca_cfar_reference(profile, cfar_config),
        )
    )
    t_cfar_ref = _best_of(
        lambda: ca_cfar_reference(profile, cfar_config), repeats
    )
    t_cfar = _best_of(lambda: ca_cfar(profile, cfar_config), repeats)
    cfar_bench = {
        "profile_length": len(profile),
        "loop": {"elapsed_s": t_cfar_ref},
        "vectorized": {
            "elapsed_s": t_cfar,
            "speedup": t_cfar_ref / t_cfar,
            "mask_identical": cfar_equal,
        },
    }

    # -- model forward: batched joint regression over built cubes ------
    from repro.config import ModelConfig
    from repro.core.regressor import HandJointRegressor

    regressor = HandJointRegressor(dsp_exact, ModelConfig(), seed=seed)
    regressor.eval()
    # Segment shape comes from the regressor's own DSP config (it may
    # differ from dsp_exact when tests shrink the default model); feed
    # it the real built cubes when they fit, synthetic ones otherwise.
    rdsp = regressor.dsp
    st = rdsp.segment_frames
    frame_shape = (
        rdsp.doppler_bins,
        rdsp.range_bins,
        rdsp.azimuth_bins + rdsp.elevation_bins,
    )
    num_segments = max(frames // st, 1)
    if (
        batched.values.shape[1:] == frame_shape
        and batched.values.shape[0] >= num_segments * st
    ):
        segments = (
            batched.values[: num_segments * st]
            .reshape(num_segments, st, *frame_shape)
            .astype(np.float32)
        )
    else:
        segments = rng.normal(
            size=(num_segments, st) + frame_shape
        ).astype(np.float32)
    regressor.predict(segments)  # warm-up: first-call allocations
    t_forward = _best_of(lambda: regressor.predict(segments), repeats)
    model_bench = {
        "segments": num_segments,
        "batch_forward": {
            "elapsed_s": t_forward,
            "segments_per_s": num_segments / t_forward,
        },
    }

    # -- end to end: simulate + preprocess -----------------------------
    def end_to_end_baseline() -> None:
        raw_seq = sim.sequence_reference(scenes)
        with PLAN_CACHE.disabled():
            for f in range(sim_frames):
                builder.build_reference(raw_seq[f])

    def end_to_end_batched() -> None:
        builder_fast.build(sim.sequence(scenes))

    t_e2e_ref = _best_of(end_to_end_baseline, repeats)
    t_e2e = _best_of(end_to_end_batched, repeats)
    e2e_bench = {
        "frames": sim_frames,
        "baseline": {
            "elapsed_s": t_e2e_ref,
            "frames_per_s": sim_frames / t_e2e_ref,
        },
        "batched_fast": {
            "elapsed_s": t_e2e,
            "frames_per_s": sim_frames / t_e2e,
            "speedup": t_e2e_ref / t_e2e,
        },
    }

    return {
        "smoke": smoke,
        "repeats": repeats,
        "seed": seed,
        "cube_build": cube_bench,
        "simulator": sim_bench,
        "cfar": cfar_bench,
        "model_forward": model_bench,
        "end_to_end": e2e_bench,
        "plan_cache": PLAN_CACHE.stats(),
    }


def print_pipeline_report(summary: Dict[str, Any]) -> None:
    """Human-readable one-screen report of a pipeline bench summary."""
    cube = summary["cube_build"]
    print(
        f"cube build ({cube['frames']} frames): "
        f"baseline {cube['baseline_per_frame']['frames_per_s']:8.1f} "
        f"frames/s | batched exact "
        f"{cube['batched_exact']['frames_per_s']:8.1f} frames/s "
        f"({cube['batched_exact']['speedup']:.2f}x) | batched fast "
        f"{cube['batched_fast']['frames_per_s']:8.1f} frames/s "
        f"({cube['batched_fast']['speedup']:.2f}x)"
    )
    print(
        "  equivalence: exact max|diff| "
        f"{cube['batched_exact']['max_abs_diff_vs_reference']:.2e}, "
        "fast max rel "
        f"{cube['batched_fast']['max_rel_diff_vs_reference']:.2e}"
    )
    sim = summary["simulator"]
    print(
        f"simulator ({sim['frames']} frames): per-frame "
        f"{sim['per_frame']['frames_per_s']:8.1f} frames/s | batched "
        f"{sim['batched']['frames_per_s']:8.1f} frames/s "
        f"({sim['batched']['speedup']:.2f}x, max rel "
        f"{sim['batched']['max_rel_diff_vs_reference']:.2e})"
    )
    cfar = summary["cfar"]
    print(
        f"ca_cfar (n={cfar['profile_length']}): loop "
        f"{cfar['loop']['elapsed_s'] * 1e6:7.0f} us | vectorized "
        f"{cfar['vectorized']['elapsed_s'] * 1e6:7.0f} us "
        f"({cfar['vectorized']['speedup']:.1f}x, mask identical: "
        f"{cfar['vectorized']['mask_identical']})"
    )
    if "model_forward" in summary:
        model = summary["model_forward"]
        print(
            f"model forward ({model['segments']} segments): "
            f"{model['batch_forward']['segments_per_s']:8.1f} segments/s "
            f"({model['batch_forward']['elapsed_s'] * 1e3:.1f} ms/batch)"
        )
    e2e = summary["end_to_end"]
    print(
        f"end-to-end ({e2e['frames']} frames): baseline "
        f"{e2e['baseline']['frames_per_s']:8.1f} frames/s | batched "
        f"fast {e2e['batched_fast']['frames_per_s']:8.1f} frames/s "
        f"({e2e['batched_fast']['speedup']:.2f}x)"
    )
    cache = summary["plan_cache"]
    print(
        f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['entries']} entries)"
    )
