"""Compiled-vs-eager model forward benchmark.

Times the joint-regression forward pass four ways at serving batch
sizes:

* **eager autograd** -- the training-style forward: every op records a
  graph node with backward closures (what serving paid before the
  compiled engine existed);
* **eager no_grad** -- the same modules with graph recording suppressed
  (:func:`repro.nn.tensor.no_grad`), the general fallback path;
* **compiled** -- the flat autograd-free plan from
  :mod:`repro.nn.inference` with Conv+BN folding, fused activations and
  buffer reuse;
* **compiled sharded** -- the compiled plan with the batch split across
  worker threads.

Every compiled timing is paired with its max absolute deviation from
the eager output on the same inputs, and the summary carries a single
``within_tolerance`` verdict -- the perf claim and its correctness
evidence live in the same JSON (``BENCH_model.json``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.config import DspConfig, ModelConfig
from repro.core.regressor import HandJointRegressor
from repro.nn.tensor import Tensor
from repro.perf.bench import _best_of

DEFAULT_TOLERANCE = 1e-5


def _configs(smoke: bool):
    """Full-size model for real numbers, a shrunken one for CI smoke."""
    if smoke:
        dsp = DspConfig(
            range_bins=16, doppler_bins=4, azimuth_bins=8,
            elevation_bins=8, segment_frames=2,
        )
        model = ModelConfig(
            base_channels=4, hourglass_depth=1, num_blocks=1,
            feature_dim=16, lstm_hidden=16,
        )
        return dsp, model
    return DspConfig(), ModelConfig()


def run_model_bench(
    smoke: bool = False,
    repeats: int = 3,
    seed: int = 0,
    batch_sizes: Optional[Sequence[int]] = None,
    shards: int = 4,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """Benchmark the compiled inference engine; returns the summary.

    The summary's ``within_tolerance`` is ``False`` when any compiled
    output (plain or sharded) deviates from the eager forward by more
    than ``tolerance`` -- CI fails the job on that flag.
    """
    if smoke:
        repeats = 1
        if batch_sizes is None:
            batch_sizes = (4,)
    elif batch_sizes is None:
        batch_sizes = (4, 16)
    dsp, model = _configs(smoke)
    regressor = HandJointRegressor(dsp, model, seed=seed)
    regressor.eval()
    rng = np.random.default_rng(seed)
    plan = regressor.compiled()

    batches: List[Dict[str, Any]] = []
    worst_diff = 0.0
    for batch in batch_sizes:
        segments = rng.normal(
            size=(
                batch, dsp.segment_frames, dsp.doppler_bins,
                dsp.range_bins, dsp.angle_bins_total,
            )
        ).astype(np.float32)
        normalized = regressor.normalize_inputs(segments)

        eager = regressor.predict(segments, use_compiled=False)
        compiled = regressor.predict(segments)
        sharded = regressor.predict(segments, shards=shards)
        diff = float(np.abs(compiled - eager).max())
        diff_sharded = float(np.abs(sharded - eager).max())
        worst_diff = max(worst_diff, diff, diff_sharded)

        def autograd_forward() -> None:
            # Graph recording on (the parameters require grad): this is
            # what a forward through the training modules costs.
            regressor.forward(Tensor(normalized))

        t_autograd = _best_of(autograd_forward, repeats)
        t_no_grad = _best_of(
            lambda: regressor.predict(segments, use_compiled=False),
            repeats,
        )
        t_compiled = _best_of(lambda: regressor.predict(segments), repeats)
        t_sharded = _best_of(
            lambda: regressor.predict(segments, shards=shards), repeats
        )
        batches.append(
            {
                "batch_size": int(batch),
                "eager_autograd": {
                    "elapsed_s": t_autograd,
                    "segments_per_s": batch / t_autograd,
                },
                "eager_no_grad": {
                    "elapsed_s": t_no_grad,
                    "segments_per_s": batch / t_no_grad,
                    "speedup_vs_autograd": t_autograd / t_no_grad,
                },
                "compiled": {
                    "elapsed_s": t_compiled,
                    "segments_per_s": batch / t_compiled,
                    "speedup_vs_autograd": t_autograd / t_compiled,
                    "speedup_vs_no_grad": t_no_grad / t_compiled,
                    "max_abs_diff_vs_eager": diff,
                },
                "compiled_sharded": {
                    "shards": int(shards),
                    "elapsed_s": t_sharded,
                    "segments_per_s": batch / t_sharded,
                    "speedup_vs_autograd": t_autograd / t_sharded,
                    "max_abs_diff_vs_eager": diff_sharded,
                },
            }
        )

    return {
        "smoke": smoke,
        "repeats": repeats,
        "seed": seed,
        "tolerance": tolerance,
        "max_abs_diff": worst_diff,
        "within_tolerance": worst_diff <= tolerance,
        "plan": plan.stats() if plan is not None else None,
        "batches": batches,
    }


def print_model_report(summary: Dict[str, Any]) -> None:
    """Human-readable one-screen report of a model bench summary."""
    for bench in summary["batches"]:
        batch = bench["batch_size"]
        autograd = bench["eager_autograd"]
        no_grad = bench["eager_no_grad"]
        compiled = bench["compiled"]
        sharded = bench["compiled_sharded"]
        print(
            f"model forward (B={batch}): autograd "
            f"{autograd['elapsed_s'] * 1e3:7.1f} ms | no_grad "
            f"{no_grad['elapsed_s'] * 1e3:7.1f} ms "
            f"({no_grad['speedup_vs_autograd']:.2f}x) | compiled "
            f"{compiled['elapsed_s'] * 1e3:7.1f} ms "
            f"({compiled['speedup_vs_autograd']:.2f}x) | "
            f"x{sharded['shards']} shards "
            f"{sharded['elapsed_s'] * 1e3:7.1f} ms "
            f"({sharded['speedup_vs_autograd']:.2f}x)"
        )
    plan = summary.get("plan")
    if plan is not None:
        print(
            f"plan: {plan['ops']} ops over {plan['params']} params, "
            f"arena {plan['arena_bytes'] / 1e6:.1f} MB in "
            f"{plan['arena_buffers']} buffers"
        )
    print(
        f"equivalence: max|compiled - eager| {summary['max_abs_diff']:.2e}"
        f" (tolerance {summary['tolerance']:.0e}, within: "
        f"{summary['within_tolerance']})"
    )
