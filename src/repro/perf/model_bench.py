"""Compiled-vs-eager model forward benchmark.

Times the joint-regression forward pass at serving batch sizes:

* **eager autograd** -- the training-style forward: every op records a
  graph node with backward closures (what serving paid before the
  compiled engine existed);
* **eager no_grad** -- the same modules with graph recording suppressed
  (:func:`repro.nn.tensor.no_grad`), the general fallback path;
* **compiled** -- the flat autograd-free plan from
  :mod:`repro.nn.inference` with Conv+BN folding, fused activations and
  a static memory plan;
* **compiled sharded** -- the compiled plan with the batch split across
  worker threads;
* **compiled float16 / int8** -- the quantized execution modes (int8 is
  calibrated first on a seeded capture campaign from
  :mod:`repro.data`).

Every compiled timing is paired with its deviation from the eager
output on the same inputs; the summary carries a ``within_tolerance``
verdict for float32 and a ``quantized.within_budgets`` verdict for the
joint-millimetre error budgets (float16 within 1 mm of the float32
compiled output, int8 mean joint error within 5 mm of eager on the
calibration batch) -- the perf claim and its correctness evidence live
in the same JSON (``BENCH_model.json``). The summary also reports the
static memory plan's footprint (``planned_bytes`` vs the legacy
``arena_bytes``) and a top-10 per-op timing profile.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.config import DspConfig, ModelConfig
from repro.core.regressor import HandJointRegressor
from repro.nn.tensor import Tensor
from repro.perf.bench import _best_of

DEFAULT_TOLERANCE = 1e-5
FLOAT16_BUDGET_MM = 1.0
INT8_BUDGET_MM = 5.0


def bench_configs(smoke: bool):
    """Full-size model for real numbers, a shrunken one for CI smoke."""
    if smoke:
        dsp = DspConfig(
            range_bins=16, doppler_bins=4, azimuth_bins=8,
            elevation_bins=8, segment_frames=2,
        )
        model = ModelConfig(
            base_channels=4, hourglass_depth=1, num_blocks=1,
            feature_dim=16, lstm_hidden=16,
        )
        return dsp, model
    return DspConfig(), ModelConfig()


# Back-compat alias (pre-quantization name).
_configs = bench_configs


def calibration_segments(
    dsp: DspConfig, count: int = 16, seed: int = 0
) -> np.ndarray:
    """Seeded capture-campaign segments for quantization calibration.

    Runs a tiny deterministic campaign through the real simulation +
    DSP pipeline (:mod:`repro.data`) so the recorded activation ranges
    reflect radar-cube statistics rather than white noise. Returns raw
    ``(count, st, V, D, A)`` segments (callers normalise).
    """
    from repro.config import CampaignConfig
    from repro.data.collection import CampaignGenerator, CaptureOptions
    from repro.hand.subjects import make_subjects

    generator = CampaignGenerator(
        dsp=dsp,
        campaign=CampaignConfig(
            num_users=1, segments_per_user=max(count, 1)
        ),
    )
    dataset = generator.generate(
        subjects=make_subjects(1),
        options=CaptureOptions(environment="classroom"),
        seed=seed,
    )
    return np.asarray(dataset.segments[:count], dtype=np.float32)


def _tile_batch(segments: np.ndarray, batch: int) -> np.ndarray:
    """First ``batch`` segments, tiling the pool if it is too small."""
    if len(segments) >= batch:
        return segments[:batch]
    reps = -(-batch // len(segments))
    return np.concatenate([segments] * reps)[:batch]


def run_model_bench(
    smoke: bool = False,
    repeats: int = 3,
    seed: int = 0,
    batch_sizes: Optional[Sequence[int]] = None,
    shards: int = 4,
    tolerance: float = DEFAULT_TOLERANCE,
    calibration_count: int = 16,
) -> Dict[str, Any]:
    """Benchmark the compiled inference engine; returns the summary.

    The summary's ``within_tolerance`` is ``False`` when any float32
    compiled output (plain or sharded) deviates from the eager forward
    by more than ``tolerance``; ``quantized["within_budgets"]`` is
    ``False`` when a quantized mode exceeds its joint-mm error budget.
    CI fails the bench job on either flag.
    """
    if smoke:
        repeats = 1
        if batch_sizes is None:
            batch_sizes = (4,)
    elif batch_sizes is None:
        batch_sizes = (4, 16)
    dsp, model = bench_configs(smoke)
    regressor = HandJointRegressor(dsp, model, seed=seed)
    regressor.eval()
    rng = np.random.default_rng(seed)
    plan = regressor.compiled()

    # Calibrate int8 on a seeded campaign so the quantized rows can run
    # (and so their accuracy is measured on in-distribution data).
    calib = calibration_segments(dsp, count=calibration_count, seed=seed)
    calibrated_registers = (
        regressor.calibrate(calib) if plan is not None else 0
    )

    batches: List[Dict[str, Any]] = []
    worst_diff = 0.0
    for batch in batch_sizes:
        segments = rng.normal(
            size=(
                batch, dsp.segment_frames, dsp.doppler_bins,
                dsp.range_bins, dsp.angle_bins_total,
            )
        ).astype(np.float32)
        normalized = regressor.normalize_inputs(segments)
        quant_segments = _tile_batch(calib, batch)

        eager = regressor.predict(segments, use_compiled=False)
        compiled = regressor.predict(segments)
        sharded = regressor.predict(segments, shards=shards)
        diff = float(np.abs(compiled - eager).max())
        diff_sharded = float(np.abs(sharded - eager).max())
        worst_diff = max(worst_diff, diff, diff_sharded)
        # Quantized accuracy is measured on campaign segments: the
        # calibrated ranges describe radar-cube activations, so white
        # noise would be out of distribution for int8.
        quant_f32 = regressor.predict(quant_segments)
        quant_eager = regressor.predict(quant_segments, use_compiled=False)
        f16_out = regressor.predict(quant_segments, precision="float16")
        int8_out = regressor.predict(quant_segments, precision="int8")
        f16_mm = float(np.abs(f16_out - quant_f32).max()) * 1e3
        int8_mm = float(
            np.mean(np.linalg.norm(int8_out - quant_eager, axis=-1))
        ) * 1e3

        def autograd_forward() -> None:
            # Graph recording on (the parameters require grad): this is
            # what a forward through the training modules costs.
            regressor.forward(Tensor(normalized))

        t_autograd = _best_of(autograd_forward, repeats)
        t_no_grad = _best_of(
            lambda: regressor.predict(segments, use_compiled=False),
            repeats,
        )
        t_compiled = _best_of(lambda: regressor.predict(segments), repeats)
        t_sharded = _best_of(
            lambda: regressor.predict(segments, shards=shards), repeats
        )
        t_f16 = _best_of(
            lambda: regressor.predict(
                quant_segments, precision="float16"
            ),
            repeats,
        )
        t_int8 = _best_of(
            lambda: regressor.predict(quant_segments, precision="int8"),
            repeats,
        )
        batches.append(
            {
                "batch_size": int(batch),
                "eager_autograd": {
                    "elapsed_s": t_autograd,
                    "segments_per_s": batch / t_autograd,
                },
                "eager_no_grad": {
                    "elapsed_s": t_no_grad,
                    "segments_per_s": batch / t_no_grad,
                    "speedup_vs_autograd": t_autograd / t_no_grad,
                },
                "compiled": {
                    "elapsed_s": t_compiled,
                    "segments_per_s": batch / t_compiled,
                    "speedup_vs_autograd": t_autograd / t_compiled,
                    "speedup_vs_no_grad": t_no_grad / t_compiled,
                    "max_abs_diff_vs_eager": diff,
                },
                "compiled_sharded": {
                    "shards": int(shards),
                    "elapsed_s": t_sharded,
                    "segments_per_s": batch / t_sharded,
                    "speedup_vs_autograd": t_autograd / t_sharded,
                    "max_abs_diff_vs_eager": diff_sharded,
                },
                "compiled_float16": {
                    "elapsed_s": t_f16,
                    "segments_per_s": batch / t_f16,
                    "speedup_vs_autograd": t_autograd / t_f16,
                    "max_joint_diff_mm_vs_float32": f16_mm,
                },
                "compiled_int8": {
                    "elapsed_s": t_int8,
                    "segments_per_s": batch / t_int8,
                    "speedup_vs_autograd": t_autograd / t_int8,
                    "mean_joint_err_mm_vs_eager": int8_mm,
                },
            }
        )

    # Accuracy gates on the calibration batch itself (the budgets the
    # serving tier promises when running quantized).
    quantized: Optional[Dict[str, Any]] = None
    if plan is not None and calibrated_registers:
        gate = _tile_batch(calib, min(len(calib), 8))
        eager_gate = regressor.predict(gate, use_compiled=False)
        f32_gate = regressor.predict(gate)
        f16_gate = regressor.predict(gate, precision="float16")
        int8_gate = regressor.predict(gate, precision="int8")
        f16_gate_mm = float(np.abs(f16_gate - f32_gate).max()) * 1e3
        int8_gate_mm = float(
            np.mean(np.linalg.norm(int8_gate - eager_gate, axis=-1))
        ) * 1e3
        quantized = {
            "calibration_segments": int(len(calib)),
            "calibrated_registers": int(calibrated_registers),
            "float16_max_diff_mm": f16_gate_mm,
            "float16_budget_mm": FLOAT16_BUDGET_MM,
            "int8_mean_joint_err_mm": int8_gate_mm,
            "int8_budget_mm": INT8_BUDGET_MM,
            "within_budgets": (
                f16_gate_mm <= FLOAT16_BUDGET_MM
                and int8_gate_mm <= INT8_BUDGET_MM
            ),
        }

    memory_plan: Optional[Dict[str, Any]] = None
    op_profile: List[Dict[str, Any]] = []
    if plan is not None:
        stats = plan.stats()
        memory_plan = {
            "arena_bytes": stats["arena_bytes"],
            "planned_bytes": stats["planned_bytes"],
            "planned_slots": stats["planned_slots"],
            "savings_ratio": (
                1.0 - stats["planned_bytes"] / stats["arena_bytes"]
                if stats["arena_bytes"] else 0.0
            ),
            "planned_lt_arena": (
                stats["planned_bytes"] < stats["arena_bytes"]
            ),
        }
        profile_input = regressor.normalize_inputs(
            rng.normal(
                size=(
                    max(batch_sizes), dsp.segment_frames,
                    dsp.doppler_bins, dsp.range_bins,
                    dsp.angle_bins_total,
                )
            ).astype(np.float32)
        )
        op_profile = plan.profile(
            profile_input, repeats=max(repeats, 1)
        )[:10]

    return {
        "smoke": smoke,
        "repeats": repeats,
        "seed": seed,
        "tolerance": tolerance,
        "max_abs_diff": worst_diff,
        "within_tolerance": worst_diff <= tolerance,
        "plan": plan.stats() if plan is not None else None,
        "memory_plan": memory_plan,
        "quantized": quantized,
        "op_profile": op_profile,
        "batches": batches,
    }


def print_model_report(summary: Dict[str, Any]) -> None:
    """Human-readable one-screen report of a model bench summary."""
    for bench in summary["batches"]:
        batch = bench["batch_size"]
        autograd = bench["eager_autograd"]
        no_grad = bench["eager_no_grad"]
        compiled = bench["compiled"]
        sharded = bench["compiled_sharded"]
        print(
            f"model forward (B={batch}): autograd "
            f"{autograd['elapsed_s'] * 1e3:7.1f} ms | no_grad "
            f"{no_grad['elapsed_s'] * 1e3:7.1f} ms "
            f"({no_grad['speedup_vs_autograd']:.2f}x) | compiled "
            f"{compiled['elapsed_s'] * 1e3:7.1f} ms "
            f"({compiled['speedup_vs_autograd']:.2f}x) | "
            f"x{sharded['shards']} shards "
            f"{sharded['elapsed_s'] * 1e3:7.1f} ms "
            f"({sharded['speedup_vs_autograd']:.2f}x)"
        )
        f16 = bench.get("compiled_float16")
        int8 = bench.get("compiled_int8")
        if f16 is not None and int8 is not None:
            print(
                f"  quantized (B={batch}): float16 "
                f"{f16['elapsed_s'] * 1e3:7.1f} ms "
                f"({f16['speedup_vs_autograd']:.2f}x, "
                f"{f16['max_joint_diff_mm_vs_float32']:.3f} mm) | int8 "
                f"{int8['elapsed_s'] * 1e3:7.1f} ms "
                f"({int8['speedup_vs_autograd']:.2f}x, "
                f"{int8['mean_joint_err_mm_vs_eager']:.3f} mm)"
            )
    plan = summary.get("plan")
    if plan is not None:
        print(
            f"plan: {plan['ops']} ops over {plan['params']} params, "
            f"arena {plan['arena_bytes'] / 1e6:.1f} MB in "
            f"{plan['arena_buffers']} buffers"
        )
    memory = summary.get("memory_plan")
    if memory is not None:
        print(
            f"memory plan: {memory['planned_bytes'] / 1e6:.1f} MB in "
            f"{memory['planned_slots']} slots vs "
            f"{memory['arena_bytes'] / 1e6:.1f} MB arena "
            f"({memory['savings_ratio'] * 100:.0f}% saved)"
        )
    quantized = summary.get("quantized")
    if quantized is not None:
        print(
            f"quantized budgets: float16 "
            f"{quantized['float16_max_diff_mm']:.3f} mm "
            f"(<= {quantized['float16_budget_mm']:.1f}) | int8 "
            f"{quantized['int8_mean_joint_err_mm']:.3f} mm "
            f"(<= {quantized['int8_budget_mm']:.1f}) | within: "
            f"{quantized['within_budgets']}"
        )
    profile = summary.get("op_profile") or []
    if profile:
        print("top ops:")
        for row in profile[:5]:
            print(
                f"  {row['op']:<24s} op{row['op_id']:<4d} "
                f"{row['total_s'] * 1e3:8.2f} ms "
                f"({row['share'] * 100:5.1f}%)"
            )


__all__ = [
    "bench_configs",
    "calibration_segments",
    "print_model_report",
    "run_model_bench",
]
