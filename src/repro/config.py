"""Configuration dataclasses for every subsystem of the mmHand reproduction.

The defaults follow the paper's experimental setup (TI IWR1443: 77-81 GHz,
80 us chirps, 64 samples per chirp, 3 TX x 4 RX TDM-MIMO) with scaled-down
cube sizes so that the from-scratch numpy network trains in minutes rather
than GPU-days. Every size is configurable; the DSP is exact for any size.

All configs are frozen dataclasses: construct once, pass around freely.
``validate()`` is called from ``__post_init__`` so an invalid config fails
at construction time, not deep inside the pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigError

SPEED_OF_LIGHT = 299_792_458.0
"""Propagation speed of mmWave signals in air (m/s)."""


@dataclass(frozen=True)
class RadarConfig:
    """FMCW radar front-end parameters, defaulted to the TI IWR1443 setup.

    The paper transmits chirps from 77 GHz to 81 GHz with an 80 us cycle
    time, samples 64 times per chirp, and cycles the 3 transmit antennas
    64 times per frame. ``chirp_loops`` defaults lower (16) to keep the
    simulated cube small; the Doppler axis is simply shorter.
    """

    start_frequency_hz: float = 77.0e9
    bandwidth_hz: float = 4.0e9
    chirp_duration_s: float = 80.0e-6
    samples_per_chirp: int = 64
    chirp_loops: int = 16
    num_tx: int = 3
    num_rx: int = 4
    frame_period_s: float = 0.05
    tx_power: float = 1.0
    noise_std: float = 0.02
    rx_spacing_wavelengths: float = 0.5

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ConfigError("bandwidth_hz must be positive")
        if self.chirp_duration_s <= 0:
            raise ConfigError("chirp_duration_s must be positive")
        if self.samples_per_chirp < 4:
            raise ConfigError("samples_per_chirp must be at least 4")
        if self.chirp_loops < 2:
            raise ConfigError("chirp_loops must be at least 2")
        if self.num_tx < 1 or self.num_rx < 2:
            raise ConfigError(
                "AoA estimation requires at least 1 TX and 2 RX antennas"
            )
        if self.noise_std < 0:
            raise ConfigError("noise_std cannot be negative")

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength at the chirp centre frequency."""
        centre = self.start_frequency_hz + self.bandwidth_hz / 2.0
        return SPEED_OF_LIGHT / centre

    @property
    def sample_rate_hz(self) -> float:
        """ADC sample rate implied by samples-per-chirp over the chirp."""
        return self.samples_per_chirp / self.chirp_duration_s

    @property
    def range_resolution_m(self) -> float:
        """Range resolution c / (2B)."""
        return SPEED_OF_LIGHT / (2.0 * self.bandwidth_hz)

    @property
    def max_range_m(self) -> float:
        """Maximum unambiguous range for complex baseband sampling."""
        return self.range_resolution_m * self.samples_per_chirp

    @property
    def chirp_repetition_s(self) -> float:
        """Per-TX chirp repetition interval under TDM-MIMO."""
        return self.chirp_duration_s * self.num_tx

    @property
    def max_velocity_mps(self) -> float:
        """Maximum unambiguous radial velocity (per-TX Doppler sampling)."""
        return self.wavelength_m / (4.0 * self.chirp_repetition_s)

    @property
    def velocity_resolution_mps(self) -> float:
        """Velocity resolution across one frame of chirp loops."""
        return self.wavelength_m / (
            2.0 * self.chirp_repetition_s * self.chirp_loops
        )

    @property
    def num_virtual_antennas(self) -> int:
        """Size of the TDM-MIMO virtual array."""
        return self.num_tx * self.num_rx


@dataclass(frozen=True)
class DspConfig:
    """Signal pre-processing parameters.

    The paper filters the IF signal with an 8th-order Butterworth bandpass
    that keeps the hand's range band, then runs range-FFT, Doppler-FFT and
    angle-FFT, using zoom-FFT with a refinement factor of 2 restricted to
    +/-30 degrees for both azimuth and elevation.

    ``precision`` selects the arithmetic of the whole DSP chain:
    ``"exact"`` (default) runs in complex128/float64; ``"fast"`` runs in
    complex64/float32, roughly halving memory bandwidth at the cost of
    ~1e-5 relative error on cube values -- far below the noise floor of
    the joint-error metrics (see DESIGN.md "Performance").
    """

    butterworth_order: int = 8
    hand_band_m: Tuple[float, float] = (0.08, 0.62)
    range_bins: int = 32
    doppler_bins: int = 8
    azimuth_bins: int = 16
    elevation_bins: int = 16
    angle_span_deg: float = 30.0
    zoom_factor: int = 2
    segment_frames: int = 4
    range_window: str = "hann"
    doppler_window: str = "hann"
    precision: str = "exact"

    def __post_init__(self) -> None:
        if self.precision not in ("exact", "fast"):
            raise ConfigError(
                "precision must be 'exact' or 'fast', got "
                f"{self.precision!r}"
            )
        lo, hi = self.hand_band_m
        if not 0 <= lo < hi:
            raise ConfigError("hand_band_m must satisfy 0 <= lo < hi")
        if self.butterworth_order < 1:
            raise ConfigError("butterworth_order must be >= 1")
        if min(self.range_bins, self.doppler_bins) < 2:
            raise ConfigError("range_bins and doppler_bins must be >= 2")
        if min(self.azimuth_bins, self.elevation_bins) < 2:
            raise ConfigError("angle bins must be >= 2")
        if self.zoom_factor < 1:
            raise ConfigError("zoom_factor must be >= 1")
        if self.segment_frames < 1:
            raise ConfigError("segment_frames must be >= 1")
        if not 0 < self.angle_span_deg <= 90:
            raise ConfigError("angle_span_deg must lie in (0, 90]")

    @property
    def angle_bins_total(self) -> int:
        """Angle-axis length of the radar cube (azimuth + elevation)."""
        return self.azimuth_bins + self.elevation_bins

    @property
    def angle_span_rad(self) -> float:
        return math.radians(self.angle_span_deg)

    @property
    def complex_dtype(self) -> str:
        """Complex dtype name of the DSP chain under ``precision``."""
        return "complex64" if self.precision == "fast" else "complex128"

    @property
    def float_dtype(self) -> str:
        """Real dtype name of cube values under ``precision``."""
        return "float32" if self.precision == "fast" else "float64"


@dataclass(frozen=True)
class ModelConfig:
    """mmSpaceNet + temporal model hyper-parameters.

    ``base_channels`` and ``lstm_hidden`` are scaled to numpy-training
    budgets; the architecture (attention residual hourglass blocks, two-stage
    channel attention, spatial attention, LSTM, FC head) matches the paper.
    """

    base_channels: int = 16
    hourglass_depth: int = 2
    num_blocks: int = 2
    use_frame_attention: bool = True
    use_velocity_attention: bool = True
    use_spatial_attention: bool = True
    feature_dim: int = 96
    lstm_hidden: int = 96
    num_joints: int = 21
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.base_channels < 1:
            raise ConfigError("base_channels must be >= 1")
        if self.hourglass_depth < 1:
            raise ConfigError("hourglass_depth must be >= 1")
        if self.num_blocks < 1:
            raise ConfigError("num_blocks must be >= 1")
        if self.num_joints != 21:
            raise ConfigError("mmHand uses the 21-hand-joint model")
        if not 0 <= self.dropout < 1:
            raise ConfigError("dropout must lie in [0, 1)")


@dataclass(frozen=True)
class TrainConfig:
    """Training hyper-parameters.

    The paper trains 500 epochs with batch size 16, initial learning rate
    0.001 under cosine decay, and a combined loss
    ``L = beta * L3D + gamma * Lkine``. Defaults keep the paper's optimizer
    settings but fewer epochs for the scaled-down simulator datasets.
    """

    learning_rate: float = 1.0e-3
    batch_size: int = 16
    epochs: int = 30
    beta_3d: float = 1.0
    gamma_kinematic: float = 0.1
    collinear_margin: float = 0.01
    collinear_cosine: float = 0.99
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    seed: int = 0
    log_every: int = 50

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if self.epochs < 1:
            raise ConfigError("epochs must be >= 1")
        if self.beta_3d < 0 or self.gamma_kinematic < 0:
            raise ConfigError("loss weights cannot be negative")
        if not 0 < self.collinear_cosine < 1:
            raise ConfigError("collinear_cosine must lie in (0, 1)")


@dataclass(frozen=True)
class CampaignConfig:
    """Simulated data-collection campaign, mirroring the paper's setup.

    The paper recruits 10 volunteers (5 male, 5 female, heights 1.65-1.85 m),
    hands kept 20-40 cm from the radar, performing interaction and counting
    gestures in classrooms, corridors and playgrounds; 150k valid frames per
    volunteer. ``segments_per_user`` is the scaled-down equivalent.
    """

    num_users: int = 10
    segments_per_user: int = 120
    distance_range_m: Tuple[float, float] = (0.20, 0.40)
    environments: Tuple[str, ...] = ("classroom", "corridor", "playground")
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ConfigError("num_users must be >= 1")
        if self.segments_per_user < 1:
            raise ConfigError("segments_per_user must be >= 1")
        lo, hi = self.distance_range_m
        if not 0 < lo < hi:
            raise ConfigError("distance_range_m must satisfy 0 < lo < hi")
        if not self.environments:
            raise ConfigError("at least one environment is required")


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of every subsystem configuration for the end-to-end pipeline."""

    radar: RadarConfig = field(default_factory=RadarConfig)
    dsp: DspConfig = field(default_factory=DspConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
