"""FMCW mmWave radar simulator.

Replaces the paper's TI IWR1443 + DCA1000EVM capture chain: the simulator
synthesises the exact intermediate-frequency (IF) signal of paper Eq. (1)
for a scene of point scatterers (hand, body, furniture, occluders), over
the IWR1443's TDM-MIMO virtual antenna array, so every downstream DSP step
runs unchanged on simulated data.
"""

from repro.radar.antenna import VirtualArray, iwr1443_array
from repro.radar.chirp import synthesize_frame, synthesize_sequence
from repro.radar.scatterers import (
    GloveSpec,
    HandheldObjectSpec,
    hand_scatterers,
    GLOVE_MATERIALS,
    HANDHELD_OBJECTS,
)
from repro.radar.clutter import (
    ENVIRONMENTS,
    OCCLUDER_MATERIALS,
    BodyPosition,
    OccluderSpec,
    body_scatterers,
    environment_scatterers,
)
from repro.radar.scene import Scatterers, Scene
from repro.radar.radar import RadarSimulator, simulate_sequences

__all__ = [
    "VirtualArray",
    "iwr1443_array",
    "synthesize_frame",
    "synthesize_sequence",
    "simulate_sequences",
    "GloveSpec",
    "HandheldObjectSpec",
    "hand_scatterers",
    "GLOVE_MATERIALS",
    "HANDHELD_OBJECTS",
    "ENVIRONMENTS",
    "OCCLUDER_MATERIALS",
    "BodyPosition",
    "OccluderSpec",
    "body_scatterers",
    "environment_scatterers",
    "Scatterers",
    "Scene",
    "RadarSimulator",
]
