"""Hand-to-scatterer conversion.

mmWave wavelengths (~3.9 mm) are small against hand features, so a hand
reflects like a cloud of point scatterers: joints, phalange segments and
the palm surface. This module places those scatterers from the kinematic
hand state, applies orientation-dependent reflectivity and per-frame
speckle, and models the paper's special conditions -- gloves (Sec. VI-G)
and handheld objects (Sec. VI-H) -- as additional or perturbing scatterer
layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import RadarError
from repro.hand.joints import FINGER_CHAINS, PALM_JOINTS, PHALANGES, WRIST
from repro.hand.kinematics import HandPose, forward_kinematics
from repro.hand.shape import HandShape
from repro.radar.scene import Scatterers

#: Base amplitudes. The palm is the dominant reflector (large flat area);
#: joints and phalange segments are weaker; fingertips weakest.
_AMP_PALM_POINT = 0.55
_AMP_WRIST = 0.50
_AMP_FINGER_JOINT = 0.22
_AMP_FINGERTIP = 0.12
_AMP_PHALANGE_MID = 0.18


@dataclass(frozen=True)
class GloveSpec:
    """Glove material layer over the hand (paper Sec. VI-G).

    ``reflectivity`` scales the glove layer's own returns; ``diffusion_m``
    jitters them spatially (fabric scattering), which is what distorts the
    sensed hand and degrades finger regression in the paper;
    ``skin_attenuation`` is the fraction of the skin return surviving the
    two-way pass through the fabric.
    """

    name: str
    thickness_m: float
    reflectivity: float
    diffusion_m: float
    skin_attenuation: float = 1.0

    def __post_init__(self) -> None:
        if self.thickness_m < 0 or self.reflectivity < 0 or self.diffusion_m < 0:
            raise RadarError("glove parameters must be non-negative")
        if not 0.0 <= self.skin_attenuation <= 1.0:
            raise RadarError("skin_attenuation must lie in [0, 1]")


#: Glove diffusion is set at radar-cube resolution scale (the range bin
#: is 3.7 cm): fabric folds and trapped-air gaps displace the apparent
#: reflection centres enough to shift cells, which is what distorts the
#: sensed hand in the paper's glove experiment.
GLOVE_MATERIALS: Dict[str, GloveSpec] = {
    "silk": GloveSpec("silk", thickness_m=0.0008, reflectivity=0.70,
                      diffusion_m=0.025, skin_attenuation=0.60),
    "cotton": GloveSpec("cotton", thickness_m=0.0020, reflectivity=0.90,
                        diffusion_m=0.038, skin_attenuation=0.45),
}


@dataclass(frozen=True)
class HandheldObjectSpec:
    """An object held in the hand (paper Sec. VI-H).

    ``offsets_hand_frame`` are scatterer positions relative to the wrist
    in the hand frame; ``amplitude`` their strength. ``finger_shadowing``
    in [0, 1] attenuates finger scatterers the object covers.
    """

    name: str
    offsets_hand_frame: np.ndarray
    amplitude: float
    finger_shadowing: float = 0.0

    def __post_init__(self) -> None:
        offsets = np.atleast_2d(np.asarray(self.offsets_hand_frame, float))
        if offsets.shape[1] != 3:
            raise RadarError("object offsets must have shape (N, 3)")
        object.__setattr__(self, "offsets_hand_frame", offsets)
        if not 0.0 <= self.finger_shadowing <= 1.0:
            raise RadarError("finger_shadowing must lie in [0, 1]")
        if self.amplitude < 0:
            raise RadarError("object amplitude must be non-negative")


def _palm_centre_cluster(radius: float, count: int, z: float) -> np.ndarray:
    """Scatterer offsets clustered around the palm centre (hand frame)."""
    angles = 2.0 * np.pi * np.arange(count) / count
    pts = np.stack(
        [radius * np.cos(angles), 0.05 + radius * np.sin(angles),
         np.full(count, z)],
        axis=1,
    )
    return np.vstack([[0.0, 0.05, z], pts])


HANDHELD_OBJECTS: Dict[str, HandheldObjectSpec] = {
    # Small, palm-centred: only slight interference (paper Fig. 23a/b).
    "table_tennis_ball": HandheldObjectSpec(
        "table_tennis_ball",
        offsets_hand_frame=_palm_centre_cluster(0.018, 4, -0.030),
        amplitude=0.10,
        finger_shadowing=0.05,
    ),
    "headphone_case": HandheldObjectSpec(
        "headphone_case",
        offsets_hand_frame=_palm_centre_cluster(0.028, 6, -0.035),
        amplitude=0.22,
        finger_shadowing=0.10,
    ),
    # A pen extends past the fingers and reads as an extra finger
    # (paper Fig. 23c).
    "pen": HandheldObjectSpec(
        "pen",
        offsets_hand_frame=np.array(
            [[0.035, 0.02 + 0.03 * k, -0.015] for k in range(6)]
        ),
        amplitude=0.85,
        finger_shadowing=0.45,
    ),
    # A power bank covers a large part of the hand (paper Fig. 23d).
    "power_bank": HandheldObjectSpec(
        "power_bank",
        offsets_hand_frame=np.array(
            [
                [x, y, -0.035]
                for x in (-0.025, 0.0, 0.025)
                for y in (0.02, 0.055, 0.09, 0.125)
            ]
        ),
        amplitude=1.30,
        finger_shadowing=0.85,
    ),
}


def hand_scatterers(
    shape: HandShape,
    pose: HandPose,
    prev_pose: Optional[HandPose] = None,
    frame_period_s: float = 0.05,
    reflectivity: float = 1.0,
    glove: Optional[GloveSpec] = None,
    handheld: Optional[HandheldObjectSpec] = None,
    rng: Optional[np.random.Generator] = None,
    speckle_std: float = 0.10,
) -> Scatterers:
    """Convert the hand state at one frame into point scatterers.

    Velocities come from finite differences against ``prev_pose`` (zero if
    absent). ``rng`` drives per-frame speckle; pass a seeded generator for
    reproducible captures.
    """
    if frame_period_s <= 0:
        raise RadarError("frame_period_s must be positive")
    if rng is None:
        rng = np.random.default_rng(0)

    joints = forward_kinematics(shape, pose)
    if prev_pose is not None:
        prev_joints = forward_kinematics(shape, prev_pose)
        joint_vel = (joints - prev_joints) / frame_period_s
    else:
        joint_vel = np.zeros_like(joints)

    positions = [joints]
    velocities = [joint_vel]
    amplitudes = [np.empty(len(joints))]
    tips = {chain[3] for chain in FINGER_CHAINS.values()}
    for j in range(len(joints)):
        if j == WRIST:
            amplitudes[0][j] = _AMP_WRIST
        elif j in tips:
            amplitudes[0][j] = _AMP_FINGERTIP
        elif j in PALM_JOINTS:
            amplitudes[0][j] = _AMP_PALM_POINT * 0.6
        else:
            amplitudes[0][j] = _AMP_FINGER_JOINT

    # Phalange midpoints.
    mid_pos = np.array([(joints[p] + joints[c]) / 2.0 for p, c in PHALANGES])
    mid_vel = np.array(
        [(joint_vel[p] + joint_vel[c]) / 2.0 for p, c in PHALANGES]
    )
    positions.append(mid_pos)
    velocities.append(mid_vel)
    amplitudes.append(np.full(len(mid_pos), _AMP_PHALANGE_MID))

    # Palm surface points: a small grid between wrist and the four
    # non-thumb knuckles, on the palmar face.
    knuckles = np.array(
        [joints[FINGER_CHAINS[f][0]] for f in ("index", "middle", "ring",
                                               "pinky")]
    )
    palm_pts = []
    palm_vels = []
    palm_normal_local = np.array([0.0, 0.0, -1.0])
    palm_offset = pose.orientation @ (
        palm_normal_local * shape.palm_thickness_m / 2.0
    )
    for t in (0.35, 0.7):
        for k in range(len(knuckles)):
            p = (1 - t) * joints[WRIST] + t * knuckles[k] + palm_offset
            v = (1 - t) * joint_vel[WRIST] + t * joint_vel[
                1 + 4 * (k + 1)
            ]
            palm_pts.append(p)
            palm_vels.append(v)
    positions.append(np.array(palm_pts))
    velocities.append(np.array(palm_vels))

    # Orientation factor: the palm reflects specularly, so its return
    # strength follows the incidence cosine between the palm normal and
    # the radar direction.
    palm_normal_world = pose.orientation @ palm_normal_local
    to_radar = -joints[WRIST]
    norm = np.linalg.norm(to_radar)
    to_radar = to_radar / norm if norm > 1e-9 else np.array([-1.0, 0.0, 0.0])
    incidence = float(np.dot(palm_normal_world, to_radar))
    palm_gain = max(0.2, abs(incidence))
    amplitudes.append(np.full(len(palm_pts), _AMP_PALM_POINT * palm_gain))

    pos = np.concatenate(positions)
    vel = np.concatenate(velocities)
    amp = np.concatenate(amplitudes) * reflectivity

    glove_parts = []
    if glove is not None:
        # The glove layer re-radiates from jittered positions just outside
        # the skin, blurring the hand's spatial signature, while the
        # fabric attenuates the skin return underneath.
        outward = rng.normal(0.0, 1.0, size=pos.shape)
        outward /= np.maximum(
            np.linalg.norm(outward, axis=1, keepdims=True), 1e-9
        )
        jitter = rng.normal(0.0, glove.diffusion_m, size=pos.shape)
        glove_pos = pos + outward * glove.thickness_m + jitter
        glove_amp = amp * glove.reflectivity
        glove_parts.append(
            Scatterers(positions=glove_pos, velocities=vel,
                       amplitudes=glove_amp)
        )
        amp = amp * glove.skin_attenuation

    object_parts = []
    if handheld is not None:
        offsets = handheld.offsets_hand_frame
        obj_pos = pose.wrist_position + offsets @ pose.orientation.T
        obj_vel = np.tile(joint_vel[WRIST], (len(obj_pos), 1))
        obj_amp = np.full(len(obj_pos), handheld.amplitude)
        object_parts.append(
            Scatterers(positions=obj_pos, velocities=obj_vel,
                       amplitudes=obj_amp)
        )
        # The object shadows the hand scatterers it covers.
        coverage = _covered(pos, obj_pos)
        amp = amp * (1.0 - handheld.finger_shadowing * coverage)

    # Per-frame speckle: multiplicative log-normal fading.
    if speckle_std > 0:
        amp = amp * np.exp(rng.normal(0.0, speckle_std, size=amp.shape))

    base = Scatterers(positions=pos, velocities=vel, amplitudes=amp)
    return Scatterers.concatenate([base] + glove_parts + object_parts)


def _covered(hand_pos: np.ndarray, obj_pos: np.ndarray) -> np.ndarray:
    """Fraction in [0, 1] of how strongly each hand scatterer is covered
    by the object cloud (soft nearest-distance falloff)."""
    if len(obj_pos) == 0:
        return np.zeros(len(hand_pos))
    dists = np.linalg.norm(
        hand_pos[:, None, :] - obj_pos[None, :, :], axis=2
    ).min(axis=1)
    return np.clip(1.0 - dists / 0.05, 0.0, 1.0)
