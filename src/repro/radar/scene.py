"""Scene description for the radar simulator.

A :class:`Scene` is the full set of point scatterers the radar sees at one
frame instant: the hand (possibly gloved or holding an object), the user's
body, the environment, and an optional occluder between radar and hand.
Scatterers carry position, radial-motion-inducing velocity and complex
reflection amplitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import RadarError


@dataclass
class Scatterers:
    """A batch of point scatterers.

    Attributes
    ----------
    positions:
        (S, 3) world-frame positions (radar at origin, +x boresight).
    velocities:
        (S, 3) world-frame velocities in m/s.
    amplitudes:
        (S,) non-negative reflection amplitude coefficients, proportional
        to the square root of each scatterer's radar cross-section.
    """

    positions: np.ndarray
    velocities: np.ndarray
    amplitudes: np.ndarray

    def __post_init__(self) -> None:
        self.positions = np.atleast_2d(np.asarray(self.positions, float))
        self.velocities = np.atleast_2d(np.asarray(self.velocities, float))
        self.amplitudes = np.atleast_1d(np.asarray(self.amplitudes, float))
        n = len(self.positions)
        if self.positions.shape != (n, 3):
            raise RadarError("positions must have shape (S, 3)")
        if self.velocities.shape != (n, 3):
            raise RadarError("velocities must match positions in shape")
        if self.amplitudes.shape != (n,):
            raise RadarError("amplitudes must have shape (S,)")
        if np.any(self.amplitudes < 0):
            raise RadarError("amplitudes must be non-negative")

    def __len__(self) -> int:
        return len(self.positions)

    def scaled(self, factor: float) -> "Scatterers":
        """Same scatterers with amplitudes multiplied by ``factor``."""
        if factor < 0:
            raise RadarError("amplitude scale factor must be non-negative")
        return Scatterers(
            positions=self.positions,
            velocities=self.velocities,
            amplitudes=self.amplitudes * factor,
        )

    @staticmethod
    def concatenate(parts: List["Scatterers"]) -> "Scatterers":
        """Merge several scatterer batches (empty parts allowed)."""
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return Scatterers(
                positions=np.zeros((0, 3)),
                velocities=np.zeros((0, 3)),
                amplitudes=np.zeros(0),
            )
        return Scatterers(
            positions=np.concatenate([p.positions for p in parts]),
            velocities=np.concatenate([p.velocities for p in parts]),
            amplitudes=np.concatenate([p.amplitudes for p in parts]),
        )

    @staticmethod
    def empty() -> "Scatterers":
        return Scatterers(
            positions=np.zeros((0, 3)),
            velocities=np.zeros((0, 3)),
            amplitudes=np.zeros(0),
        )


@dataclass
class Scene:
    """Everything the radar senses during one frame.

    ``hand`` is attenuated by the occluder (if any) before synthesis;
    ``background`` (body + environment + occluder reflections) is not.
    """

    hand: Scatterers
    background: Scatterers = field(default_factory=Scatterers.empty)
    hand_attenuation: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hand_attenuation <= 1.0:
            raise RadarError("hand_attenuation must lie in [0, 1]")

    def all_scatterers(self) -> Scatterers:
        """Combined scatterer set with occlusion applied to the hand."""
        return Scatterers.concatenate(
            [self.hand.scaled(self.hand_attenuation), self.background]
        )
