"""The radar simulator front-end.

:class:`RadarSimulator` bundles the radar configuration and antenna array
and turns :class:`~repro.radar.scene.Scene` snapshots into raw IF frames,
the exact input the paper's pre-processing stage consumes from the
DCA1000EVM capture card.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import RadarConfig
from repro.errors import RadarError
from repro.radar.antenna import VirtualArray, iwr1443_array
from repro.radar.chirp import synthesize_frame
from repro.radar.scene import Scene


class RadarSimulator:
    """Synthesises raw IF data frames from scene snapshots.

    Parameters
    ----------
    config:
        FMCW front-end parameters; defaults to the IWR1443 setup.
    array:
        Virtual antenna geometry; defaults to the IWR1443 layout.
    seed:
        Seed of the internal noise stream.
    """

    def __init__(
        self,
        config: Optional[RadarConfig] = None,
        array: Optional[VirtualArray] = None,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else RadarConfig()
        self.array = array if array is not None else iwr1443_array(self.config)
        if self.array.num_virtual != self.config.num_virtual_antennas:
            raise RadarError("array size does not match radar config")
        self._rng = np.random.default_rng(seed)

    def frame(self, scene: Scene) -> np.ndarray:
        """Raw IF cube ``(virtual_antennas, chirp_loops, samples)`` for
        one frame."""
        return synthesize_frame(
            self.config, self.array, scene.all_scatterers(), self._rng
        )

    def sequence(self, scenes: Sequence[Scene]) -> np.ndarray:
        """Raw IF cubes for consecutive frames, shape ``(F, V, L, N)``."""
        if not scenes:
            raise RadarError("at least one scene is required")
        frames: List[np.ndarray] = [self.frame(scene) for scene in scenes]
        return np.stack(frames)
