"""The radar simulator front-end.

:class:`RadarSimulator` bundles the radar configuration and antenna array
and turns :class:`~repro.radar.scene.Scene` snapshots into raw IF frames,
the exact input the paper's pre-processing stage consumes from the
DCA1000EVM capture card.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

import numpy as np

from repro.config import RadarConfig
from repro.errors import RadarError
from repro.obs import trace
from repro.radar.antenna import VirtualArray, iwr1443_array
from repro.radar.chirp import synthesize_frame, synthesize_sequence
from repro.radar.scene import Scene


class RadarSimulator:
    """Synthesises raw IF data frames from scene snapshots.

    Parameters
    ----------
    config:
        FMCW front-end parameters; defaults to the IWR1443 setup.
    array:
        Virtual antenna geometry; defaults to the IWR1443 layout.
    seed:
        Seed of the internal noise stream.
    """

    def __init__(
        self,
        config: Optional[RadarConfig] = None,
        array: Optional[VirtualArray] = None,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else RadarConfig()
        self.array = array if array is not None else iwr1443_array(self.config)
        if self.array.num_virtual != self.config.num_virtual_antennas:
            raise RadarError("array size does not match radar config")
        self._rng = np.random.default_rng(seed)

    def frame(self, scene: Scene) -> np.ndarray:
        """Raw IF cube ``(virtual_antennas, chirp_loops, samples)`` for
        one frame."""
        with trace.span("radar.synthesize.frame"):
            return synthesize_frame(
                self.config, self.array, scene.all_scatterers(), self._rng
            )

    def sequence(self, scenes: Sequence[Scene]) -> np.ndarray:
        """Raw IF cubes for consecutive frames, shape ``(F, V, L, N)``.

        Batched: the TDM phase tensors of every frame feed one
        optimised einsum contraction and the noise stream is drawn in a
        single call that consumes the generator exactly like per-frame
        draws -- the noise is bit-identical to stacking :meth:`frame`
        calls and the deterministic part matches to ~1e-13 relative.
        """
        if not scenes:
            raise RadarError("at least one scene is required")
        with trace.span("radar.synthesize.sequence", frames=len(scenes)):
            return synthesize_sequence(
                self.config,
                self.array,
                [scene.all_scatterers() for scene in scenes],
                self._rng,
            )

    def sequence_reference(self, scenes: Sequence[Scene]) -> np.ndarray:
        """Frame-by-frame reference path of :meth:`sequence`.

        Kept for equivalence tests and as the benchmark baseline.
        """
        if not scenes:
            raise RadarError("at least one scene is required")
        frames: List[np.ndarray] = [self.frame(scene) for scene in scenes]
        return np.stack(frames)


def _simulate_one(
    config: RadarConfig,
    array: Optional[VirtualArray],
    scenes: Sequence[Scene],
    seed: int,
) -> np.ndarray:
    """Top-level worker (picklable for process pools)."""
    return RadarSimulator(config, array, seed=seed).sequence(scenes)


def simulate_sequences(
    config: Optional[RadarConfig],
    scene_lists: Sequence[Sequence[Scene]],
    seeds: Sequence[int],
    array: Optional[VirtualArray] = None,
    workers: Optional[int] = None,
) -> List[np.ndarray]:
    """Synthesise several independent sequences, optionally in parallel.

    Each entry of ``scene_lists`` is simulated by its own
    :class:`RadarSimulator` seeded from the matching entry of ``seeds``,
    so results do not depend on scheduling order or worker count.
    ``workers`` > 1 fans the sequences out over a
    ``ProcessPoolExecutor`` (useful for dataset generation on multicore
    machines); ``None`` picks ``min(len(scene_lists), cpu_count)`` and
    anything <= 1 -- including single-core hosts -- runs serially in
    this process.
    """
    if len(scene_lists) != len(seeds):
        raise RadarError("need exactly one seed per scene list")
    config = config if config is not None else RadarConfig()
    if workers is None:
        workers = min(len(scene_lists), os.cpu_count() or 1)
    if workers > 1 and len(scene_lists) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_simulate_one, config, array, scenes, seed)
                for scenes, seed in zip(scene_lists, seeds)
            ]
            return [future.result() for future in futures]
    return [
        _simulate_one(config, array, scenes, seed)
        for scenes, seed in zip(scene_lists, seeds)
    ]
