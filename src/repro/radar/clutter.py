"""Environmental clutter, user body, and occluder models.

These populate the scene with everything that is *not* the hand, so the
pre-processing stage has real interference to remove:

* environments (paper Sec. VI-I): playground (empty), corridor (sparse
  static + occasional passer-by), classroom (dense static + moving people);
* the user's body (paper Sec. VI-F): a torso scatterer cluster placed
  behind or beside the hand;
* occluders (paper Sec. VI-J): A4 paper, cloth, or a thin wooden board in
  the line of sight, attenuating the hand return and adding their own
  reflection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import RadarError
from repro.radar.scene import Scatterers


class BodyPosition(enum.Enum):
    """Where the user's body stands relative to the radar (Sec. VI-F)."""

    FRONT = "front"  # type 1: body behind the outstretched hand
    SIDE = "side"  # type 2: body beside the radar, hand reached in front
    ABSENT = "absent"


@dataclass(frozen=True)
class EnvironmentProfile:
    """Static and dynamic clutter statistics of one environment."""

    name: str
    num_static: int
    static_range_m: tuple
    static_amplitude: float
    num_movers: int
    mover_amplitude: float

    def __post_init__(self) -> None:
        if self.num_static < 0 or self.num_movers < 0:
            raise RadarError("clutter counts must be non-negative")


ENVIRONMENTS: Dict[str, EnvironmentProfile] = {
    # A large empty area: essentially no clutter.
    "playground": EnvironmentProfile(
        "playground", num_static=1, static_range_m=(3.0, 6.0),
        static_amplitude=0.05, num_movers=0, mover_amplitude=0.0,
    ),
    # Empty static background with a few people.
    "corridor": EnvironmentProfile(
        "corridor", num_static=4, static_range_m=(1.5, 4.0),
        static_amplitude=0.15, num_movers=1, mover_amplitude=0.10,
    ),
    # Complex static background and dynamic people moving around.
    "classroom": EnvironmentProfile(
        "classroom", num_static=10, static_range_m=(1.2, 3.5),
        static_amplitude=0.30, num_movers=2, mover_amplitude=0.18,
    ),
    # A bare lab bench, used by the comparison experiments (Sec. VI-C).
    "lab": EnvironmentProfile(
        "lab", num_static=3, static_range_m=(1.5, 3.0),
        static_amplitude=0.12, num_movers=0, mover_amplitude=0.0,
    ),
}


@dataclass(frozen=True)
class OccluderSpec:
    """An obstacle in the radar-hand line of sight (Sec. VI-J).

    ``transmission`` is the two-way amplitude transmission coefficient of
    the material at 77 GHz; ``reflection`` the strength of the obstacle's
    own return; ``range_m`` its distance from the radar.
    """

    name: str
    transmission: float
    reflection: float
    range_m: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.transmission <= 1.0:
            raise RadarError("transmission must lie in [0, 1]")
        if self.reflection < 0 or self.range_m <= 0:
            raise RadarError("invalid occluder reflection/range")


OCCLUDER_MATERIALS: Dict[str, OccluderSpec] = {
    # Paper and cloth are nearly transparent at 77 GHz; a wooden board
    # attenuates strongly and reflects specularly.
    "a4_paper": OccluderSpec("a4_paper", transmission=0.90, reflection=0.08),
    "cloth": OccluderSpec("cloth", transmission=0.85, reflection=0.12),
    "wood_board": OccluderSpec("wood_board", transmission=0.62,
                               reflection=0.30),
}


def environment_scatterers(
    environment: str, rng: np.random.Generator, time_s: float = 0.0
) -> Scatterers:
    """Static + dynamic clutter for a named environment profile.

    Static reflectors are fixed per-``rng`` stream; movers follow slow
    sinusoidal walks so consecutive frames see coherent motion.
    """
    if environment not in ENVIRONMENTS:
        raise RadarError(
            f"unknown environment {environment!r}; "
            f"available: {sorted(ENVIRONMENTS)}"
        )
    profile = ENVIRONMENTS[environment]
    parts = []
    if profile.num_static:
        ranges = rng.uniform(*profile.static_range_m, size=profile.num_static)
        azimuths = rng.uniform(-1.0, 1.0, size=profile.num_static)
        heights = rng.uniform(-0.5, 1.0, size=profile.num_static)
        pos = np.stack([ranges, ranges * azimuths * 0.4, heights], axis=1)
        amp = profile.static_amplitude * rng.uniform(
            0.4, 1.0, size=profile.num_static
        )
        parts.append(
            Scatterers(positions=pos, velocities=np.zeros_like(pos),
                       amplitudes=amp)
        )
    for mover in range(profile.num_movers):
        phase = rng.uniform(0.0, 2 * np.pi)
        base_range = rng.uniform(2.0, 4.0)
        speed = rng.uniform(0.5, 1.2)
        y = np.sin(2 * np.pi * 0.2 * time_s + phase) * 1.5
        vy = speed * np.cos(2 * np.pi * 0.2 * time_s + phase)
        pos = np.array([[base_range, y, 0.0]])
        vel = np.array([[0.0, vy, 0.0]])
        parts.append(
            Scatterers(positions=pos, velocities=vel,
                       amplitudes=np.array([profile.mover_amplitude]))
        )
    return Scatterers.concatenate(parts)


def body_scatterers(
    position: BodyPosition,
    rng: np.random.Generator,
    body_rcs: float = 1.0,
    hand_range_m: float = 0.30,
) -> Scatterers:
    """The user's torso/arm as a scatterer cluster (paper Sec. VI-F).

    FRONT places the body directly behind the hand along boresight (the
    arm is outstretched towards the radar); SIDE places it off-axis. In
    both cases the body is farther than the hand, which is why bandpass
    filtering can separate them (paper Sec. III).
    """
    if position is BodyPosition.ABSENT:
        return Scatterers.empty()
    arm_extent = rng.uniform(0.35, 0.50)
    body_range = hand_range_m + arm_extent
    if position is BodyPosition.FRONT:
        centre = np.array([body_range, 0.0, -0.1])
    else:
        centre = np.array([body_range, 0.45, -0.1])
    count = 8
    offsets = rng.normal(0.0, 1.0, size=(count, 3)) * np.array(
        [0.05, 0.15, 0.25]
    )
    pos = centre + offsets
    # Breathing micro-motion along boresight.
    vel = np.zeros_like(pos)
    vel[:, 0] = rng.normal(0.0, 0.01, size=count)
    amp = 0.8 * body_rcs * rng.uniform(0.5, 1.0, size=count)
    return Scatterers(positions=pos, velocities=vel, amplitudes=amp)


def occluder_scatterers(
    occluder: Optional[OccluderSpec], rng: np.random.Generator
) -> Scatterers:
    """The obstacle's own reflection (a small flat cluster near the radar)."""
    if occluder is None:
        return Scatterers.empty()
    count = 5
    pos = np.zeros((count, 3))
    pos[:, 0] = occluder.range_m
    pos[:, 1] = rng.uniform(-0.08, 0.08, size=count)
    pos[:, 2] = rng.uniform(-0.08, 0.08, size=count)
    amp = np.full(count, occluder.reflection)
    return Scatterers(positions=pos, velocities=np.zeros_like(pos),
                      amplitudes=amp)
