"""Multipath and ghost-target effects.

Indoor mmWave propagation is not purely line-of-sight: strong reflectors
(a desk surface under the hand, a wall beside the user) create two-bounce
paths radar -> surface -> hand -> radar that appear as *ghost* scatterers
at longer apparent range, mirrored across the reflecting plane. The paper
works indoors (classrooms, corridors), so the simulator can optionally
inject these artefacts to stress the pipeline's clutter robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import RadarError
from repro.radar.scene import Scatterers


@dataclass(frozen=True)
class ReflectingSurface:
    """An infinite planar reflector.

    Defined by a point on the plane and its unit normal;
    ``reflectivity`` is the amplitude fraction surviving the extra
    bounce (two-way).
    """

    point: np.ndarray
    normal: np.ndarray
    reflectivity: float = 0.25

    def __post_init__(self) -> None:
        point = np.asarray(self.point, dtype=float)
        normal = np.asarray(self.normal, dtype=float)
        if point.shape != (3,) or normal.shape != (3,):
            raise RadarError("surface point/normal must be 3-vectors")
        norm = np.linalg.norm(normal)
        if norm < 1e-9:
            raise RadarError("surface normal must be non-zero")
        object.__setattr__(self, "point", point)
        object.__setattr__(self, "normal", normal / norm)
        if not 0.0 <= self.reflectivity <= 1.0:
            raise RadarError("reflectivity must lie in [0, 1]")

    def mirror_points(self, points: np.ndarray) -> np.ndarray:
        """Mirror positions across the plane, shape-preserving."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        offsets = points - self.point
        distances = offsets @ self.normal
        return points - 2.0 * distances[:, None] * self.normal[None, :]

    def mirror_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Mirror free vectors (velocities) across the plane."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        components = vectors @ self.normal
        return vectors - 2.0 * components[:, None] * self.normal[None, :]


#: Typical indoor surfaces for the paper's environments: a desk below
#: the interaction volume and a wall to the user's side.
DESK_SURFACE = ReflectingSurface(
    point=np.array([0.0, 0.0, -0.25]),
    normal=np.array([0.0, 0.0, 1.0]),
    reflectivity=0.30,
)
SIDE_WALL = ReflectingSurface(
    point=np.array([0.0, 1.2, 0.0]),
    normal=np.array([0.0, -1.0, 0.0]),
    reflectivity=0.18,
)


def ghost_scatterers(
    scatterers: Scatterers,
    surfaces: List[ReflectingSurface],
    min_amplitude: float = 1e-3,
) -> Scatterers:
    """Two-bounce ghost images of ``scatterers`` for each surface.

    The mirror image approximates the radar->surface->target path: the
    ghost sits at the mirrored position (longer apparent range, shifted
    angle) with the surface's reflectivity applied. Ghosts weaker than
    ``min_amplitude`` are dropped.
    """
    if min_amplitude < 0:
        raise RadarError("min_amplitude must be non-negative")
    parts = []
    for surface in surfaces:
        amplitudes = scatterers.amplitudes * surface.reflectivity
        keep = amplitudes >= min_amplitude
        if not np.any(keep):
            continue
        parts.append(
            Scatterers(
                positions=surface.mirror_points(
                    scatterers.positions
                )[keep],
                velocities=surface.mirror_vectors(
                    scatterers.velocities
                )[keep],
                amplitudes=amplitudes[keep],
            )
        )
    return Scatterers.concatenate(parts)


def with_multipath(
    scene_scatterers: Scatterers,
    surfaces: List[ReflectingSurface],
) -> Scatterers:
    """Original scatterers plus their ghosts, ready for synthesis."""
    ghosts = ghost_scatterers(scene_scatterers, surfaces)
    return Scatterers.concatenate([scene_scatterers, ghosts])
