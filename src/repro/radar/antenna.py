"""TDM-MIMO virtual antenna array geometry.

The IWR1443 has 3 transmit and 4 receive antennas. Under TDM-MIMO the
transmitters fire in turn while all receivers listen, synthesising a
``num_tx * num_rx`` virtual array whose element positions are the sums of
TX and RX positions (paper Sec. III): TX1/TX3 extend the azimuth aperture
to 8 half-wavelength elements; TX2 sits half a wavelength higher, giving
the elevated row used for elevation estimation.

Positions are expressed in wavelengths in the radar's (y, z) aperture
plane -- y is azimuth (radar's left), z is elevation (up); boresight is +x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import RadarConfig
from repro.errors import RadarError


@dataclass(frozen=True)
class VirtualArray:
    """Virtual antenna element positions.

    Attributes
    ----------
    tx_positions / rx_positions:
        (num_tx, 2) and (num_rx, 2) arrays of (y, z) positions in
        wavelengths.
    positions:
        (num_tx * num_rx, 2) virtual element positions, ordered TX-major
        (tx0rx0, tx0rx1, ..., tx1rx0, ...), matching the order the radar
        simulator fills the data cube in.
    """

    tx_positions: np.ndarray
    rx_positions: np.ndarray

    def __post_init__(self) -> None:
        for name, arr in (
            ("tx_positions", self.tx_positions),
            ("rx_positions", self.rx_positions),
        ):
            arr = np.asarray(arr, dtype=float)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise RadarError(f"{name} must have shape (N, 2)")
            object.__setattr__(self, name, arr)

    @property
    def num_tx(self) -> int:
        return len(self.tx_positions)

    @property
    def num_rx(self) -> int:
        return len(self.rx_positions)

    @property
    def num_virtual(self) -> int:
        return self.num_tx * self.num_rx

    @property
    def positions(self) -> np.ndarray:
        return (
            self.tx_positions[:, None, :] + self.rx_positions[None, :, :]
        ).reshape(-1, 2)

    def tx_of_virtual(self) -> np.ndarray:
        """TX index of every virtual element (TDM slot assignment)."""
        return np.repeat(np.arange(self.num_tx), self.num_rx)

    def steering_phases(
        self, azimuth_rad: np.ndarray, elevation_rad: np.ndarray
    ) -> np.ndarray:
        """Per-element phases (radians) for plane waves from given angles.

        ``azimuth_rad`` and ``elevation_rad`` must broadcast together;
        the result has shape ``broadcast_shape + (num_virtual,)``. The
        phase of element at aperture position (y, z) wavelengths for a
        source at azimuth ``a`` / elevation ``e`` is
        ``2*pi*(y*sin(a)*cos(e) + z*sin(e))``.
        """
        az = np.asarray(azimuth_rad, dtype=float)
        el = np.asarray(elevation_rad, dtype=float)
        az, el = np.broadcast_arrays(az, el)
        pos = self.positions
        return 2.0 * np.pi * (
            pos[:, 0] * (np.sin(az) * np.cos(el))[..., None]
            + pos[:, 1] * np.sin(el)[..., None]
        )


def iwr1443_array(config: RadarConfig) -> VirtualArray:
    """The IWR1443 antenna layout for ``config``'s TX/RX counts.

    At the default 3 TX x 4 RX this reproduces the EVM geometry: RX at
    0..1.5 wavelengths along azimuth, TX1 at the origin, TX3 two
    wavelengths over (extending the azimuth aperture to 8 contiguous
    half-wavelength elements) and TX2 between them, half a wavelength up
    (the elevated row). Other counts fall back to uniform rows.
    """
    d = config.rx_spacing_wavelengths
    rx = np.stack(
        [np.arange(config.num_rx) * d, np.zeros(config.num_rx)], axis=1
    )
    if config.num_tx == 3 and config.num_rx == 4:
        tx = np.array(
            [
                [0.0, 0.0],  # TX1: starts the azimuth row
                [2.0 * d, 1.0 * d],  # TX2: elevated by half a wavelength
                [4.0 * d, 0.0],  # TX3: extends the azimuth row
            ]
        )
    else:
        tx = np.stack(
            [
                np.arange(config.num_tx) * config.num_rx * d,
                np.zeros(config.num_tx),
            ],
            axis=1,
        )
    return VirtualArray(tx_positions=tx, rx_positions=rx)
