"""FMCW chirp / IF-signal synthesis (paper Eq. 1).

The radar transmits chirps with linearly increasing frequency; mixing the
reflection with the transmitted chirp yields the intermediate-frequency
(IF) signal whose frequency encodes range, whose chirp-to-chirp phase
encodes velocity, and whose antenna-to-antenna phase encodes angle of
arrival. This module synthesises that IF signal for a set of point
scatterers, including the TDM-MIMO transmission schedule (3 TX firing in
turn) that creates the virtual array.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.config import SPEED_OF_LIGHT, RadarConfig
from repro.errors import RadarError
from repro.radar.antenna import VirtualArray
from repro.radar.scene import Scatterers


def _scatterer_tensors(
    config: RadarConfig,
    array: VirtualArray,
    scatterers: Scatterers,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-scatterer phase/amplitude tensors of one frame.

    Returns ``(spatial, slow, fast)`` with shapes ``(S, K, R)``,
    ``(S, K, L)`` and ``(S, N)``; the IF cube is their contraction
    ``einsum("skr,skl,sn->krln")``. Splitting this out lets
    :func:`synthesize_sequence` evaluate whole sequences in a single
    batched contraction.
    """
    pos = scatterers.positions
    ranges = np.linalg.norm(pos, axis=1)
    if np.any(ranges < 1e-6):
        raise RadarError("scatterer at the radar origin")
    unit = pos / ranges[:, None]
    radial_v = np.einsum("sk,sk->s", scatterers.velocities, unit)

    lam = config.wavelength_m
    loops = config.chirp_loops
    samples = config.samples_per_chirp
    # Fast-time beat tone + carrier round-trip phase.
    beat_hz = (
        2.0 * config.bandwidth_hz * ranges
        / (SPEED_OF_LIGHT * config.chirp_duration_s)
    )
    t_fast = np.arange(samples) / config.sample_rate_hz
    phase_fast = 2.0 * np.pi * beat_hz[:, None] * t_fast[None, :]
    fast = np.exp(1j * phase_fast)  # (S, N)

    # Slow-time Doppler ramp over the TDM schedule.
    k_idx = np.arange(config.num_tx)
    l_idx = np.arange(loops)
    tx_time = (
        l_idx[None, :] * config.num_tx + k_idx[:, None]
    ) * config.chirp_duration_s  # (K, L)
    phase_slow = (
        4.0 * np.pi / lam
    ) * radial_v[:, None, None] * tx_time[None, :, :]
    slow = np.exp(1j * phase_slow)  # (S, K, L)

    # Spatial phase across the virtual aperture (direction cosines).
    uy = unit[:, 1]
    uz = unit[:, 2]
    aperture = array.positions  # (V, 2) in wavelengths
    phase_sp = 2.0 * np.pi * (
        aperture[None, :, 0] * uy[:, None]
        + aperture[None, :, 1] * uz[:, None]
    )
    carrier = 4.0 * np.pi * config.start_frequency_hz * ranges / SPEED_OF_LIGHT
    amp = (
        config.tx_power
        * scatterers.amplitudes
        / np.maximum(ranges, 0.05) ** 2
    )
    # Receive-chain anti-aliasing filter: beat tones approaching the
    # ADC Nyquist frequency are rolled off by the analog IF low-pass,
    # so far clutter cannot alias into the hand's range band.
    nyquist = config.sample_rate_hz / 2.0
    aaf_cutoff = 0.85 * nyquist
    amp = amp / np.sqrt(1.0 + (beat_hz / aaf_cutoff) ** 16)
    spatial = (
        amp[:, None] * np.exp(1j * (phase_sp + carrier[:, None]))
    ).reshape(len(pos), config.num_tx, config.num_rx)  # (S, K, R)
    return spatial, slow, fast


def synthesize_frame(
    config: RadarConfig,
    array: VirtualArray,
    scatterers: Scatterers,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """IF data cube for one radar frame.

    Returns a complex array of shape
    ``(num_virtual, chirp_loops, samples_per_chirp)``, virtual channels
    ordered TX-major to match :meth:`VirtualArray.positions`.

    For a scatterer at range ``r`` with radial velocity ``v`` the IF
    signal contributes, per paper Eq. (1):

    * a beat tone at ``f_b = 2 B r / (c Tc)`` across fast-time samples,
    * a carrier round-trip phase ``4 pi f0 r / c``,
    * a Doppler phase ramp ``4 pi v t_tx / lambda`` across the TDM chirp
      schedule (chirp of TX k in loop l transmits at ``(l*K + k) Tc``),
    * a per-element spatial phase from the virtual aperture geometry,
    * amplitude decaying as ``1 / r^2`` (two-way spreading).

    Thermal noise is added as circular complex Gaussian samples with
    standard deviation ``config.noise_std``.
    """
    if array.num_tx != config.num_tx or array.num_rx != config.num_rx:
        raise RadarError("antenna array does not match the radar config")
    num_virt = array.num_virtual
    loops = config.chirp_loops
    samples = config.samples_per_chirp
    data = np.zeros((num_virt, loops, samples), dtype=np.complex128)

    if len(scatterers) > 0:
        spatial, slow, fast = _scatterer_tensors(config, array, scatterers)
        data += np.einsum(
            "skr,skl,sn->krln", spatial, slow, fast
        ).reshape(num_virt, loops, samples)

    if config.noise_std > 0:
        if rng is None:
            rng = np.random.default_rng(0)
        noise = rng.normal(
            0.0, config.noise_std / np.sqrt(2.0), size=(2,) + data.shape
        )
        data += noise[0] + 1j * noise[1]
    return data


def synthesize_sequence(
    config: RadarConfig,
    array: VirtualArray,
    scatterer_frames: Sequence[Scatterers],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """IF data cubes for consecutive frames, shape ``(F, V, L, N)``.

    Equivalent to stacking :func:`synthesize_frame` over
    ``scatterer_frames`` with the same ``rng``: the noise stream is
    drawn in one batched call that consumes the generator identically to
    the per-frame loop, so the noise is bit-identical; the deterministic
    part uses an optimised contraction order and matches the per-frame
    path to ~1e-13 relative. When every frame has the same scatterer
    count (the common case for a tracked hand), it collapses into a
    single einsum contraction over all frames.
    """
    if array.num_tx != config.num_tx or array.num_rx != config.num_rx:
        raise RadarError("antenna array does not match the radar config")
    if len(scatterer_frames) == 0:
        raise RadarError("at least one frame of scatterers is required")
    num_frames = len(scatterer_frames)
    num_virt = array.num_virtual
    loops = config.chirp_loops
    samples = config.samples_per_chirp
    frame_shape = (num_virt, loops, samples)
    data = np.zeros((num_frames,) + frame_shape, dtype=np.complex128)

    counts = {len(s) for s in scatterer_frames}
    if counts == {0}:
        pass
    elif len(counts) == 1:
        # Equal scatterer counts: one batched contraction for the whole
        # sequence instead of F separate einsum calls.
        tensors = [
            _scatterer_tensors(config, array, s) for s in scatterer_frames
        ]
        spatial = np.stack([t[0] for t in tensors])  # (F, S, K, R)
        slow = np.stack([t[1] for t in tensors])  # (F, S, K, L)
        fast = np.stack([t[2] for t in tensors])  # (F, S, N)
        data += np.einsum(
            "fskr,fskl,fsn->fkrln", spatial, slow, fast, optimize=True
        ).reshape((num_frames,) + frame_shape)
    else:
        for f, scatterers in enumerate(scatterer_frames):
            if len(scatterers) == 0:
                continue
            spatial, slow, fast = _scatterer_tensors(
                config, array, scatterers
            )
            data[f] += np.einsum(
                "skr,skl,sn->krln", spatial, slow, fast, optimize=True
            ).reshape(frame_shape)

    if config.noise_std > 0:
        if rng is None:
            rng = np.random.default_rng(0)
        # One draw of shape (F, 2, V, L, N) consumes the generator in
        # exactly the same order as F sequential (2, V, L, N) draws, so
        # batched and per-frame synthesis share identical noise.
        noise = rng.normal(
            0.0,
            config.noise_std / np.sqrt(2.0),
            size=(num_frames, 2) + frame_shape,
        )
        data += noise[:, 0] + 1j * noise[:, 1]
    return data
