"""repro: a full reproduction of *mmHand: 3D Hand Pose Estimation
Leveraging mmWave Signals* (ICDCS 2024).

The library spans the whole system: an FMCW mmWave radar simulator
(replacing the TI IWR1443 hardware), the signal pre-processing chain, a
from-scratch numpy deep-learning framework, the mmSpaceNet + LSTM joint
regressor with the combined 3-D/kinematic loss, a MANO-style parametric
hand mesh model, dataset generation mirroring the paper's 10-volunteer
campaign, and the evaluation harness regenerating every table and figure.

Quickstart
----------
>>> from repro import MmHand, CampaignGenerator, Trainer
>>> gen = CampaignGenerator()
>>> dataset = gen.generate(segments_per_user=20)  # doctest: +SKIP
>>> system = MmHand()
>>> Trainer(system.regressor).fit(dataset)        # doctest: +SKIP

See ``examples/quickstart.py`` for the complete walk-through.
"""

from repro.config import (
    CampaignConfig,
    DspConfig,
    ModelConfig,
    RadarConfig,
    SystemConfig,
    TrainConfig,
)
from repro.errors import ReproError
from repro.hand import (
    HandPose,
    HandShape,
    Subject,
    forward_kinematics,
    gesture_pose,
    list_gestures,
    make_subjects,
)
from repro.mano import ManoHandModel, pose_to_theta
from repro.radar import RadarSimulator, Scene
from repro.dsp import CubeBuilder, RadarCube
from repro.core import (
    HandJointRegressor,
    MeshReconstructor,
    MmHand,
    Trainer,
    kfold_by_user,
)
from repro.data import CampaignGenerator, CaptureOptions, HandPoseDataset
from repro.eval import metrics
from repro.core.streaming import StreamingEstimator
from repro.serving import InferenceServer, ServingConfig
from repro.apps import GestureClassifier, GestureCommandMapper

__version__ = "1.0.0"

__all__ = [
    "CampaignConfig",
    "DspConfig",
    "ModelConfig",
    "RadarConfig",
    "SystemConfig",
    "TrainConfig",
    "ReproError",
    "HandPose",
    "HandShape",
    "Subject",
    "forward_kinematics",
    "gesture_pose",
    "list_gestures",
    "make_subjects",
    "ManoHandModel",
    "pose_to_theta",
    "RadarSimulator",
    "Scene",
    "CubeBuilder",
    "RadarCube",
    "HandJointRegressor",
    "MeshReconstructor",
    "MmHand",
    "Trainer",
    "kfold_by_user",
    "CampaignGenerator",
    "CaptureOptions",
    "HandPoseDataset",
    "metrics",
    "StreamingEstimator",
    "InferenceServer",
    "ServingConfig",
    "GestureClassifier",
    "GestureCommandMapper",
    "__version__",
]
