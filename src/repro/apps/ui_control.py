"""Gesture-driven user-interface control.

The paper's headline application: continuous skeletons stream in, a
gesture classifier labels them, and a debounced state machine turns
stable gestures into discrete UI commands (select, back, grab, ...),
suppressing the flicker a per-frame classifier would produce during
gesture transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.apps.gesture_classifier import GestureClassifier
from repro.errors import ReproError

#: Default mapping from gestures to UI commands.
DEFAULT_COMMANDS: Dict[str, str] = {
    "point": "cursor",
    "pinch": "select",
    "ok_sign": "confirm",
    "fist": "drag",
    "open_palm": "release",
    "thumbs_up": "approve",
    "victory": "screenshot",
    "grab": "rotate",
}


@dataclass(frozen=True)
class UiEvent:
    """One emitted interface command."""

    frame_index: int
    gesture: str
    command: str
    confidence: float


class GestureCommandMapper:
    """Debounced gesture-to-command state machine.

    A command is emitted only after the same gesture has been observed
    for ``hold_frames`` consecutive frames with confidence at least
    ``min_confidence``, and is not re-emitted until the gesture changes
    -- the standard rising-edge behaviour of gesture UIs.
    """

    def __init__(
        self,
        classifier: Optional[GestureClassifier] = None,
        commands: Optional[Dict[str, str]] = None,
        hold_frames: int = 2,
        min_confidence: float = 0.1,
    ) -> None:
        if hold_frames < 1:
            raise ReproError("hold_frames must be >= 1")
        if not 0.0 <= min_confidence <= 1.0:
            raise ReproError("min_confidence must lie in [0, 1]")
        self.commands = dict(
            commands if commands is not None else DEFAULT_COMMANDS
        )
        # By default classify only over the command vocabulary: some
        # library gestures are aliases (e.g. fist == count_zero) and a
        # wider classifier would tie between them.
        self.classifier = (
            classifier
            if classifier is not None
            else GestureClassifier(gestures=list(self.commands))
        )
        self.hold_frames = hold_frames
        self.min_confidence = min_confidence
        self._current: Optional[str] = None
        self._streak = 0
        self._emitted: Optional[str] = None
        self._frame = 0

    def reset(self) -> None:
        self._current = None
        self._streak = 0
        self._emitted = None
        self._frame = 0

    def process(self, joints: np.ndarray) -> Optional[UiEvent]:
        """Feed one skeleton; returns a UiEvent on a stable new gesture."""
        gesture, confidence = self.classifier.classify(joints)
        frame = self._frame
        self._frame += 1

        if confidence < self.min_confidence:
            self._current = None
            self._streak = 0
            return None
        if gesture == self._current:
            self._streak += 1
        else:
            self._current = gesture
            self._streak = 1
        if self._streak < self.hold_frames:
            return None
        if gesture == self._emitted:
            return None
        self._emitted = gesture
        command = self.commands.get(gesture)
        if command is None:
            return None
        return UiEvent(
            frame_index=frame, gesture=gesture, command=command,
            confidence=confidence,
        )

    def process_sequence(self, skeletons: np.ndarray) -> List[UiEvent]:
        """Run the state machine over a (N, 21, 3) skeleton stream."""
        skeletons = np.asarray(skeletons, dtype=float)
        if skeletons.ndim == 2:
            skeletons = skeletons[None]
        events = []
        for joints in skeletons:
            event = self.process(joints)
            if event is not None:
                events.append(event)
        return events
