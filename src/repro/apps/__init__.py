"""Interactive applications on top of mmHand skeletons.

The paper motivates hand pose estimation with user-interface control,
sign-language understanding and VR modelling; this package provides the
application layer: a skeleton-based gesture classifier and a debounced
interaction state machine mapping recognised gestures to UI commands.
"""

from repro.apps.gesture_classifier import (
    GestureClassifier,
    skeleton_descriptor,
)
from repro.apps.ui_control import GestureCommandMapper, UiEvent

__all__ = [
    "GestureClassifier",
    "skeleton_descriptor",
    "GestureCommandMapper",
    "UiEvent",
]
