"""Skeleton-based gesture classification.

Maps a regressed 21-joint skeleton to the nearest gesture in the
library using a placement-invariant descriptor: per-finger curl and
splay features computed from the joint geometry. This is the
application-level consumer of mmHand's output that enables the paper's
motivating scenarios (UI control, counting recognition).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.hand.gestures import GESTURE_LIBRARY, gesture_pose
from repro.hand.joints import FINGER_CHAINS, FINGERS, NUM_JOINTS
from repro.hand.kinematics import forward_kinematics
from repro.hand.shape import HandShape


def skeleton_descriptor(joints: np.ndarray) -> np.ndarray:
    """Placement- and scale-invariant gesture descriptor, shape (15,).

    Three features per finger:

    * *curl* -- root-to-tip distance over total chain length (1 when
      straight, small when curled);
    * *bend* -- cosine between the proximal and distal phalange
      directions;
    * *splay* -- angle of the finger's root-to-tip direction against the
      middle finger's, capturing abduction.

    All features are invariant to the hand's world position, rotation
    and (by length normalisation) size.
    """
    joints = np.asarray(joints, dtype=float)
    if joints.shape != (NUM_JOINTS, 3):
        raise ReproError(f"expected (21, 3) joints, got {joints.shape}")

    middle_chain = FINGER_CHAINS["middle"]
    middle_dir = joints[middle_chain[3]] - joints[middle_chain[0]]
    middle_norm = np.linalg.norm(middle_dir)
    middle_dir = (
        middle_dir / middle_norm if middle_norm > 1e-9
        else np.array([0.0, 1.0, 0.0])
    )

    features: List[float] = []
    for finger in FINGERS:
        chain = FINGER_CHAINS[finger]
        root, tip = joints[chain[0]], joints[chain[3]]
        segment_lengths = [
            np.linalg.norm(joints[chain[i + 1]] - joints[chain[i]])
            for i in range(3)
        ]
        total = max(sum(segment_lengths), 1e-9)
        curl = float(np.linalg.norm(tip - root) / total)

        proximal = joints[chain[1]] - joints[chain[0]]
        distal = joints[chain[3]] - joints[chain[2]]
        denom = max(
            np.linalg.norm(proximal) * np.linalg.norm(distal), 1e-9
        )
        bend = float(proximal @ distal / denom)

        direction = tip - root
        norm = np.linalg.norm(direction)
        direction = (
            direction / norm if norm > 1e-9 else middle_dir
        )
        splay = float(np.clip(direction @ middle_dir, -1.0, 1.0))
        features.extend([curl, bend, splay])
    return np.array(features)


class GestureClassifier:
    """Nearest-template gesture classifier over skeleton descriptors.

    Templates come from the gesture library rendered through forward
    kinematics (optionally at several hand scales so size variation is
    covered). Classification returns the best label and a confidence
    derived from the margin to the runner-up.
    """

    def __init__(
        self,
        gestures: Optional[Sequence[str]] = None,
        hand_scales: Sequence[float] = (0.92, 1.0, 1.08),
    ) -> None:
        names = list(gestures) if gestures is not None else list(
            GESTURE_LIBRARY
        )
        unknown = [n for n in names if n not in GESTURE_LIBRARY]
        if unknown:
            raise ReproError(f"unknown gestures: {unknown}")
        if not hand_scales:
            raise ReproError("at least one hand scale is required")
        self.gestures = names
        self._templates: List[Tuple[str, np.ndarray]] = []
        for scale in hand_scales:
            shape = HandShape.from_scale(scale)
            for name in names:
                pose = gesture_pose(name, wrist_position=np.zeros(3))
                joints = forward_kinematics(shape, pose)
                self._templates.append(
                    (name, skeleton_descriptor(joints))
                )

    def classify(self, joints: np.ndarray) -> Tuple[str, float]:
        """Best gesture label and confidence in [0, 1] for a skeleton."""
        descriptor = skeleton_descriptor(joints)
        best: Dict[str, float] = {}
        for name, template in self._templates:
            distance = float(np.linalg.norm(descriptor - template))
            if name not in best or distance < best[name]:
                best[name] = distance
        ranked = sorted(best.items(), key=lambda kv: kv[1])
        winner, d1 = ranked[0]
        if len(ranked) == 1:
            return winner, 1.0
        d2 = ranked[1][1]
        confidence = float(np.clip((d2 - d1) / max(d2, 1e-9), 0.0, 1.0))
        return winner, confidence

    def classify_sequence(
        self, skeletons: np.ndarray
    ) -> List[Tuple[str, float]]:
        """Classify every skeleton of a (N, 21, 3) sequence."""
        skeletons = np.asarray(skeletons, dtype=float)
        if skeletons.ndim == 2:
            skeletons = skeletons[None]
        return [self.classify(s) for s in skeletons]
