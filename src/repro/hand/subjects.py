"""Synthetic participant profiles.

The paper recruits 10 volunteers: 5 male and 5 female, aged 20-50, heights
1.65-1.85 m, body types from lean to slightly overweight. This module
deterministically generates an equivalent panel of synthetic subjects whose
hand geometry and reflectivity vary accordingly, so per-user experiments
(paper Fig. 12/13/20/21) exercise genuine inter-subject variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.hand.shape import HandShape


@dataclass(frozen=True)
class Subject:
    """One synthetic volunteer.

    Attributes
    ----------
    user_id:
        1-based identifier, matching the paper's "User ID" axes.
    gender:
        "male" or "female"; drives the hand-scale prior.
    height_m:
        Stature in metres, in the paper's 1.65-1.85 m band.
    hand_scale:
        Uniform hand-size multiplier around the average adult hand.
    body_rcs:
        Radar cross-section multiplier of the torso (body type proxy),
        used by the clutter model.
    skin_reflectivity:
        Per-person multiplicative factor on hand scatterer amplitudes.
    """

    user_id: int
    gender: str
    height_m: float
    hand_scale: float
    body_rcs: float
    skin_reflectivity: float

    def hand_shape(self) -> HandShape:
        """The subject's rigid hand geometry."""
        return HandShape.from_scale(self.hand_scale)


def make_subjects(num_users: int = 10, seed: int = 7) -> List[Subject]:
    """Generate the paper-equivalent panel of synthetic volunteers.

    Deterministic in ``seed``. Genders alternate to give the paper's 5/5
    split at the default count; heights are drawn from the paper's range
    and hand scale follows height with individual variation.
    """
    if num_users < 1:
        raise ConfigError("num_users must be >= 1")
    rng = np.random.default_rng(seed)
    subjects = []
    for user_id in range(1, num_users + 1):
        gender = "male" if user_id % 2 == 1 else "female"
        height = float(rng.uniform(1.65, 1.85))
        # Hand length correlates with stature; centre the scale per gender.
        base = 1.03 if gender == "male" else 0.97
        height_effect = (height - 1.75) * 0.45
        individual = float(rng.normal(0.0, 0.02))
        hand_scale = float(np.clip(base + height_effect + individual, 0.88, 1.12))
        body_rcs = float(rng.uniform(0.8, 1.4))
        skin_reflectivity = float(rng.uniform(0.85, 1.15))
        subjects.append(
            Subject(
                user_id=user_id,
                gender=gender,
                height_m=height,
                hand_scale=hand_scale,
                body_rcs=body_rcs,
                skin_reflectivity=skin_reflectivity,
            )
        )
    return subjects
