"""Wrist trajectory patterns for interaction motions.

The gesture library animates *finger* articulation; real interactions
also move the whole hand: swipes, pushes, circles. These trajectory
generators modulate a gesture sequence's base wrist position over time,
giving the radar realistic gross hand motion (strong Doppler content)
on top of the articulation.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.errors import KinematicsError

#: A trajectory maps time (s) to a wrist displacement (3-vector, metres)
#: added to the base position.
Trajectory = Callable[[float], np.ndarray]


def hold() -> Trajectory:
    """No gross motion (articulation only)."""

    def fn(t: float) -> np.ndarray:
        return np.zeros(3)

    return fn


def swipe(
    direction: str = "right", extent_m: float = 0.12, duration_s: float = 0.8
) -> Trajectory:
    """One smooth lateral swipe completing in ``duration_s``.

    Directions are from the radar's viewpoint: ``right``/``left`` move
    along -y/+y, ``up``/``down`` along +z/-z.
    """
    vectors = {
        "right": np.array([0.0, -1.0, 0.0]),
        "left": np.array([0.0, 1.0, 0.0]),
        "up": np.array([0.0, 0.0, 1.0]),
        "down": np.array([0.0, 0.0, -1.0]),
    }
    if direction not in vectors:
        raise KinematicsError(
            f"unknown swipe direction {direction!r}; "
            f"available: {sorted(vectors)}"
        )
    if extent_m <= 0 or duration_s <= 0:
        raise KinematicsError("extent and duration must be positive")
    axis = vectors[direction]

    def fn(t: float) -> np.ndarray:
        progress = np.clip(t / duration_s, 0.0, 1.0)
        eased = progress * progress * (3.0 - 2.0 * progress)
        return axis * extent_m * eased

    return fn


def push_pull(
    extent_m: float = 0.08, period_s: float = 1.2
) -> Trajectory:
    """Cyclic push towards / pull away from the radar (boresight x).

    Produces the strongest radial Doppler of the common interaction
    motions.
    """
    if extent_m <= 0 or period_s <= 0:
        raise KinematicsError("extent and period must be positive")

    def fn(t: float) -> np.ndarray:
        return np.array(
            [-extent_m * 0.5 * (1 - np.cos(2 * np.pi * t / period_s)),
             0.0, 0.0]
        )

    return fn


def circle(
    radius_m: float = 0.06, period_s: float = 1.5, clockwise: bool = True
) -> Trajectory:
    """Circular stirring motion in the y-z plane facing the radar."""
    if radius_m <= 0 or period_s <= 0:
        raise KinematicsError("radius and period must be positive")
    sign = -1.0 if clockwise else 1.0

    def fn(t: float) -> np.ndarray:
        phase = 2 * np.pi * t / period_s
        return np.array(
            [0.0, radius_m * np.cos(phase) - radius_m,
             sign * radius_m * np.sin(phase)]
        )

    return fn


#: Registry of named trajectory factories with default parameters.
TRAJECTORY_LIBRARY: Dict[str, Callable[[], Trajectory]] = {
    "hold": hold,
    "swipe_right": lambda: swipe("right"),
    "swipe_left": lambda: swipe("left"),
    "swipe_up": lambda: swipe("up"),
    "swipe_down": lambda: swipe("down"),
    "push_pull": push_pull,
    "circle": circle,
}


def list_trajectories() -> List[str]:
    return list(TRAJECTORY_LIBRARY)


def apply_trajectory(
    poses: List, trajectory: Trajectory, frame_period_s: float
):
    """Offset a sampled pose sequence's wrist positions along a trajectory.

    Returns new :class:`~repro.hand.kinematics.HandPose` objects; the
    inputs are unchanged.
    """
    if frame_period_s <= 0:
        raise KinematicsError("frame_period_s must be positive")
    out = []
    for i, pose in enumerate(poses):
        offset = np.asarray(trajectory(i * frame_period_s), dtype=float)
        if offset.shape != (3,):
            raise KinematicsError("trajectory must return 3-vectors")
        out.append(
            pose.with_placement(
                pose.wrist_position + offset, pose.orientation
            )
        )
    return out
