"""The 21-hand-joint model used throughout mmHand (paper Fig. 4).

The skeleton comprises one wrist joint, 16 finger joints (4 per finger:
metacarpophalangeal MCP, proximal interphalangeal PIP, distal
interphalangeal DIP -- the thumb uses CMC/MCP/IP) and 4 fingertip joints
(the thumb's tip is its 4th chain joint). Joint ordering follows the
MediaPipe Hands convention, which is what the paper uses for ground truth:

====  =================
index  joint
====  =================
0      wrist
1-4    thumb  (CMC, MCP, IP, TIP)
5-8    index  (MCP, PIP, DIP, TIP)
9-12   middle (MCP, PIP, DIP, TIP)
13-16  ring   (MCP, PIP, DIP, TIP)
17-20  pinky  (MCP, PIP, DIP, TIP)
====  =================
"""

from __future__ import annotations

from typing import Dict, List, Tuple

NUM_JOINTS = 21
WRIST = 0

FINGERS: Tuple[str, ...] = ("thumb", "index", "middle", "ring", "pinky")

JOINT_NAMES: Tuple[str, ...] = ("wrist",) + tuple(
    f"{finger}_{part}"
    for finger in FINGERS
    for part in ("mcp", "pip", "dip", "tip")
)

#: Parent joint index of every joint; the wrist is its own root (-1).
JOINT_PARENTS: Tuple[int, ...] = (-1,) + tuple(
    WRIST if part == 0 else 1 + 4 * finger + (part - 1)
    for finger in range(len(FINGERS))
    for part in range(4)
)

#: Per-finger joint chains (MCP, PIP, DIP, TIP), keyed by finger name.
FINGER_CHAINS: Dict[str, Tuple[int, int, int, int]] = {
    finger: tuple(range(1 + 4 * i, 1 + 4 * i + 4))  # type: ignore[misc]
    for i, finger in enumerate(FINGERS)
}

#: Palm joints: wrist + the five finger roots. The paper's palm/fingers
#: split in Fig. 14/16/17 groups joints this way: palm joints are the
#: stable ones lacking flexible deformation.
PALM_JOINTS: Tuple[int, ...] = (WRIST,) + tuple(
    chain[0] for chain in FINGER_CHAINS.values()
)

#: All joints that are not palm joints (PIP/DIP/TIP of each finger).
FINGER_JOINTS: Tuple[int, ...] = tuple(
    j for j in range(NUM_JOINTS) if j not in PALM_JOINTS
)

#: The 20 phalange segments (parent, child) used for bone-direction
#: features and the kinematic loss. Ordered finger by finger, root first.
PHALANGES: Tuple[Tuple[int, int], ...] = tuple(
    (JOINT_PARENTS[j], j) for j in range(1, NUM_JOINTS)
)


def joint_index(name: str) -> int:
    """Return the index of a joint by its canonical name.

    Raises ``KeyError`` for unknown names.
    """
    try:
        return JOINT_NAMES.index(name)
    except ValueError:
        raise KeyError(f"unknown joint name: {name!r}") from None


def finger_joint_indices(finger: str) -> List[int]:
    """Return the four chain joint indices of ``finger`` (MCP..TIP)."""
    if finger not in FINGER_CHAINS:
        raise KeyError(f"unknown finger: {finger!r}")
    return list(FINGER_CHAINS[finger])
