"""Forward kinematics of the 21-joint hand.

A :class:`HandPose` stores per-finger joint angles plus the global wrist
placement; :func:`forward_kinematics` turns (shape, pose) into the 21x3
joint positions the rest of the system consumes.

Coordinate conventions
----------------------
World frame (shared with the radar simulator): the radar sits at the
origin, +x is boresight (towards the user), +y is to the radar's left
(azimuth) and +z is up (elevation).

Hand frame: origin at the wrist, +y towards the fingers, +x towards the
thumb side, +z out of the back of the hand (the palm faces -z). The default
orientation faces the palm towards the radar with fingers pointing up,
matching the paper's interaction posture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.errors import KinematicsError
from repro.hand.joints import FINGERS, NUM_JOINTS, WRIST
from repro.hand.shape import HandShape

#: Column order of the per-finger angle array.
ANGLE_FIELDS = ("mcp_flexion", "mcp_abduction", "pip_flexion", "dip_flexion")

#: Loose anatomical limits (radians) used for validation.
_FLEXION_LIMITS = (-0.6, 2.2)
_ABDUCTION_LIMITS = (-0.8, 0.8)

#: Direction (hand frame) each finger bends towards at full flexion.
#: Fingers curl into the palm (-z); the thumb sweeps across the palm.
_BEND_NORMALS: Dict[str, np.ndarray] = {
    finger: np.array([0.0, 0.0, -1.0]) for finger in FINGERS
}
_BEND_NORMALS["thumb"] = np.array([-0.55, 0.0, -0.835])
_BEND_NORMALS["thumb"] /= np.linalg.norm(_BEND_NORMALS["thumb"])


def rotation_about_axis(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix about a unit ``axis`` by ``angle`` rad."""
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm < 1e-12:
        raise KinematicsError("rotation axis must be non-zero")
    x, y, z = axis / norm
    c, s = np.cos(angle), np.sin(angle)
    cross = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    outer = np.outer(axis / norm, axis / norm)
    return c * np.eye(3) + s * cross + (1.0 - c) * outer


def default_orientation() -> np.ndarray:
    """Hand-to-world rotation with the palm facing the radar, fingers up.

    Maps hand +y (fingers) -> world +z (up), hand +z (back of hand) ->
    world +x (away from the radar), hand +x (thumb side) -> world +y.
    """
    return np.array(
        [
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
        ]
    )


def orientation_from_yaw_pitch(yaw_rad: float, pitch_rad: float) -> np.ndarray:
    """Rotate the default orientation by yaw (about world z) and pitch
    (about world y). Used by the angle-sweep experiments (paper Fig. 18/19).
    """
    yaw = rotation_about_axis(np.array([0.0, 0.0, 1.0]), yaw_rad)
    pitch = rotation_about_axis(np.array([0.0, 1.0, 0.0]), pitch_rad)
    return yaw @ pitch @ default_orientation()


@dataclass
class HandPose:
    """Joint angles plus global placement of one hand at one instant.

    Attributes
    ----------
    finger_angles:
        Array of shape (5, 4): per finger (thumb..pinky) the MCP flexion,
        MCP abduction, PIP flexion and DIP flexion in radians.
    wrist_position:
        3-vector wrist location in the world frame (metres).
    orientation:
        3x3 rotation from the hand frame to the world frame.
    """

    finger_angles: np.ndarray = field(
        default_factory=lambda: np.zeros((len(FINGERS), len(ANGLE_FIELDS)))
    )
    wrist_position: np.ndarray = field(
        default_factory=lambda: np.array([0.30, 0.0, 0.0])
    )
    orientation: np.ndarray = field(default_factory=default_orientation)

    def __post_init__(self) -> None:
        self.finger_angles = np.asarray(self.finger_angles, dtype=float)
        self.wrist_position = np.asarray(self.wrist_position, dtype=float)
        self.orientation = np.asarray(self.orientation, dtype=float)
        if self.finger_angles.shape != (len(FINGERS), len(ANGLE_FIELDS)):
            raise KinematicsError(
                "finger_angles must have shape (5, 4), got "
                f"{self.finger_angles.shape}"
            )
        if self.wrist_position.shape != (3,):
            raise KinematicsError("wrist_position must be a 3-vector")
        if self.orientation.shape != (3, 3):
            raise KinematicsError("orientation must be a 3x3 matrix")
        if not np.allclose(
            self.orientation @ self.orientation.T, np.eye(3), atol=1e-6
        ):
            raise KinematicsError("orientation must be a rotation matrix")
        self._validate_angles()

    def _validate_angles(self) -> None:
        flexions = self.finger_angles[:, [0, 2, 3]]
        lo, hi = _FLEXION_LIMITS
        if np.any(flexions < lo) or np.any(flexions > hi):
            raise KinematicsError(
                f"flexion angles must lie in [{lo}, {hi}] rad"
            )
        abductions = self.finger_angles[:, 1]
        lo, hi = _ABDUCTION_LIMITS
        if np.any(abductions < lo) or np.any(abductions > hi):
            raise KinematicsError(
                f"abduction angles must lie in [{lo}, {hi}] rad"
            )

    def copy(self) -> "HandPose":
        return HandPose(
            finger_angles=self.finger_angles.copy(),
            wrist_position=self.wrist_position.copy(),
            orientation=self.orientation.copy(),
        )

    def with_placement(
        self, wrist_position: np.ndarray, orientation: np.ndarray
    ) -> "HandPose":
        """Return a copy re-placed in the world, keeping joint angles."""
        return HandPose(
            finger_angles=self.finger_angles.copy(),
            wrist_position=np.asarray(wrist_position, dtype=float),
            orientation=np.asarray(orientation, dtype=float),
        )


def _finger_local_joints(
    shape: HandShape, finger: str, angles: np.ndarray
) -> np.ndarray:
    """Chain positions (4, 3) of one finger in the hand frame."""
    mcp_flex, mcp_abd, pip_flex, dip_flex = angles
    root = np.asarray(shape.root_offsets[finger], dtype=float)
    splay = shape.splay_rad[finger]

    # Resting pointing direction: +y rotated by splay about the palm normal.
    direction = rotation_about_axis(np.array([0.0, 0.0, 1.0]), splay) @ np.array(
        [0.0, 1.0, 0.0]
    )
    # Abduction swings the whole finger in the palm plane.
    direction = (
        rotation_about_axis(np.array([0.0, 0.0, 1.0]), mcp_abd) @ direction
    )

    bend_normal = _BEND_NORMALS[finger]
    flex_axis = np.cross(direction, bend_normal)
    axis_norm = np.linalg.norm(flex_axis)
    if axis_norm < 1e-9:
        # Degenerate only if direction aligns with the bend normal, which
        # the angle limits prevent; guard regardless.
        flex_axis = np.array([1.0, 0.0, 0.0])
    else:
        flex_axis = flex_axis / axis_norm

    lengths = shape.phalange_lengths[finger]
    joints = np.empty((4, 3))
    joints[0] = root

    d = rotation_about_axis(flex_axis, mcp_flex) @ direction
    joints[1] = joints[0] + lengths[0] * d
    d = rotation_about_axis(flex_axis, pip_flex) @ d
    joints[2] = joints[1] + lengths[1] * d
    d = rotation_about_axis(flex_axis, dip_flex) @ d
    joints[3] = joints[2] + lengths[2] * d
    return joints


def forward_kinematics(shape: HandShape, pose: HandPose) -> np.ndarray:
    """Compute the 21 world-frame joint positions of ``shape`` at ``pose``.

    Returns an array of shape (21, 3) ordered per
    :data:`repro.hand.joints.JOINT_NAMES`.
    """
    local = np.zeros((NUM_JOINTS, 3))
    local[WRIST] = 0.0
    for i, finger in enumerate(FINGERS):
        chain = _finger_local_joints(shape, finger, pose.finger_angles[i])
        local[1 + 4 * i : 1 + 4 * i + 4] = chain
    return pose.wrist_position + local @ pose.orientation.T


def phalange_directions(joints: np.ndarray) -> np.ndarray:
    """Unit direction vectors of the 20 phalanges, shape (20, 3).

    The network's mesh-recovery stage concatenates these with the joint
    coordinates (paper Sec. V): explicitly providing phalange directions
    helps predict joint rotations.
    """
    from repro.hand.joints import PHALANGES

    joints = np.asarray(joints, dtype=float)
    if joints.shape != (NUM_JOINTS, 3):
        raise KinematicsError(
            f"expected joints of shape (21, 3), got {joints.shape}"
        )
    vectors = np.array([joints[c] - joints[p] for p, c in PHALANGES])
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms = np.where(norms < 1e-9, 1.0, norms)
    return vectors / norms
