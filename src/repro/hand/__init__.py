"""Hand kinematics substrate: the 21-joint model, forward kinematics,
per-subject anthropometry, gesture library and continuous animation.

This package replaces the paper's human volunteers: it produces the exact
21-joint hand configurations that the radar simulator senses and the
training labels are derived from.
"""

from repro.hand.joints import (
    JOINT_NAMES,
    JOINT_PARENTS,
    FINGER_CHAINS,
    FINGERS,
    NUM_JOINTS,
    PALM_JOINTS,
    FINGER_JOINTS,
    PHALANGES,
    WRIST,
    finger_joint_indices,
    joint_index,
)
from repro.hand.shape import HandShape
from repro.hand.kinematics import HandPose, forward_kinematics
from repro.hand.gestures import GESTURE_LIBRARY, gesture_pose, list_gestures
from repro.hand.animation import GestureSequence, sample_gesture_sequence
from repro.hand.subjects import Subject, make_subjects

__all__ = [
    "JOINT_NAMES",
    "JOINT_PARENTS",
    "FINGER_CHAINS",
    "FINGERS",
    "NUM_JOINTS",
    "PALM_JOINTS",
    "FINGER_JOINTS",
    "PHALANGES",
    "WRIST",
    "finger_joint_indices",
    "joint_index",
    "HandShape",
    "HandPose",
    "forward_kinematics",
    "GESTURE_LIBRARY",
    "gesture_pose",
    "list_gestures",
    "GestureSequence",
    "sample_gesture_sequence",
    "Subject",
    "make_subjects",
]
