"""Per-subject hand anthropometry.

A :class:`HandShape` fixes the rigid geometry of one person's hand: where
the finger roots sit on the palm and how long each phalange is. The paper's
volunteers span heights of 1.65-1.85 m and several body types; hand size
correlates with height, which :func:`HandShape.from_scale` captures with a
single scale factor around average adult proportions.

All lengths are metres, expressed in the hand's local frame:

* origin at the wrist,
* +y towards the fingers,
* +x towards the thumb side (radial),
* +z out of the palm (the palm faces -z).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import KinematicsError
from repro.hand.joints import FINGERS

#: Average adult phalange lengths (proximal, middle, distal) in metres,
#: loosely following anthropometric survey tables.
_BASE_PHALANGE_LENGTHS: Dict[str, Tuple[float, float, float]] = {
    "thumb": (0.046, 0.032, 0.025),
    "index": (0.040, 0.025, 0.019),
    "middle": (0.044, 0.029, 0.020),
    "ring": (0.041, 0.027, 0.019),
    "pinky": (0.032, 0.019, 0.016),
}

#: Finger-root (MCP / thumb CMC) offsets from the wrist in the hand frame.
_BASE_ROOT_OFFSETS: Dict[str, Tuple[float, float, float]] = {
    "thumb": (0.028, 0.022, -0.004),
    "index": (0.022, 0.086, 0.0),
    "middle": (0.006, 0.090, 0.0),
    "ring": (-0.010, 0.086, 0.0),
    "pinky": (-0.024, 0.078, 0.0),
}

#: Resting abduction (splay) of each finger's pointing direction, radians,
#: positive towards the thumb side.
_BASE_SPLAY_RAD: Dict[str, float] = {
    "thumb": 0.85,
    "index": 0.10,
    "middle": 0.0,
    "ring": -0.09,
    "pinky": -0.20,
}


@dataclass(frozen=True)
class HandShape:
    """Rigid geometry of a single hand.

    Attributes
    ----------
    phalange_lengths:
        Mapping finger name -> (proximal, middle, distal) lengths in metres.
    root_offsets:
        Mapping finger name -> 3-vector offset of the finger root from the
        wrist, in the hand's local frame.
    splay_rad:
        Mapping finger name -> resting abduction angle in radians.
    palm_thickness_m:
        Palm thickness, used by the radar scatterer model and mesh template.
    """

    phalange_lengths: Dict[str, Tuple[float, float, float]] = field(
        default_factory=lambda: dict(_BASE_PHALANGE_LENGTHS)
    )
    root_offsets: Dict[str, Tuple[float, float, float]] = field(
        default_factory=lambda: dict(_BASE_ROOT_OFFSETS)
    )
    splay_rad: Dict[str, float] = field(
        default_factory=lambda: dict(_BASE_SPLAY_RAD)
    )
    palm_thickness_m: float = 0.022

    def __post_init__(self) -> None:
        for table in (self.phalange_lengths, self.root_offsets, self.splay_rad):
            missing = set(FINGERS) - set(table)
            if missing:
                raise KinematicsError(
                    f"hand shape missing fingers: {sorted(missing)}"
                )
        for finger, lengths in self.phalange_lengths.items():
            if any(length <= 0 for length in lengths):
                raise KinematicsError(
                    f"non-positive phalange length for {finger}: {lengths}"
                )
        if self.palm_thickness_m <= 0:
            raise KinematicsError("palm_thickness_m must be positive")

    @classmethod
    def from_scale(cls, scale: float) -> "HandShape":
        """Build a hand uniformly scaled around the average adult hand.

        ``scale`` around 0.9 gives a small hand, 1.1 a large one. The
        paper's population (1.65-1.85 m heights) maps to roughly
        [0.92, 1.08].
        """
        if scale <= 0:
            raise KinematicsError("hand scale must be positive")
        lengths = {
            finger: tuple(length * scale for length in base)
            for finger, base in _BASE_PHALANGE_LENGTHS.items()
        }
        offsets = {
            finger: tuple(coord * scale for coord in base)
            for finger, base in _BASE_ROOT_OFFSETS.items()
        }
        return cls(
            phalange_lengths=lengths,  # type: ignore[arg-type]
            root_offsets=offsets,  # type: ignore[arg-type]
            splay_rad=dict(_BASE_SPLAY_RAD),
            palm_thickness_m=0.022 * scale,
        )

    @property
    def hand_length_m(self) -> float:
        """Wrist-to-middle-fingertip length at full extension."""
        root = np.asarray(self.root_offsets["middle"])
        return float(np.linalg.norm(root)) + sum(
            self.phalange_lengths["middle"]
        )

    def finger_length_m(self, finger: str) -> float:
        """Total phalange length of ``finger`` in metres."""
        if finger not in self.phalange_lengths:
            raise KeyError(f"unknown finger: {finger!r}")
        return float(sum(self.phalange_lengths[finger]))
