"""Continuous gesture animation.

The paper senses *continuous* hand gestures: users transition between
gestures while the radar records frames. :class:`GestureSequence`
interpolates between gesture keyframes with smooth easing and adds
physiological tremor and wrist drift, producing the time-varying poses the
radar simulator samples frame by frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import KinematicsError
from repro.hand.gestures import GESTURE_LIBRARY
from repro.hand.kinematics import HandPose


def _smoothstep(x: np.ndarray) -> np.ndarray:
    """C1 ease curve on [0, 1], zero first derivative at both ends."""
    x = np.clip(x, 0.0, 1.0)
    return x * x * (3.0 - 2.0 * x)


@dataclass(frozen=True)
class Keyframe:
    """One gesture held at one instant of the sequence timeline."""

    time_s: float
    gesture: str

    def __post_init__(self) -> None:
        if self.gesture not in GESTURE_LIBRARY:
            raise KinematicsError(f"unknown gesture {self.gesture!r}")
        if self.time_s < 0:
            raise KinematicsError("keyframe time must be non-negative")


class GestureSequence:
    """A timeline of gesture keyframes with smooth transitions.

    Parameters
    ----------
    keyframes:
        Gesture keyframes ordered by time. At least one is required;
        between consecutive keyframes the finger angles ease smoothly.
    base_position:
        Nominal wrist position in the world frame.
    orientation:
        Hand-to-world rotation, constant over the sequence.
    tremor_amplitude_m:
        Peak amplitude of physiological tremor (~8-12 Hz micro motion).
    drift_amplitude_m:
        Peak amplitude of slow involuntary wrist drift.
    seed:
        Seed of the tremor/drift phase offsets, so sequences are
        reproducible.
    """

    def __init__(
        self,
        keyframes: Sequence[Keyframe],
        base_position: Optional[np.ndarray] = None,
        orientation: Optional[np.ndarray] = None,
        tremor_amplitude_m: float = 0.0015,
        drift_amplitude_m: float = 0.004,
        seed: int = 0,
    ) -> None:
        if not keyframes:
            raise KinematicsError("a gesture sequence needs >= 1 keyframe")
        times = [kf.time_s for kf in keyframes]
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise KinematicsError("keyframe times must strictly increase")
        self.keyframes: List[Keyframe] = list(keyframes)
        self.base_position = (
            np.array([0.30, 0.0, 0.0])
            if base_position is None
            else np.asarray(base_position, dtype=float)
        )
        self.orientation = orientation
        self.tremor_amplitude_m = float(tremor_amplitude_m)
        self.drift_amplitude_m = float(drift_amplitude_m)
        rng = np.random.default_rng(seed)
        self._tremor_phase = rng.uniform(0.0, 2.0 * np.pi, size=3)
        self._drift_phase = rng.uniform(0.0, 2.0 * np.pi, size=3)
        self._tremor_freq = rng.uniform(8.0, 12.0)
        self._drift_freq = rng.uniform(0.15, 0.35)

    @property
    def duration_s(self) -> float:
        """Timeline length (time of the final keyframe)."""
        return self.keyframes[-1].time_s

    def _angles_at(self, t: float) -> np.ndarray:
        frames = self.keyframes
        if t <= frames[0].time_s:
            return GESTURE_LIBRARY[frames[0].gesture].copy()
        if t >= frames[-1].time_s:
            return GESTURE_LIBRARY[frames[-1].gesture].copy()
        for left, right in zip(frames, frames[1:]):
            if left.time_s <= t <= right.time_s:
                span = right.time_s - left.time_s
                alpha = float(_smoothstep((t - left.time_s) / span))
                a = GESTURE_LIBRARY[left.gesture]
                b = GESTURE_LIBRARY[right.gesture]
                return (1.0 - alpha) * a + alpha * b
        raise KinematicsError("time lookup failed")  # pragma: no cover

    def _wrist_at(self, t: float) -> np.ndarray:
        tremor = self.tremor_amplitude_m * np.sin(
            2.0 * np.pi * self._tremor_freq * t + self._tremor_phase
        )
        drift = self.drift_amplitude_m * np.sin(
            2.0 * np.pi * self._drift_freq * t + self._drift_phase
        )
        return self.base_position + tremor + drift

    def pose_at(self, t: float) -> HandPose:
        """The hand pose at time ``t`` seconds."""
        kwargs = {}
        if self.orientation is not None:
            kwargs["orientation"] = self.orientation
        return HandPose(
            finger_angles=self._angles_at(t),
            wrist_position=self._wrist_at(t),
            **kwargs,
        )

    def sample(self, frame_period_s: float, num_frames: int) -> List[HandPose]:
        """Poses at ``num_frames`` radar frame instants."""
        if frame_period_s <= 0:
            raise KinematicsError("frame_period_s must be positive")
        if num_frames < 1:
            raise KinematicsError("num_frames must be >= 1")
        return [self.pose_at(i * frame_period_s) for i in range(num_frames)]


def sample_gesture_sequence(
    rng: np.random.Generator,
    gestures: Sequence[str],
    num_keyframes: int = 4,
    hold_s: Tuple[float, float] = (0.4, 0.9),
    base_position: Optional[np.ndarray] = None,
    orientation: Optional[np.ndarray] = None,
) -> GestureSequence:
    """Draw a random continuous gesture sequence from a gesture pool.

    Consecutive keyframes always differ, mimicking a user flowing from one
    gesture to the next as in the paper's collection sessions.
    """
    if num_keyframes < 1:
        raise KinematicsError("num_keyframes must be >= 1")
    if not gestures:
        raise KinematicsError("gesture pool must be non-empty")
    names: List[str] = []
    for _ in range(num_keyframes):
        pool = [g for g in gestures if not names or g != names[-1]]
        names.append(pool[int(rng.integers(len(pool)))])
    t = 0.0
    keyframes = []
    for name in names:
        keyframes.append(Keyframe(time_s=t, gesture=name))
        t += float(rng.uniform(*hold_s))
    return GestureSequence(
        keyframes,
        base_position=base_position,
        orientation=orientation,
        seed=int(rng.integers(2**31)),
    )
