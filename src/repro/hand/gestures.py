"""Gesture library: the counting and interaction gestures of the paper.

The paper's volunteers perform "non-predefined and most common daily
gestures": counting gestures and interaction gestures. This module encodes
a library of such gestures as per-finger angle presets; the animation layer
interpolates between them to create the continuous motions the radar senses.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import KinematicsError
from repro.hand.kinematics import HandPose

# Angle presets per finger state: (mcp_flex, mcp_abd, pip_flex, dip_flex).
_EXTENDED = (0.0, 0.0, 0.0, 0.0)
_SPREAD = (0.0, 0.25, 0.0, 0.0)
_CURLED = (1.35, 0.0, 1.5, 0.9)
_HALF_CURLED = (0.7, 0.0, 0.8, 0.45)
_HOOK = (0.15, 0.0, 1.3, 0.8)
_THUMB_EXTENDED = (0.0, 0.0, 0.0, 0.0)
_THUMB_TUCKED = (0.9, -0.35, 0.9, 0.5)
_THUMB_OPPOSED = (0.55, 0.15, 0.55, 0.35)


def _angles(
    thumb=_THUMB_TUCKED, index=_CURLED, middle=_CURLED, ring=_CURLED,
    pinky=_CURLED,
) -> np.ndarray:
    return np.array([thumb, index, middle, ring, pinky], dtype=float)


#: Named gesture -> (5, 4) finger angle array. Counting gestures zero..five
#: plus the common interaction gestures the intro motivates (pointing for UI
#: control, pinch for selection, grab for VR manipulation, etc.).
GESTURE_LIBRARY: Dict[str, np.ndarray] = {
    # -- counting gestures ------------------------------------------------
    "count_zero": _angles(),  # fist
    "count_one": _angles(index=_EXTENDED),
    "count_two": _angles(index=_SPREAD, middle=_EXTENDED),
    "count_three": _angles(index=_SPREAD, middle=_EXTENDED, ring=_SPREAD),
    "count_four": _angles(
        index=_SPREAD, middle=_EXTENDED, ring=_SPREAD, pinky=_SPREAD
    ),
    "count_five": _angles(
        thumb=_THUMB_EXTENDED,
        index=_SPREAD,
        middle=_EXTENDED,
        ring=_SPREAD,
        pinky=_SPREAD,
    ),
    # -- interaction gestures ---------------------------------------------
    "open_palm": _angles(
        thumb=_THUMB_EXTENDED,
        index=_EXTENDED,
        middle=_EXTENDED,
        ring=_EXTENDED,
        pinky=_EXTENDED,
    ),
    "fist": _angles(),
    "point": _angles(index=_EXTENDED, thumb=_THUMB_TUCKED),
    "pinch": _angles(
        thumb=_THUMB_OPPOSED,
        index=_HALF_CURLED,
        middle=_EXTENDED,
        ring=_EXTENDED,
        pinky=_EXTENDED,
    ),
    "ok_sign": _angles(
        thumb=_THUMB_OPPOSED,
        index=(0.9, 0.0, 1.0, 0.6),
        middle=_EXTENDED,
        ring=_EXTENDED,
        pinky=_SPREAD,
    ),
    "thumbs_up": _angles(thumb=_THUMB_EXTENDED),
    "grab": _angles(
        thumb=_THUMB_OPPOSED,
        index=_HALF_CURLED,
        middle=_HALF_CURLED,
        ring=_HALF_CURLED,
        pinky=_HALF_CURLED,
    ),
    "hook": _angles(
        thumb=_THUMB_TUCKED, index=_HOOK, middle=_HOOK, ring=_HOOK,
        pinky=_HOOK,
    ),
    "victory": _angles(index=_SPREAD, middle=_EXTENDED),
    "call_me": _angles(thumb=_THUMB_EXTENDED, pinky=_SPREAD),
}

#: Gesture groups used by the data campaign to mimic the paper's two
#: categories.
COUNTING_GESTURES: List[str] = [
    name for name in GESTURE_LIBRARY if name.startswith("count_")
]
INTERACTION_GESTURES: List[str] = [
    name for name in GESTURE_LIBRARY if not name.startswith("count_")
]


def list_gestures() -> List[str]:
    """Names of every gesture in the library, stable order."""
    return list(GESTURE_LIBRARY)


def gesture_pose(name: str, **placement) -> HandPose:
    """Build a :class:`HandPose` for the named gesture.

    ``placement`` keyword arguments (``wrist_position``, ``orientation``)
    are forwarded to :class:`HandPose`.
    """
    if name not in GESTURE_LIBRARY:
        raise KinematicsError(
            f"unknown gesture {name!r}; available: {sorted(GESTURE_LIBRARY)}"
        )
    return HandPose(
        finger_angles=GESTURE_LIBRARY[name].copy(), **placement
    )


def blend_gestures(
    name_a: str, name_b: str, alpha: float
) -> np.ndarray:
    """Linearly blend two gestures' angles; ``alpha`` = 0 gives ``name_a``.

    Used by the animation layer for continuous transitions.
    """
    if not 0.0 <= alpha <= 1.0:
        raise KinematicsError("blend alpha must lie in [0, 1]")
    for name in (name_a, name_b):
        if name not in GESTURE_LIBRARY:
            raise KinematicsError(f"unknown gesture {name!r}")
    return (
        (1.0 - alpha) * GESTURE_LIBRARY[name_a]
        + alpha * GESTURE_LIBRARY[name_b]
    )
