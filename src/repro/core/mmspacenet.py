"""mmSpaceNet: the attention-based hourglass network (paper Sec. IV-A).

The network extracts multi-scale spatial features of the hand from radar
cube segments. Each attention residual block has two branches: a 1x1
convolution preserving current-level features, and an hourglass branch
that downsamples with strided convolutions to extract fine-grained
high-dimensional features before deconvolving back to full resolution.
Two-stage channel attention (frames, then velocity channels) and spatial
attention over the range-angle maps focus the network on the informative
parts of the spectrum.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import DspConfig, ModelConfig
from repro.errors import ModelError
from repro.obs import trace
from repro.nn.attention import (
    FrameAttention,
    SpatialAttention,
    VelocityChannelAttention,
)
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.tensor import Tensor


class AttentionResidualBlock(Module):
    """One residual block of mmSpaceNet (paper Fig. 5).

    ``out = attn(relu(conv1x1(x) + hourglass(x)))`` where the hourglass
    branch downsamples ``depth`` times with stride-2 convolutions and
    upsamples back with transposed convolutions, and ``attn`` chains the
    channel and spatial attention mechanisms.
    """

    def __init__(
        self,
        channels: int,
        depth: int,
        use_channel_attention: bool = True,
        use_spatial_attention: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        if depth < 1:
            raise ModelError("hourglass depth must be >= 1")
        self.preserve = Conv2d(channels, channels, kernel_size=1, rng=rng)

        down_layers = []
        for _ in range(depth):
            down_layers.extend(
                [
                    Conv2d(channels, channels, kernel_size=3, stride=2,
                           padding=1, rng=rng),
                    BatchNorm2d(channels),
                    ReLU(),
                ]
            )
        up_layers = []
        for _ in range(depth):
            up_layers.extend(
                [
                    ConvTranspose2d(channels, channels, kernel_size=3,
                                    stride=2, rng=rng),
                    BatchNorm2d(channels),
                    ReLU(),
                ]
            )
        self.down = Sequential(*down_layers)
        self.up = Sequential(*up_layers)

        self.channel_attention = (
            VelocityChannelAttention(channels, rng=rng)
            if use_channel_attention
            else None
        )
        self.spatial_attention = (
            SpatialAttention(rng=rng) if use_spatial_attention else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ModelError(
                f"residual block expects (N, C, H, W), got {x.shape}"
            )
        h, w = x.shape[2], x.shape[3]
        depth_factor = 2 ** len(self.down.layers[::3])
        if h % depth_factor or w % depth_factor:
            raise ModelError(
                f"spatial size {h}x{w} must be divisible by {depth_factor} "
                "for the hourglass branch"
            )
        preserved = self.preserve(x)
        deep = self.up(self.down(x))
        out = (preserved + deep).relu()
        if self.channel_attention is not None:
            out = self.channel_attention(out)
        if self.spatial_attention is not None:
            out = self.spatial_attention(out)
        return out

    def compile_plan(self, builder, reg: int) -> int:
        """Append this block's ops to a :mod:`repro.nn.inference` plan."""
        depth_factor = 2 ** len(self.down.layers[::3])

        def check(shape) -> None:
            if len(shape) != 4:
                raise ModelError(
                    f"residual block expects (N, C, H, W), got {shape}"
                )
            h, w = shape[2], shape[3]
            if h % depth_factor or w % depth_factor:
                raise ModelError(
                    f"spatial size {h}x{w} must be divisible by "
                    f"{depth_factor} for the hourglass branch"
                )

        reg = builder.check_shape(
            reg, check,
            spec={
                "ndim": 4,
                "div": [[2, depth_factor], [3, depth_factor]],
            },
        )
        preserved = builder.conv(reg, self.preserve)
        deep = builder.sequential(builder.sequential(reg, self.down), self.up)
        out = builder.add_relu(preserved, deep)
        if self.channel_attention is not None:
            out = builder.module(out, self.channel_attention)
        if self.spatial_attention is not None:
            out = builder.module(out, self.spatial_attention)
        return out


class MmSpaceNet(Module):
    """Spatial feature extractor over radar cube segments.

    Input ``(B, st, V, D, A)``; output per-frame feature vectors
    ``(B, st, feature_dim)`` that feed the temporal LSTM model.
    """

    def __init__(
        self,
        dsp: DspConfig,
        model: ModelConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.dsp = dsp
        self.model_config = model
        st = dsp.segment_frames
        v = dsp.doppler_bins
        c = model.base_channels

        self.frame_attention = (
            FrameAttention(st, rng=rng) if model.use_frame_attention else None
        )
        self.input_velocity_attention = (
            VelocityChannelAttention(v, rng=rng)
            if model.use_velocity_attention
            else None
        )
        self.input_spatial_attention = (
            SpatialAttention(rng=rng) if model.use_spatial_attention else None
        )
        self.stem = Sequential(
            Conv2d(v, c, kernel_size=3, padding=1, rng=rng),
            BatchNorm2d(c),
            ReLU(),
        )
        blocks = [
            AttentionResidualBlock(
                c,
                depth=model.hourglass_depth,
                use_channel_attention=model.use_velocity_attention,
                use_spatial_attention=model.use_spatial_attention,
                rng=rng,
            )
            for _ in range(model.num_blocks)
        ]
        self.blocks = Sequential(*blocks)
        self.head_convs = Sequential(
            Conv2d(c, c, kernel_size=3, stride=2, padding=1, rng=rng),
            ReLU(),
            Conv2d(c, 2 * c, kernel_size=3, stride=2, padding=1, rng=rng),
            ReLU(),
        )
        head_h = dsp.range_bins // 4
        head_w = dsp.angle_bins_total // 4
        self._head_features = 2 * c * head_h * head_w
        self.head_fc = Linear(self._head_features, model.feature_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 4:
            # A single segment (st, V, D, A): promote to a batch of one
            # so callers can use the same code path for one window or a
            # serving micro-batch.
            x = x.reshape(1, *x.shape)
        if x.ndim != 5:
            raise ModelError(
                f"MmSpaceNet expects (B, st, V, D, A) or a single "
                f"(st, V, D, A) segment, got {x.shape}"
            )
        b, st, v, d, a = x.shape
        if st != self.dsp.segment_frames or v != self.dsp.doppler_bins:
            raise ModelError(
                "input segment does not match the DSP configuration: "
                f"got st={st}, V={v}; expected "
                f"st={self.dsp.segment_frames}, V={self.dsp.doppler_bins}"
            )
        with trace.span("model.spatial.forward", batch=b):
            if self.frame_attention is not None:
                x = self.frame_attention(x)
            frames = x.reshape(b * st, v, d, a)
            if self.input_velocity_attention is not None:
                frames = self.input_velocity_attention(frames)
            if self.input_spatial_attention is not None:
                frames = self.input_spatial_attention(frames)
            features = self.stem(frames)
            features = self.blocks(features)
            features = self.head_convs(features)
            flat = features.reshape(b * st, self._head_features)
            out = self.head_fc(flat).relu()
            return out.reshape(b, st, self.model_config.feature_dim)

    def compile_plan(self, builder, reg: int) -> int:
        """Append the full spatial network to an inference plan.

        Mirrors :meth:`forward` op for op (single-segment promotion,
        shape validation, attention stages, stem/blocks/head) with the
        Conv+BN+ReLU groups inside fused by the builder.
        """
        dsp = self.dsp

        def promote(shape):
            return (1, *shape) if len(shape) == 4 else shape

        def check(shape) -> None:
            if len(shape) != 5:
                raise ModelError(
                    f"MmSpaceNet expects (B, st, V, D, A) or a single "
                    f"(st, V, D, A) segment, got {shape}"
                )
            st, v = shape[1], shape[2]
            if st != dsp.segment_frames or v != dsp.doppler_bins:
                raise ModelError(
                    "input segment does not match the DSP configuration: "
                    f"got st={st}, V={v}; expected "
                    f"st={dsp.segment_frames}, V={dsp.doppler_bins}"
                )

        reg = builder.reshape(reg, promote, spec=("promote4",))
        reg = builder.check_shape(
            reg, check,
            spec={
                "ndim": 5,
                "eq": [[1, dsp.segment_frames], [2, dsp.doppler_bins]],
            },
        )
        if self.frame_attention is not None:
            reg = builder.module(reg, self.frame_attention)
        reg = builder.reshape(
            reg, lambda s: (s[0] * s[1], s[2], s[3], s[4]),
            spec=("merge01",),
        )
        if self.input_velocity_attention is not None:
            reg = builder.module(reg, self.input_velocity_attention)
        if self.input_spatial_attention is not None:
            reg = builder.module(reg, self.input_spatial_attention)
        reg = builder.sequential(reg, self.stem)
        reg = builder.sequential(reg, self.blocks)
        reg = builder.sequential(reg, self.head_convs)
        head_features = self._head_features
        reg = builder.reshape(
            reg, lambda s: (s[0], head_features),
            spec=("tail", head_features),
        )
        reg = builder.linear(reg, self.head_fc, relu=True)
        st, feature_dim = dsp.segment_frames, self.model_config.feature_dim
        return builder.reshape(
            reg, lambda s: (s[0] // st, st, feature_dim),
            spec=("split0", st, feature_dim),
        )
