"""Combined training loss (paper Sec. IV-B, Eq. 8-9).

``L_total = beta * L3D + gamma * Lkine`` where ``L3D`` sums per-joint
Euclidean errors and ``Lkine`` imposes the hand's segmented-rigidity
geometry on each finger chain A-B-C-D (three phalanges + fingertip):

* when the ground-truth finger is straight, the predicted chain should be
  *collinear*: total phalange length within 1% of the root-to-tip length
  and each phalange within ``arccos(0.99)`` of the finger direction;
* otherwise the chain should stay *coplanar*: each phalange orthogonal to
  the ground-truth finger plane normal.

The case per finger (lambda in the paper) is decided from the ground
truth, and the plane normal comes from the ground-truth chain, so the
loss is differentiable in the prediction only.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import TrainConfig
from repro.errors import ModelError
from repro.hand.joints import FINGER_CHAINS, FINGERS
from repro.nn.loss import l2_joint_loss
from repro.nn.tensor import Tensor

_EPS = 1e-8


def joint_loss_3d(prediction: Tensor, target: np.ndarray) -> Tensor:
    """``L3D``: batch mean of the summed per-joint Euclidean errors."""
    return l2_joint_loss(prediction, Tensor(np.asarray(target,
                                                       dtype=np.float32)))


def finger_straightness(gt_joints: np.ndarray) -> np.ndarray:
    """Cosine between each ground-truth finger's first phalange and its
    root-to-tip direction, shape ``(B, 5)``; ~1 means straight."""
    gt = np.asarray(gt_joints, dtype=np.float64)
    if gt.ndim == 2:
        gt = gt[None]
    cosines = np.empty((gt.shape[0], len(FINGERS)))
    for f, finger in enumerate(FINGERS):
        a, b, _, d = FINGER_CHAINS[finger]
        ab = gt[:, b] - gt[:, a]
        ad = gt[:, d] - gt[:, a]
        num = (ab * ad).sum(axis=1)
        den = np.linalg.norm(ab, axis=1) * np.linalg.norm(ad, axis=1)
        cosines[:, f] = num / np.maximum(den, _EPS)
    return cosines


def _norm(vec: Tensor) -> Tensor:
    """Row-wise Euclidean norm of a (B, 3) tensor -> (B,)."""
    return ((vec * vec).sum(axis=-1) + _EPS) ** 0.5


def kinematic_loss(
    prediction: Tensor,
    gt_joints: np.ndarray,
    margin: float = 0.01,
    cosine_threshold: float = 0.99,
    straight_cosine: float = 0.995,
) -> Tensor:
    """``Lkine``: collinear/coplanar finger-geometry penalty (Eq. 9).

    ``prediction`` is the (B, 21, 3) joint tensor; ``gt_joints`` the
    matching numpy ground truth used to pick the case per finger and to
    define finger directions/plane normals.
    """
    if prediction.ndim != 3 or prediction.shape[1:] != (21, 3):
        raise ModelError(
            f"kinematic_loss expects (B, 21, 3) predictions, got "
            f"{prediction.shape}"
        )
    gt = np.asarray(gt_joints, dtype=np.float64)
    if gt.shape != prediction.shape:
        raise ModelError("ground truth shape must match predictions")
    batch = prediction.shape[0]
    straight = finger_straightness(gt) > straight_cosine  # (B, 5)

    total = Tensor(np.zeros((), dtype=np.float32))
    for f, finger in enumerate(FINGERS):
        a, b, c, d = FINGER_CHAINS[finger]
        pa, pb, pc, pd = (prediction[:, j, :] for j in (a, b, c, d))
        ab, bc, cd, ad = pb - pa, pc - pb, pd - pc, pd - pa
        n_ab, n_bc, n_cd, n_ad = _norm(ab), _norm(bc), _norm(cd), _norm(ad)

        # Collinear case: length budget + alignment with the GT finger
        # direction e_d.
        gt_dir = gt[:, d] - gt[:, a]
        gt_dir = gt_dir / np.maximum(
            np.linalg.norm(gt_dir, axis=1, keepdims=True), _EPS
        )
        e_d = Tensor(gt_dir.astype(np.float32))
        length_excess = (
            n_ab + n_bc + n_cd - (1.0 + margin) * n_ad
        ).clip_min(0.0)
        align = Tensor(np.zeros((batch,), dtype=np.float32))
        for bone, n_bone in ((ab, n_ab), (bc, n_bc), (cd, n_cd)):
            cos = (bone * e_d).sum(axis=-1) / n_bone
            align = align + (Tensor(
                np.full((batch,), cosine_threshold, dtype=np.float32)
            ) - cos).clip_min(0.0)
        collinear = length_excess + align

        # Coplanar case: phalanges orthogonal to the GT plane normal.
        gt_ab = gt[:, b] - gt[:, a]
        gt_ad = gt[:, d] - gt[:, a]
        normal = np.cross(gt_ab, gt_ad)
        norms = np.linalg.norm(normal, axis=1, keepdims=True)
        # A perfectly straight GT finger has no well-defined plane; those
        # fingers use the collinear branch anyway, so any unit vector is
        # safe to fall back to here.
        normal = np.where(norms > 1e-9, normal / np.maximum(norms, _EPS),
                          np.array([0.0, 0.0, 1.0]))
        e_n = Tensor(normal.astype(np.float32))
        coplanar = Tensor(np.zeros((batch,), dtype=np.float32))
        for bone, n_bone in ((ab, n_ab), (bc, n_bc), (cd, n_cd)):
            dot = (bone * e_n).sum(axis=-1) / n_bone
            coplanar = coplanar + (dot * dot + _EPS) ** 0.5

        case = Tensor(straight[:, f].astype(np.float32))
        total = total + (case * collinear
                         + (1.0 - case) * coplanar).mean()
    return total * (1.0 / len(FINGERS))


def combined_loss(
    prediction: Tensor,
    gt_joints: np.ndarray,
    config: Optional[TrainConfig] = None,
) -> Tuple[Tensor, Tensor, Tensor]:
    """``L_total = beta * L3D + gamma * Lkine`` (Eq. 8).

    Returns ``(total, l3d, lkine)`` so trainers can log the parts.
    """
    if config is None:
        config = TrainConfig()
    l3d = joint_loss_3d(prediction, gt_joints)
    if config.gamma_kinematic > 0:
        lkine = kinematic_loss(
            prediction,
            gt_joints,
            margin=config.collinear_margin,
            cosine_threshold=config.collinear_cosine,
        )
    else:
        lkine = Tensor(np.zeros((), dtype=np.float32))
    total = config.beta_3d * l3d + config.gamma_kinematic * lkine
    return total, l3d, lkine
