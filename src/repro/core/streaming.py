"""Online (streaming) inference over a live radar frame stream.

The batch pipeline (:class:`~repro.core.pipeline.MmHand`) processes a
recorded capture; interactive applications instead receive raw frames
one at a time. :class:`StreamingEstimator` maintains a sliding window of
pre-processed frames and emits a skeleton (and optionally a mesh) every
``hop`` frames once the window is full.

Since the introduction of :mod:`repro.serving`, this class is a thin
single-session adapter: the window bookkeeping lives in
:class:`repro.serving.session.FrameWindow`, which the multi-session
:class:`~repro.serving.server.InferenceServer` shares. Multi-client
deployments should use the server (micro-batching, backpressure,
metrics); this estimator remains the simple one-stream API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.mesh_recovery import MeshReconstructor
from repro.core.regressor import HandJointRegressor
from repro.dsp.radar_cube import CubeBuilder
from repro.errors import FrameShapeError, ReproError
from repro.mano.model import MeshResult
from repro.serving.session import FrameWindow


@dataclass
class StreamOutput:
    """One emission of the streaming estimator."""

    frame_index: int
    skeleton: np.ndarray
    mesh: Optional[MeshResult] = None


class StreamingEstimator:
    """Sliding-window skeleton estimation over raw IF frames.

    Parameters
    ----------
    builder / regressor:
        The pre-processing and regression stages (the regressor must be
        trained and carry fitted normalisation).
    reconstructor:
        Optional fitted mesh-recovery stage; when provided each emission
        includes the MANO mesh.
    hop_frames:
        Emit every ``hop_frames`` new frames once the window holds a full
        segment; 1 gives per-frame updates with maximal overlap.
    """

    def __init__(
        self,
        builder: CubeBuilder,
        regressor: HandJointRegressor,
        reconstructor: Optional[MeshReconstructor] = None,
        hop_frames: int = 1,
    ) -> None:
        if hop_frames < 1:
            raise ReproError("hop_frames must be >= 1")
        self.builder = builder
        self.regressor = regressor
        self.reconstructor = reconstructor
        self.hop_frames = hop_frames
        self._window = FrameWindow(
            builder.dsp.segment_frames, hop_frames=hop_frames
        )

    def reset(self) -> None:
        self._window.reset()

    @property
    def window_fill(self) -> int:
        """Frames currently buffered (max: segment length)."""
        return self._window.fill

    def push(self, raw_frame: np.ndarray) -> Optional[StreamOutput]:
        """Feed one raw IF frame ``(antennas, loops, samples)``.

        Returns an emission when the window is full and the hop has
        elapsed, else ``None``.
        """
        raw_frame = np.asarray(raw_frame)
        if raw_frame.ndim != 3:
            raise FrameShapeError(
                "push expects a single raw frame "
                f"(antennas, loops, samples), got shape {raw_frame.shape}"
            )
        cube = self.builder.build(raw_frame[None])
        segment = self._window.push(cube.values[0])
        if segment is None:
            return None
        skeleton = self.regressor.predict(segment[None])[0]
        mesh = None
        if self.reconstructor is not None:
            mesh = self.reconstructor.reconstruct(skeleton).mesh
        return StreamOutput(
            frame_index=self._window.frame_index,
            skeleton=skeleton,
            mesh=mesh,
        )

    def run(self, raw_frames: np.ndarray) -> List[StreamOutput]:
        """Convenience: push a whole (F, antennas, loops, samples) array."""
        raw_frames = np.asarray(raw_frames)
        if raw_frames.ndim != 4:
            raise FrameShapeError(
                "run expects (F, antennas, loops, samples), got shape "
                f"{raw_frames.shape}"
            )
        outputs = []
        for frame in raw_frames:
            out = self.push(frame)
            if out is not None:
                outputs.append(out)
        return outputs
