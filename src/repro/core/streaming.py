"""Online (streaming) inference over a live radar frame stream.

The batch pipeline (:class:`~repro.core.pipeline.MmHand`) processes a
recorded capture; interactive applications instead receive raw frames
one at a time. :class:`StreamingEstimator` maintains a sliding window of
pre-processed frames and emits a skeleton (and optionally a mesh) every
``hop`` frames once the window is full -- the structure a deployed
mmHand UI controller would run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.core.mesh_recovery import MeshReconstructor
from repro.core.regressor import HandJointRegressor
from repro.dsp.radar_cube import CubeBuilder
from repro.errors import ReproError
from repro.mano.model import MeshResult


@dataclass
class StreamOutput:
    """One emission of the streaming estimator."""

    frame_index: int
    skeleton: np.ndarray
    mesh: Optional[MeshResult] = None


class StreamingEstimator:
    """Sliding-window skeleton estimation over raw IF frames.

    Parameters
    ----------
    builder / regressor:
        The pre-processing and regression stages (the regressor must be
        trained and carry fitted normalisation).
    reconstructor:
        Optional fitted mesh-recovery stage; when provided each emission
        includes the MANO mesh.
    hop_frames:
        Emit every ``hop_frames`` new frames once the window holds a full
        segment; 1 gives per-frame updates with maximal overlap.
    """

    def __init__(
        self,
        builder: CubeBuilder,
        regressor: HandJointRegressor,
        reconstructor: Optional[MeshReconstructor] = None,
        hop_frames: int = 1,
    ) -> None:
        if hop_frames < 1:
            raise ReproError("hop_frames must be >= 1")
        self.builder = builder
        self.regressor = regressor
        self.reconstructor = reconstructor
        self.hop_frames = hop_frames
        self._window: Deque[np.ndarray] = deque(
            maxlen=builder.dsp.segment_frames
        )
        self._since_emit = 0
        self._frame_index = -1

    def reset(self) -> None:
        self._window.clear()
        self._since_emit = 0
        self._frame_index = -1

    @property
    def window_fill(self) -> int:
        """Frames currently buffered (max: segment length)."""
        return len(self._window)

    def push(self, raw_frame: np.ndarray) -> Optional[StreamOutput]:
        """Feed one raw IF frame ``(antennas, loops, samples)``.

        Returns an emission when the window is full and the hop has
        elapsed, else ``None``.
        """
        raw_frame = np.asarray(raw_frame)
        if raw_frame.ndim != 3:
            raise ReproError(
                "push expects a single raw frame "
                "(antennas, loops, samples)"
            )
        self._frame_index += 1
        cube = self.builder.build(raw_frame[None])
        self._window.append(cube.values[0])
        self._since_emit += 1
        st = self.builder.dsp.segment_frames
        if len(self._window) < st or self._since_emit < self.hop_frames:
            return None
        self._since_emit = 0
        segment = np.stack(list(self._window))
        skeleton = self.regressor.predict(segment[None])[0]
        mesh = None
        if self.reconstructor is not None:
            mesh = self.reconstructor.reconstruct(skeleton).mesh
        return StreamOutput(
            frame_index=self._frame_index, skeleton=skeleton, mesh=mesh
        )

    def run(self, raw_frames: np.ndarray) -> List[StreamOutput]:
        """Convenience: push a whole (F, antennas, loops, samples) array."""
        raw_frames = np.asarray(raw_frames)
        if raw_frames.ndim != 4:
            raise ReproError("run expects (F, antennas, loops, samples)")
        outputs = []
        for frame in raw_frames:
            out = self.push(frame)
            if out is not None:
                outputs.append(out)
        return outputs
