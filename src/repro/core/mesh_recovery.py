"""Mesh reconstruction from regressed skeletons (paper Sec. V, Fig. 8).

Two fully-connected networks with layer normalisation recover the MANO
parameters from the 21 regressed joints:

* :class:`ShapeParameterNet` maps the (wrist-centred) skeleton to the
  shape coefficients ``beta in R^10`` -- the skeleton's spatial
  distribution encodes the hand's overall size and inner geometry.
* :class:`PoseParameterNet` solves the inverse-kinematics problem
  end-to-end: the skeleton plus the 20 phalange direction vectors ``Dp``
  map to per-joint rotation quaternions ``Q in R^{21x4}`` (efficient to
  regress), converted to axis-angle ``theta`` for MANO.

Both are trained self-supervised against the differentiable hand model:
sample plausible ``(beta, theta)``, run MANO forward for joints, and fit
the inverse maps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import MeshError, ModelError
from repro.hand.joints import NUM_JOINTS
from repro.hand.kinematics import phalange_directions
from repro.mano.blend import NUM_SHAPE_PARAMS
from repro.mano.model import ManoHandModel, MeshResult, random_theta
from repro.mano.rotations import (
    axis_angle_to_quaternion,
    quaternion_to_axis_angle,
)
from repro.nn.layers import LayerNorm, Linear, Module, ReLU, Sequential
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.obs import metrics as obs_metrics
from repro.obs import trace


def _fc_block(
    sizes, rng: np.random.Generator, final_activation: bool = False
) -> Sequential:
    """Fully-connected stack with layer normalisation (paper Sec. V)."""
    layers = []
    for i, (n_in, n_out) in enumerate(zip(sizes, sizes[1:])):
        layers.append(Linear(n_in, n_out, rng=rng))
        last = i == len(sizes) - 2
        if not last or final_activation:
            layers.append(LayerNorm(n_out))
            layers.append(ReLU())
    return Sequential(*layers)


class ShapeParameterNet(Module):
    """Three FC layers with layer normalisation: skeleton -> beta."""

    def __init__(self, hidden: int = 128, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.net = _fc_block(
            (NUM_JOINTS * 3, hidden, hidden, NUM_SHAPE_PARAMS), rng
        )

    def forward(self, joints_flat: Tensor) -> Tensor:
        if joints_flat.shape[-1] != NUM_JOINTS * 3:
            raise ModelError(
                f"ShapeParameterNet expects {NUM_JOINTS * 3} inputs, got "
                f"{joints_flat.shape[-1]}"
            )
        return self.net(joints_flat)


class PoseParameterNet(Module):
    """FC layers with layer normalisation: [skeleton, Dp] -> quaternions."""

    def __init__(self, hidden: int = 192, seed: int = 1) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        in_features = NUM_JOINTS * 3 + 20 * 3
        self.net = _fc_block(
            (in_features, hidden, hidden, NUM_JOINTS * 4), rng
        )

    def forward(self, features: Tensor) -> Tensor:
        if features.shape[-1] != NUM_JOINTS * 3 + 60:
            raise ModelError(
                "PoseParameterNet expects concatenated joints (63) and "
                f"phalange directions (60), got {features.shape[-1]}"
            )
        raw = self.net(features)
        return raw.reshape(features.shape[0], NUM_JOINTS, 4)


@dataclass
class MeshRecoveryResult:
    """One reconstructed hand: parameters, mesh, and stage timing."""

    beta: np.ndarray
    theta: np.ndarray
    mesh: MeshResult
    elapsed_s: float


class MeshReconstructor:
    """MANO-based mesh reconstruction from regressed skeletons.

    Parameters
    ----------
    hand_model:
        The parametric hand model; defaults to the average-shape model.
    seed:
        Seed of both inverse networks and of the self-training sampler.
    """

    def __init__(
        self,
        hand_model: Optional[ManoHandModel] = None,
        seed: int = 0,
    ) -> None:
        self.hand_model = (
            hand_model if hand_model is not None else ManoHandModel()
        )
        self.shape_net = ShapeParameterNet(seed=seed)
        self.pose_net = PoseParameterNet(seed=seed + 1)
        self._rng = np.random.default_rng(seed)
        self._fitted = False

    # ------------------------------------------------------------------
    # Self-supervised fitting against the differentiable hand model
    # ------------------------------------------------------------------
    def _sample_batch(
        self, batch: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample (beta, theta, joints) triples from the hand model."""
        betas = self._rng.normal(0.0, 0.7, size=(batch, NUM_SHAPE_PARAMS))
        thetas = np.stack(
            [random_theta(self._rng) for _ in range(batch)]
        )
        joints = np.stack(
            [
                self.hand_model(beta=b, theta=t).joints
                for b, t in zip(betas, thetas)
            ]
        )
        return betas, thetas, joints

    @staticmethod
    def _features(joints: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Wrist-centred flattened joints and [joints, Dp] pose features."""
        joints = np.asarray(joints, dtype=np.float64)
        if joints.ndim == 2:
            joints = joints[None]
        centred = joints - joints[:, :1, :]
        flat = centred.reshape(len(joints), -1).astype(np.float32)
        dirs = np.stack(
            [phalange_directions(j) for j in centred]
        ).reshape(len(joints), -1).astype(np.float32)
        return flat, np.concatenate([flat, dirs], axis=1)

    def fit(
        self,
        steps: int = 300,
        batch_size: int = 32,
        lr: float = 1e-3,
        verbose: bool = False,
    ) -> dict:
        """Train both inverse networks against the hand model.

        Returns a history dict with the final shape/pose losses.
        """
        shape_opt = Adam(self.shape_net.parameters(), lr=lr)
        pose_opt = Adam(self.pose_net.parameters(), lr=lr)
        history = {"shape_loss": [], "pose_loss": []}
        for step in range(steps):
            betas, thetas, joints = self._sample_batch(batch_size)
            flat, pose_features = self._features(joints)

            beta_pred = self.shape_net(Tensor(flat))
            shape_loss = (
                (beta_pred - Tensor(betas.astype(np.float32))) ** 2
            ).mean()
            shape_opt.zero_grad()
            shape_loss.backward()
            shape_opt.step()

            target_q = axis_angle_to_quaternion(thetas).astype(np.float32)
            q_pred = self.pose_net(Tensor(pose_features))
            norm = ((q_pred * q_pred).sum(axis=-1, keepdims=True)
                    + 1e-8) ** 0.5
            q_unit = q_pred / norm
            dot = (q_unit * Tensor(target_q)).sum(axis=-1)
            pose_loss = (1.0 - dot * dot).mean()
            pose_opt.zero_grad()
            pose_loss.backward()
            pose_opt.step()

            history["shape_loss"].append(float(shape_loss.data))
            history["pose_loss"].append(float(pose_loss.data))
            if verbose and (step + 1) % 50 == 0:
                print(
                    f"[mesh-recovery] step {step + 1}/{steps} "
                    f"shape={history['shape_loss'][-1]:.4f} "
                    f"pose={history['pose_loss'][-1]:.4f}"
                )
        self._fitted = True
        return history

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def infer_parameters(
        self, joints: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(beta, theta) for a single 21x3 skeleton, in metres."""
        joints = np.asarray(joints, dtype=np.float64)
        if joints.shape != (NUM_JOINTS, 3):
            raise MeshError(
                f"expected a (21, 3) skeleton, got {joints.shape}"
            )
        flat, pose_features = self._features(joints)
        with no_grad():
            beta = self.shape_net(Tensor(flat)).data[0].astype(np.float64)
            quats = self.pose_net(Tensor(pose_features)).data[0]
        theta = quaternion_to_axis_angle(
            quats / np.maximum(
                np.linalg.norm(quats, axis=-1, keepdims=True), 1e-8
            )
        )
        return beta, theta

    def reconstruct(self, joints: np.ndarray) -> MeshRecoveryResult:
        """Full mesh for a regressed skeleton (paper Fig. 8).

        The mesh is evaluated in the hand frame and translated to the
        skeleton's wrist position.
        """
        start = time.perf_counter()
        with trace.span("mano.recover"):
            beta, theta = self.infer_parameters(joints)
            mesh = self.hand_model(beta=beta, theta=theta)
            mesh = mesh.translated(np.asarray(joints[0], dtype=float))
        elapsed = time.perf_counter() - start
        obs_metrics.histogram("mano.recover_s").observe(elapsed)
        return MeshRecoveryResult(
            beta=beta, theta=theta, mesh=mesh, elapsed_s=elapsed
        )
