"""Temporal smoothing of skeleton streams.

Per-segment regression is independent frame to frame; deployed systems
smooth the stream. Two options:

* :class:`JointKalmanFilter` -- a constant-velocity Kalman filter per
  joint coordinate, the standard tracker for human-pose streams;
* :func:`exponential_smooth` -- simple EMA smoothing for comparison.

Both reduce jitter without the lag a plain moving average introduces on
fast gesture transitions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ReproError
from repro.hand.joints import NUM_JOINTS


class JointKalmanFilter:
    """Constant-velocity Kalman filter over all 21x3 joint coordinates.

    State per coordinate: (position, velocity). The filter assumes a
    fixed frame period; process noise controls how quickly it trusts
    observed accelerations, measurement noise how much it trusts the
    per-frame regression.
    """

    def __init__(
        self,
        frame_period_s: float = 0.05,
        process_noise: float = 8.0,
        measurement_noise_m: float = 0.012,
    ) -> None:
        if frame_period_s <= 0:
            raise ReproError("frame_period_s must be positive")
        if process_noise <= 0 or measurement_noise_m <= 0:
            raise ReproError("noise parameters must be positive")
        self.dt = frame_period_s
        dt = frame_period_s
        self._f = np.array([[1.0, dt], [0.0, 1.0]])
        # Piecewise-constant white acceleration model.
        q = process_noise
        self._q = q * np.array(
            [[dt**4 / 4, dt**3 / 2], [dt**3 / 2, dt**2]]
        )
        self._r = measurement_noise_m**2
        self._state: Optional[np.ndarray] = None  # (63, 2)
        self._cov: Optional[np.ndarray] = None  # (63, 2, 2)

    def reset(self) -> None:
        self._state = None
        self._cov = None

    def update(self, skeleton: np.ndarray) -> np.ndarray:
        """Filter one observed skeleton; returns the smoothed skeleton."""
        skeleton = np.asarray(skeleton, dtype=float)
        if skeleton.shape != (NUM_JOINTS, 3):
            raise ReproError(
                f"expected a (21, 3) skeleton, got {skeleton.shape}"
            )
        z = skeleton.reshape(-1)  # (63,)
        if self._state is None:
            self._state = np.stack([z, np.zeros_like(z)], axis=1)
            self._cov = np.tile(
                np.diag([self._r, 1.0]), (len(z), 1, 1)
            )
            return skeleton.copy()

        # Predict.
        state = self._state @ self._f.T
        cov = np.einsum(
            "ab,nbc,dc->nad", self._f, self._cov, self._f
        ) + self._q

        # Update (measurement H = [1, 0]).
        innovation = z - state[:, 0]
        s = cov[:, 0, 0] + self._r
        gain = cov[:, :, 0] / s[:, None]  # (63, 2)
        state = state + gain * innovation[:, None]
        # Joseph-free standard form: P <- (I - K H) P.
        kh = np.zeros_like(cov)
        kh[:, 0, 0] = gain[:, 0]
        kh[:, 1, 0] = gain[:, 1]
        cov = cov - np.einsum("nab,nbc->nac", kh, cov)

        self._state = state
        self._cov = cov
        return state[:, 0].reshape(NUM_JOINTS, 3)

    def smooth_sequence(self, skeletons: np.ndarray) -> np.ndarray:
        """Filter a (N, 21, 3) sequence, returning the smoothed stream."""
        skeletons = np.asarray(skeletons, dtype=float)
        if skeletons.ndim != 3:
            raise ReproError("expected (N, 21, 3) skeletons")
        return np.stack([self.update(s) for s in skeletons])


def exponential_smooth(
    skeletons: np.ndarray, alpha: float = 0.5
) -> np.ndarray:
    """EMA smoothing of a (N, 21, 3) skeleton sequence.

    ``alpha`` is the weight of the newest observation (1 = no smoothing).
    """
    if not 0.0 < alpha <= 1.0:
        raise ReproError("alpha must lie in (0, 1]")
    skeletons = np.asarray(skeletons, dtype=float)
    if skeletons.ndim != 3 or skeletons.shape[1:] != (NUM_JOINTS, 3):
        raise ReproError("expected (N, 21, 3) skeletons")
    out = np.empty_like(skeletons)
    out[0] = skeletons[0]
    for i in range(1, len(skeletons)):
        out[i] = alpha * skeletons[i] + (1.0 - alpha) * out[i - 1]
    return out


def jitter_metric(skeletons: np.ndarray) -> float:
    """Mean frame-to-frame joint displacement (mm) -- a jitter proxy.

    Smoothing should reduce this on a stationary hand without biasing a
    moving one.
    """
    skeletons = np.asarray(skeletons, dtype=float)
    if skeletons.ndim != 3 or len(skeletons) < 2:
        raise ReproError("need at least 2 skeletons")
    deltas = np.linalg.norm(np.diff(skeletons, axis=0), axis=2)
    return float(deltas.mean() * 1000.0)
