"""The end-to-end mmHand system (paper Fig. 2).

:class:`MmHand` chains the three modules: mmWave signal pre-processing
(raw IF frames -> radar cube segments), hand joint regression (segments
-> 21-joint skeletons) and hand mesh reconstruction (skeletons -> MANO
meshes), with per-stage timing instrumentation for the time-consumption
analysis (paper Fig. 26).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.core.mesh_recovery import MeshReconstructor
from repro.core.regressor import HandJointRegressor
from repro.dsp.radar_cube import CubeBuilder, segment_cube
from repro.errors import ReproError
from repro.mano.model import MeshResult


@dataclass
class PipelineTiming:
    """Per-segment wall-clock times of the two stages (Fig. 26)."""

    skeleton_s: float
    mesh_s: float

    @property
    def overall_s(self) -> float:
        return self.skeleton_s + self.mesh_s


@dataclass
class PipelineOutput:
    """Everything the pipeline produces for a run of raw frames."""

    skeletons: np.ndarray  # (S, 21, 3)
    meshes: List[MeshResult]
    timings: List[PipelineTiming]


class MmHand:
    """The complete mmWave 3-D hand pose estimation system.

    Parameters
    ----------
    config:
        Bundled subsystem configuration.
    regressor:
        A trained joint-regression network. An untrained network still
        runs (useful for pipeline tests) but produces meaningless poses.
    reconstructor:
        A fitted mesh-recovery module; if omitted, one is created and
        must be fitted via ``system.reconstructor.fit()`` before meshes
        are meaningful.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        regressor: Optional[HandJointRegressor] = None,
        reconstructor: Optional[MeshReconstructor] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        self.builder = CubeBuilder(self.config.radar, self.config.dsp)
        self.regressor = (
            regressor
            if regressor is not None
            else HandJointRegressor(self.config.dsp, self.config.model)
        )
        self.reconstructor = (
            reconstructor if reconstructor is not None else MeshReconstructor()
        )

    # ------------------------------------------------------------------
    def preprocess(self, raw_frames: np.ndarray) -> np.ndarray:
        """Raw IF frames ``(F, ants, loops, samples)`` -> stacked cube
        segments ``(S, st, V, D, A)``."""
        cube = self.builder.build(raw_frames)
        segments = segment_cube(
            cube.values, self.config.dsp.segment_frames
        )
        if not segments:
            raise ReproError(
                "not enough frames for one segment "
                f"(need {self.config.dsp.segment_frames})"
            )
        return np.stack(segments)

    def estimate_skeletons(
        self, segments: np.ndarray
    ) -> Tuple[np.ndarray, List[float]]:
        """Regress skeletons per segment, returning per-segment times."""
        segments = np.asarray(segments, dtype=np.float32)
        if segments.ndim == 4:
            segments = segments[None]
        joints = []
        times = []
        for segment in segments:
            start = time.perf_counter()
            joints.append(self.regressor.predict(segment[None])[0])
            times.append(time.perf_counter() - start)
        return np.stack(joints), times

    def reconstruct_meshes(
        self, skeletons: np.ndarray
    ) -> Tuple[List[MeshResult], List[float]]:
        """MANO meshes per skeleton, returning per-skeleton times."""
        skeletons = np.asarray(skeletons, dtype=float)
        if skeletons.ndim == 2:
            skeletons = skeletons[None]
        meshes = []
        times = []
        for skeleton in skeletons:
            result = self.reconstructor.reconstruct(skeleton)
            meshes.append(result.mesh)
            times.append(result.elapsed_s)
        return meshes, times

    def process(self, raw_frames: np.ndarray) -> PipelineOutput:
        """Full pipeline: raw IF frames to skeletons + meshes."""
        segments = self.preprocess(raw_frames)
        skeletons, skel_times = self.estimate_skeletons(segments)
        meshes, mesh_times = self.reconstruct_meshes(skeletons)
        timings = [
            PipelineTiming(skeleton_s=s, mesh_s=m)
            for s, m in zip(skel_times, mesh_times)
        ]
        return PipelineOutput(
            skeletons=skeletons, meshes=meshes, timings=timings
        )
