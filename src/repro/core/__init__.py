"""The paper's primary contribution: hand joint regression from radar
cubes (mmSpaceNet + LSTM + combined loss) and MANO mesh reconstruction,
plus the end-to-end :class:`~repro.core.pipeline.MmHand` system.
"""

from repro.core.mmspacenet import MmSpaceNet, AttentionResidualBlock
from repro.core.temporal import TemporalModel
from repro.core.regressor import HandJointRegressor
from repro.core.losses import (
    joint_loss_3d,
    kinematic_loss,
    combined_loss,
    finger_straightness,
)
from repro.core.mesh_recovery import (
    ShapeParameterNet,
    PoseParameterNet,
    MeshReconstructor,
)
from repro.core.training import Trainer, TrainResult, kfold_by_user
from repro.core.pipeline import MmHand, PipelineTiming

__all__ = [
    "MmSpaceNet",
    "AttentionResidualBlock",
    "TemporalModel",
    "HandJointRegressor",
    "joint_loss_3d",
    "kinematic_loss",
    "combined_loss",
    "finger_straightness",
    "ShapeParameterNet",
    "PoseParameterNet",
    "MeshReconstructor",
    "Trainer",
    "TrainResult",
    "kfold_by_user",
    "MmHand",
    "PipelineTiming",
]
