"""Temporal feature model (paper Sec. IV-A, "Extracting Temporal
Features based on LSTM").

The per-frame feature vectors mmSpaceNet produces form a sequence; an
LSTM consumes it and the final hidden state summarises the hand motion
over the segment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ModelConfig
from repro.errors import ModelError
from repro.nn.layers import Module
from repro.obs import trace
from repro.nn.rnn import LSTM
from repro.nn.tensor import Tensor


class TemporalModel(Module):
    """LSTM over the segment's per-frame features.

    Input ``(B, st, feature_dim)``; output ``(B, lstm_hidden)`` -- the
    final hidden state carrying the segment's temporal context.
    """

    def __init__(
        self, model: ModelConfig, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.model_config = model
        self.lstm = LSTM(model.feature_dim, model.lstm_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[2] != self.model_config.feature_dim:
            raise ModelError(
                f"TemporalModel expects (B, st, {self.model_config.feature_dim}), "
                f"got {x.shape}"
            )
        with trace.span("model.temporal.lstm", batch=x.shape[0]):
            _, (hidden, _) = self.lstm(x)
            return hidden

    def compile_plan(self, builder, reg: int) -> int:
        """Append the LSTM to a :mod:`repro.nn.inference` plan."""
        feature_dim = self.model_config.feature_dim

        def check(shape) -> None:
            if len(shape) != 3 or shape[2] != feature_dim:
                raise ModelError(
                    f"TemporalModel expects (B, st, {feature_dim}), "
                    f"got {shape}"
                )

        reg = builder.check_shape(
            reg, check, spec={"ndim": 3, "eq": [[2, feature_dim]]}
        )
        return builder.lstm(reg, self.lstm)
