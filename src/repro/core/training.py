"""Training loop and cross-validation for the joint regressor.

Follows the paper's recipe: Adam at an initial learning rate of 0.001
with cosine decay, batch size 16, and the combined 3-D + kinematic loss.
Predictions are denormalised inside the graph so both loss terms operate
in metres, keeping the kinematic geometry meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import TrainConfig
from repro.core.losses import combined_loss
from repro.core.regressor import HandJointRegressor
from repro.data.dataset import HandPoseDataset
from repro.data.splits import kfold_user_splits
from repro.errors import DatasetError
from repro.nn.optim import Adam, CosineSchedule
from repro.nn.tensor import Tensor


@dataclass
class TrainResult:
    """Loss history and timing of one training run."""

    total_loss: List[float] = field(default_factory=list)
    l3d: List[float] = field(default_factory=list)
    lkine: List[float] = field(default_factory=list)
    epochs: int = 0
    elapsed_s: float = 0.0

    @property
    def final_loss(self) -> float:
        if not self.total_loss:
            raise DatasetError("no training steps recorded")
        return self.total_loss[-1]


class Trainer:
    """Fits a :class:`HandJointRegressor` on a labelled dataset.

    ``augmentation`` optionally enables train-time radar-cube
    augmentation (gain/noise/range-shift/frame-dropout, see
    :mod:`repro.data.augmentation`), applied per batch with consistent
    label adjustment.
    """

    def __init__(
        self,
        regressor: HandJointRegressor,
        config: Optional[TrainConfig] = None,
        augmentation=None,
    ) -> None:
        self.regressor = regressor
        self.config = config if config is not None else TrainConfig()
        self.augmentation = augmentation

    def _fit_normalization(self, dataset: HandPoseDataset) -> None:
        segments = dataset.segments
        labels = dataset.labels
        self.regressor.set_normalization(
            input_mean=float(segments.mean()),
            input_std=float(segments.std() + 1e-6),
            label_mean=labels.mean(axis=0),
            label_std=labels.std(axis=0) + 1e-6,
        )

    def fit(
        self, dataset: HandPoseDataset, verbose: bool = False
    ) -> TrainResult:
        """Train on ``dataset`` for the configured number of epochs."""
        if len(dataset) < self.config.batch_size:
            raise DatasetError(
                f"dataset ({len(dataset)} segments) smaller than one batch"
            )
        cfg = self.config
        self._fit_normalization(dataset)
        raw_x = dataset.segments
        x = self.regressor.normalize_inputs(raw_x)
        y = dataset.labels.astype(np.float32)
        aug_rng = np.random.default_rng(cfg.seed + 1)
        label_mean = Tensor(self.regressor.label_mean)
        label_std = Tensor(self.regressor.label_std)

        optimizer = Adam(
            self.regressor.parameters(),
            lr=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
        )
        batches_per_epoch = max(len(dataset) // cfg.batch_size, 1)
        schedule = CosineSchedule(
            optimizer, cfg.learning_rate, cfg.epochs * batches_per_epoch
        )
        rng = np.random.default_rng(cfg.seed)
        result = TrainResult()
        start = time.perf_counter()
        self.regressor.train()
        step = 0
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(dataset))
            for b in range(batches_per_epoch):
                idx = order[b * cfg.batch_size : (b + 1) * cfg.batch_size]
                if self.augmentation is not None:
                    from repro.data.augmentation import augment_batch

                    batch_x, batch_y = augment_batch(
                        raw_x[idx], y[idx], aug_rng, self.augmentation
                    )
                    batch_x = self.regressor.normalize_inputs(batch_x)
                else:
                    batch_x, batch_y = x[idx], y[idx]
                pred_norm = self.regressor(Tensor(batch_x))
                pred_m = pred_norm * label_std + label_mean
                total, l3d, lkine = combined_loss(pred_m, batch_y, cfg)
                optimizer.zero_grad()
                total.backward()
                if cfg.grad_clip > 0:
                    optimizer.clip_gradients(cfg.grad_clip)
                optimizer.step()
                schedule.step()
                result.total_loss.append(float(total.data))
                result.l3d.append(float(l3d.data))
                result.lkine.append(float(lkine.data))
                step += 1
                if verbose and step % cfg.log_every == 0:
                    print(
                        f"[train] epoch {epoch + 1}/{cfg.epochs} "
                        f"step {step} loss={result.total_loss[-1]:.4f} "
                        f"l3d={result.l3d[-1]:.4f} "
                        f"lkine={result.lkine[-1]:.4f} "
                        f"lr={schedule.current_lr():.2e}"
                    )
            result.epochs = epoch + 1
        result.elapsed_s = time.perf_counter() - start
        self.regressor.eval()
        return result

    def predict(self, dataset: HandPoseDataset) -> np.ndarray:
        """Predicted joints (metres) for every segment of ``dataset``."""
        return self.regressor.predict(dataset.segments)


def kfold_by_user(
    dataset: HandPoseDataset,
    make_regressor,
    config: Optional[TrainConfig] = None,
    num_folds: int = 5,
    verbose: bool = False,
) -> List[Dict]:
    """5-fold cross-validation by user pairs (paper Sec. VI-A).

    ``make_regressor`` is a zero-argument factory returning a fresh
    :class:`HandJointRegressor` per fold. Returns one record per fold:
    ``{"fold", "test_users", "regressor", "test", "predictions",
    "train_result"}``.
    """
    folds = kfold_user_splits(dataset.user_ids, num_folds)
    records = []
    for fold_id, (train_idx, test_idx, test_users) in enumerate(folds):
        regressor = make_regressor()
        trainer = Trainer(regressor, config)
        train_result = trainer.fit(dataset.subset(train_idx),
                                   verbose=verbose)
        test = dataset.subset(test_idx)
        predictions = trainer.predict(test)
        records.append(
            {
                "fold": fold_id,
                "test_users": test_users,
                "regressor": regressor,
                "test": test,
                "predictions": predictions,
                "train_result": train_result,
            }
        )
        if verbose:
            print(
                f"[kfold] fold {fold_id} users {test_users} "
                f"final loss {train_result.final_loss:.4f}"
            )
    return records
