"""Training loop and cross-validation for the joint regressor.

Follows the paper's recipe: Adam at an initial learning rate of 0.001
with cosine decay, batch size 16, and the combined 3-D + kinematic loss.
Predictions are denormalised inside the graph so both loss terms operate
in metres, keeping the kinematic geometry meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import TrainConfig
from repro.core.losses import combined_loss
from repro.core.regressor import HandJointRegressor
from repro.data.dataset import HandPoseDataset
from repro.data.splits import kfold_user_splits
from repro.errors import CheckpointError, DatasetError
from repro.nn.optim import Adam, CosineSchedule
from repro.nn.tensor import Tensor, no_grad
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.logging import get_logger
from repro.resilience.checkpoint import (
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)


@dataclass
class TrainResult:
    """Loss history and timing of one training run.

    ``epoch_stats`` keeps one record per epoch -- mean loss, final-step
    gradient norm, throughput -- mirroring the ``train.epoch.*``
    instruments published to the global metrics registry.
    """

    total_loss: List[float] = field(default_factory=list)
    l3d: List[float] = field(default_factory=list)
    lkine: List[float] = field(default_factory=list)
    epochs: int = 0
    elapsed_s: float = 0.0
    epoch_stats: List[Dict[str, float]] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.total_loss:
            raise DatasetError("no training steps recorded")
        return self.total_loss[-1]


def _global_grad_norm(parameters) -> float:
    """Global L2 norm across every parameter gradient (0 if none)."""
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(param.grad ** 2))
    return float(np.sqrt(total))


class Trainer:
    """Fits a :class:`HandJointRegressor` on a labelled dataset.

    ``augmentation`` optionally enables train-time radar-cube
    augmentation (gain/noise/range-shift/frame-dropout, see
    :mod:`repro.data.augmentation`), applied per batch with consistent
    label adjustment.
    """

    def __init__(
        self,
        regressor: HandJointRegressor,
        config: Optional[TrainConfig] = None,
        augmentation=None,
    ) -> None:
        self.regressor = regressor
        self.config = config if config is not None else TrainConfig()
        self.augmentation = augmentation

    def _fit_normalization(self, dataset: HandPoseDataset) -> None:
        segments = dataset.segments
        labels = dataset.labels
        self.regressor.set_normalization(
            input_mean=float(segments.mean()),
            input_std=float(segments.std() + 1e-6),
            label_mean=labels.mean(axis=0),
            label_std=labels.std(axis=0) + 1e-6,
        )

    def evaluate(self, dataset: HandPoseDataset) -> float:
        """Mean combined loss over ``dataset`` (no gradients recorded).

        Runs the regressor in eval mode under
        :func:`~repro.nn.tensor.no_grad`, so no autograd graph is built
        and batch norm uses its running statistics; the previous
        train/eval mode is restored afterwards.
        """
        if len(dataset) == 0:
            raise DatasetError("cannot evaluate on an empty dataset")
        cfg = self.config
        x = self.regressor.normalize_inputs(dataset.segments)
        y = dataset.labels.astype(np.float32)
        label_mean = Tensor(self.regressor.label_mean)
        label_std = Tensor(self.regressor.label_std)
        was_training = self.regressor.training
        self.regressor.eval()
        losses: List[float] = []
        weights: List[int] = []
        try:
            with no_grad(), trace.span(
                "train.evaluate", segments=len(dataset)
            ):
                for start in range(0, len(dataset), cfg.batch_size):
                    batch_x = x[start : start + cfg.batch_size]
                    batch_y = y[start : start + cfg.batch_size]
                    pred_m = (
                        self.regressor(Tensor(batch_x)) * label_std
                        + label_mean
                    )
                    total, _, _ = combined_loss(pred_m, batch_y, cfg)
                    losses.append(float(total.data))
                    weights.append(len(batch_x))
        finally:
            if was_training:
                self.regressor.train()
        return float(np.average(losses, weights=weights))

    def fit(
        self,
        dataset: HandPoseDataset,
        verbose: bool = False,
        val_dataset: Optional[HandPoseDataset] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        resume_from: Optional[str] = None,
        fault_injector=None,
    ) -> TrainResult:
        """Train on ``dataset`` for the configured number of epochs.

        ``val_dataset`` enables a per-epoch validation pass: its mean
        combined loss is recorded as ``val_loss`` in ``epoch_stats`` and
        observed on the ``train.epoch.val_loss`` histogram.

        ``checkpoint_dir`` enables crash-safe checkpoints: every
        ``checkpoint_every`` epochs (and always after the final one) an
        atomic ``ckpt-epochNNNN.npz`` archive captures the model,
        optimizer, schedule, RNG states and loss history.
        ``resume_from`` restores such an archive and continues from the
        next epoch with bit-identical loss trajectories versus an
        uninterrupted run of the same seed. ``fault_injector``
        optionally injects batch kills
        (:class:`~repro.resilience.FaultInjector`, chaos tests only).
        """
        if len(dataset) < self.config.batch_size:
            raise DatasetError(
                f"dataset ({len(dataset)} segments) smaller than one batch"
            )
        if checkpoint_every < 1:
            raise CheckpointError("checkpoint_every must be >= 1")
        cfg = self.config
        self._fit_normalization(dataset)

        optimizer = Adam(
            self.regressor.parameters(),
            lr=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
        )
        batches_per_epoch = max(len(dataset) // cfg.batch_size, 1)
        schedule = CosineSchedule(
            optimizer, cfg.learning_rate, cfg.epochs * batches_per_epoch
        )
        rng = np.random.default_rng(cfg.seed)
        aug_rng = np.random.default_rng(cfg.seed + 1)
        result = TrainResult()
        step = 0
        start_epoch = 0
        if resume_from is not None:
            start_epoch, step = self._restore_checkpoint(
                resume_from, optimizer, schedule, rng, aug_rng, result
            )

        raw_x = dataset.segments
        x = self.regressor.normalize_inputs(raw_x)
        y = dataset.labels.astype(np.float32)
        label_mean = Tensor(self.regressor.label_mean)
        label_std = Tensor(self.regressor.label_std)

        logger = get_logger("train")
        start = time.perf_counter()
        self.regressor.train()
        with trace.span(
            "train.fit", epochs=cfg.epochs, segments=len(dataset)
        ):
            for epoch in range(start_epoch, cfg.epochs):
                epoch_start = time.perf_counter()
                grad_norm = 0.0
                order = rng.permutation(len(dataset))
                with trace.span("train.epoch", epoch=epoch + 1):
                    for b in range(batches_per_epoch):
                        if fault_injector is not None:
                            fault_injector.maybe_kill_batch()
                        idx = order[
                            b * cfg.batch_size : (b + 1) * cfg.batch_size
                        ]
                        if self.augmentation is not None:
                            from repro.data.augmentation import augment_batch

                            batch_x, batch_y = augment_batch(
                                raw_x[idx], y[idx], aug_rng,
                                self.augmentation,
                            )
                            batch_x = self.regressor.normalize_inputs(
                                batch_x
                            )
                        else:
                            batch_x, batch_y = x[idx], y[idx]
                        pred_norm = self.regressor(Tensor(batch_x))
                        pred_m = pred_norm * label_std + label_mean
                        total, l3d, lkine = combined_loss(
                            pred_m, batch_y, cfg
                        )
                        optimizer.zero_grad()
                        total.backward()
                        if cfg.grad_clip > 0:
                            grad_norm = optimizer.clip_gradients(
                                cfg.grad_clip
                            )
                        else:
                            grad_norm = _global_grad_norm(
                                optimizer.parameters
                            )
                        optimizer.step()
                        schedule.step()
                        result.total_loss.append(float(total.data))
                        result.l3d.append(float(l3d.data))
                        result.lkine.append(float(lkine.data))
                        step += 1
                        if verbose and step % cfg.log_every == 0:
                            logger.info(
                                "train_step",
                                epoch=epoch + 1,
                                epochs=cfg.epochs,
                                step=step,
                                loss=result.total_loss[-1],
                                l3d=result.l3d[-1],
                                lkine=result.lkine[-1],
                                lr=schedule.current_lr(),
                            )
                result.epochs = epoch + 1
                epoch_s = time.perf_counter() - epoch_start
                segments = batches_per_epoch * cfg.batch_size
                epoch_loss = float(
                    np.mean(result.total_loss[-batches_per_epoch:])
                )
                throughput = segments / epoch_s if epoch_s > 0 else 0.0
                stats = {
                    "epoch": epoch + 1,
                    "loss": epoch_loss,
                    "grad_norm": float(grad_norm),
                    "segments_per_s": throughput,
                    "elapsed_s": epoch_s,
                }
                if val_dataset is not None:
                    val_loss = self.evaluate(val_dataset)
                    stats["val_loss"] = val_loss
                    obs_metrics.histogram("train.epoch.val_loss").observe(
                        val_loss
                    )
                result.epoch_stats.append(stats)
                obs_metrics.histogram("train.epoch.loss").observe(
                    epoch_loss
                )
                obs_metrics.histogram("train.epoch.grad_norm").observe(
                    float(grad_norm)
                )
                obs_metrics.histogram(
                    "train.epoch.segments_per_s"
                ).observe(throughput)
                obs_metrics.gauge("train.epoch.last_loss").set(epoch_loss)
                if checkpoint_dir is not None and (
                    (epoch + 1) % checkpoint_every == 0
                    or epoch + 1 == cfg.epochs
                ):
                    self._write_checkpoint(
                        checkpoint_dir, epoch + 1, optimizer, schedule,
                        rng, aug_rng, result, step,
                    )
                if verbose:
                    logger.info(
                        "train_epoch",
                        epoch=epoch + 1,
                        epochs=cfg.epochs,
                        loss=epoch_loss,
                        grad_norm=float(grad_norm),
                        segments_per_s=throughput,
                        **(
                            {"val_loss": stats["val_loss"]}
                            if val_dataset is not None
                            else {}
                        ),
                    )
        result.elapsed_s = time.perf_counter() - start
        self.regressor.eval()
        return result

    # -- crash-safe checkpoints ----------------------------------------
    def _write_checkpoint(
        self, directory, epoch, optimizer, schedule, rng, aug_rng,
        result, step,
    ) -> str:
        """Atomically persist everything :meth:`fit` needs to resume."""
        extra = {
            "epoch": int(epoch),
            "step": int(step),
            "schedule_step": int(schedule._step),
            "rng_state": rng.bit_generator.state,
            "aug_rng_state": aug_rng.bit_generator.state,
            "total_loss": result.total_loss,
            "l3d": result.l3d,
            "lkine": result.lkine,
            "epoch_stats": result.epoch_stats,
            "seed": int(self.config.seed),
        }
        path = checkpoint_path(directory, epoch)
        save_checkpoint(
            path,
            self.regressor.state_dict(),
            optimizer.state_dict(),
            extra,
        )
        obs_metrics.counter("train.checkpoints").increment()
        obs_metrics.emit("checkpoint", epoch=int(epoch), path=path)
        return path

    def _restore_checkpoint(
        self, resume_from, optimizer, schedule, rng, aug_rng, result
    ):
        """Load a checkpoint into the live training state.

        Returns ``(start_epoch, step)``; the caller continues the epoch
        loop from there with the exact RNG streams the interrupted run
        would have used.
        """
        payload = load_checkpoint(resume_from)
        extra = payload["extra"]
        for key in (
            "epoch", "step", "schedule_step", "rng_state", "aug_rng_state",
        ):
            if key not in extra:
                raise CheckpointError(
                    f"checkpoint {resume_from} lacks {key!r}; "
                    "was it written by Trainer.fit?"
                )
        if extra.get("seed") != self.config.seed:
            raise CheckpointError(
                f"checkpoint was trained with seed {extra.get('seed')}, "
                f"trainer is configured with seed {self.config.seed}"
            )
        self.regressor.load_state_dict(payload["model"])
        if payload["optimizer"] is not None:
            optimizer.load_state_dict(payload["optimizer"])
        schedule._step = int(extra["schedule_step"])
        rng.bit_generator.state = extra["rng_state"]
        aug_rng.bit_generator.state = extra["aug_rng_state"]
        result.total_loss = [float(v) for v in extra.get("total_loss", [])]
        result.l3d = [float(v) for v in extra.get("l3d", [])]
        result.lkine = [float(v) for v in extra.get("lkine", [])]
        result.epoch_stats = list(extra.get("epoch_stats", []))
        result.epochs = int(extra["epoch"])
        return int(extra["epoch"]), int(extra["step"])

    def fit_data_parallel(
        self,
        dataset,
        dp=None,
        verbose: bool = False,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        resume_from: Optional[str] = None,
        fault_injector=None,
    ) -> TrainResult:
        """Data-parallel :meth:`fit` over a campaign or dataset.

        ``dataset`` may be an in-memory :class:`HandPoseDataset` or a
        :class:`~repro.campaign.ShardedDataset`; ``dp`` is a
        :class:`~repro.campaign.DataParallelConfig` fixing the logical
        world size (the gradient math) and the physical process count
        (the execution). See :mod:`repro.campaign.train` for the
        bit-determinism contract.
        """
        if self.augmentation is not None:
            raise DatasetError(
                "augmentation is not supported in data-parallel fit"
            )
        from repro.campaign.train import fit_data_parallel

        return fit_data_parallel(
            self.regressor, dataset, self.config, dp,
            verbose=verbose,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            fault_injector=fault_injector,
        )

    def predict(self, dataset: HandPoseDataset) -> np.ndarray:
        """Predicted joints (metres) for every segment of ``dataset``."""
        return self.regressor.predict(dataset.segments)


def kfold_by_user(
    dataset: HandPoseDataset,
    make_regressor,
    config: Optional[TrainConfig] = None,
    num_folds: int = 5,
    verbose: bool = False,
) -> List[Dict]:
    """5-fold cross-validation by user pairs (paper Sec. VI-A).

    ``make_regressor`` is a zero-argument factory returning a fresh
    :class:`HandJointRegressor` per fold. Returns one record per fold:
    ``{"fold", "test_users", "regressor", "test", "predictions",
    "train_result"}``.
    """
    folds = kfold_user_splits(dataset.user_ids, num_folds)
    records = []
    for fold_id, (train_idx, test_idx, test_users) in enumerate(folds):
        regressor = make_regressor()
        trainer = Trainer(regressor, config)
        train_result = trainer.fit(dataset.subset(train_idx),
                                   verbose=verbose)
        test = dataset.subset(test_idx)
        predictions = trainer.predict(test)
        records.append(
            {
                "fold": fold_id,
                "test_users": test_users,
                "regressor": regressor,
                "test": test,
                "predictions": predictions,
                "train_result": train_result,
            }
        )
        if verbose:
            get_logger("train").info(
                "kfold_fold",
                fold=fold_id,
                test_users=test_users,
                final_loss=train_result.final_loss,
            )
    return records
