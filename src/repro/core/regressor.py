"""End-to-end 3-D hand joint regression network (paper Fig. 5).

Radar cube segment -> mmSpaceNet spatial features -> LSTM temporal
features -> fully-connected layers regressing the 21 joints in 3-D.
Label normalisation statistics live on the module as buffers so saved
weights carry them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import DspConfig, ModelConfig
from repro.core.mmspacenet import MmSpaceNet
from repro.core.temporal import TemporalModel
from repro.errors import InferenceCompileError, ModelError
from repro.obs import trace
from repro.nn.inference import CompiledModel, compile_model
from repro.nn.layers import Linear, Module, ReLU, Sequential
from repro.nn.tensor import Tensor, no_grad


class HandJointRegressor(Module):
    """The full joint-regression network.

    ``forward`` maps normalised radar cube segments ``(B, st, V, D, A)``
    to normalised joint predictions ``(B, 21, 3)``; :meth:`predict`
    additionally applies input standardisation and label denormalisation
    and returns plain numpy joints in metres.
    """

    def __init__(
        self,
        dsp: Optional[DspConfig] = None,
        model: Optional[ModelConfig] = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.dsp = dsp if dsp is not None else DspConfig()
        self.model_config = model if model is not None else ModelConfig()
        rng = np.random.default_rng(seed)
        self.spatial = MmSpaceNet(self.dsp, self.model_config, rng=rng)
        self.temporal = TemporalModel(self.model_config, rng=rng)
        hidden = self.model_config.lstm_hidden
        joints = self.model_config.num_joints
        self.head = Sequential(
            Linear(hidden, hidden, rng=rng),
            ReLU(),
            Linear(hidden, joints * 3, rng=rng),
        )
        # Input/label normalisation, fitted by the trainer.
        self.register_buffer("input_mean", np.zeros(1, dtype=np.float32))
        self.register_buffer("input_std", np.ones(1, dtype=np.float32))
        self.register_buffer(
            "label_mean", np.zeros((joints, 3), dtype=np.float32)
        )
        self.register_buffer(
            "label_std", np.ones((joints, 3), dtype=np.float32)
        )

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 4:
            # Promote a single (st, V, D, A) segment to a batch of one;
            # the serving micro-batcher relies on the batched form.
            x = x.reshape(1, *x.shape)
        with trace.span("model.forward", batch=x.shape[0]):
            features = self.spatial(x)
            context = self.temporal(features)
            out = self.head(context)
            joints = self.model_config.num_joints
            return out.reshape(out.shape[0], joints, 3)

    # ------------------------------------------------------------------
    def compile_plan(self, builder, reg: int) -> int:
        """Append the whole network to a :mod:`repro.nn.inference` plan."""

        def promote(shape):
            return (1, *shape) if len(shape) == 4 else shape

        reg = builder.reshape(reg, promote, spec=("promote4",))
        reg = self.spatial.compile_plan(builder, reg)
        reg = self.temporal.compile_plan(builder, reg)
        reg = builder.sequential(reg, self.head)
        joints = self.model_config.num_joints
        return builder.reshape(
            reg, lambda s: (s[0], joints, 3), spec=("tail", joints, 3)
        )

    def compiled(self) -> Optional[CompiledModel]:
        """The cached autograd-free plan for this network (or ``None``).

        Compiled lazily on first use; a model the compiler cannot handle
        is remembered as uncompilable so every later call falls straight
        through to the eager forward.
        """
        cached = getattr(self, "_compiled_plan", None)
        if cached is not None:
            return cached
        if getattr(self, "_compile_failed", False):
            return None
        try:
            plan = compile_model(self)
        except InferenceCompileError:
            object.__setattr__(self, "_compile_failed", True)
            return None
        object.__setattr__(self, "_compiled_plan", plan)
        return plan

    # ------------------------------------------------------------------
    def set_normalization(
        self,
        input_mean: float,
        input_std: float,
        label_mean: np.ndarray,
        label_std: np.ndarray,
    ) -> None:
        """Record dataset statistics used by :meth:`predict`."""
        if input_std <= 0:
            raise ModelError("input_std must be positive")
        label_std = np.asarray(label_std, dtype=np.float32)
        if np.any(label_std <= 0):
            raise ModelError("label_std entries must be positive")
        self._buffers["input_mean"] = np.array([input_mean], dtype=np.float32)
        self._buffers["input_std"] = np.array([input_std], dtype=np.float32)
        self._buffers["label_mean"] = np.asarray(
            label_mean, dtype=np.float32
        )
        self._buffers["label_std"] = label_std
        for name in ("input_mean", "input_std", "label_mean", "label_std"):
            object.__setattr__(self, name, self._buffers[name])

    def normalize_inputs(self, segments: np.ndarray) -> np.ndarray:
        """Standardise raw cube segments with the fitted statistics."""
        return (
            (segments - float(self.input_mean[0]))
            / float(self.input_std[0])
        ).astype(np.float32)

    def normalize_labels(self, joints: np.ndarray) -> np.ndarray:
        return ((joints - self.label_mean) / self.label_std).astype(
            np.float32
        )

    def denormalize_labels(self, normalised: np.ndarray) -> np.ndarray:
        return normalised * self.label_std + self.label_mean

    # ------------------------------------------------------------------
    def calibrate(
        self, segments: np.ndarray, batch_size: int = 64
    ) -> int:
        """Record activation ranges for int8 from raw cube segments.

        Normalizes ``segments`` exactly like :meth:`predict` and runs
        the compiled plan's calibration pass
        (:meth:`~repro.nn.inference.CompiledModel.calibrate`). Returns
        the number of registers with recorded ranges. Raises
        :class:`~repro.errors.InferenceCompileError` if the model
        cannot be compiled.
        """
        plan = self.compiled()
        if plan is None:
            raise InferenceCompileError(
                "cannot calibrate: model failed to compile"
            )
        segments = np.asarray(segments, dtype=np.float32)
        if segments.ndim == 4:
            segments = segments[None]
        if segments.ndim != 5 or segments.shape[0] == 0:
            raise ModelError(
                f"calibrate expects non-empty (N, st, V, D, A) "
                f"segments, got {segments.shape}"
            )
        batches = (
            self.normalize_inputs(segments[start:start + batch_size])
            for start in range(0, len(segments), batch_size)
        )
        return len(plan.calibrate(batches))

    # ------------------------------------------------------------------
    def predict(
        self,
        segments: np.ndarray,
        batch_size: int = 64,
        use_compiled: bool = True,
        shards: Optional[int] = None,
        precision: str = "float32",
    ) -> np.ndarray:
        """Joints in metres for raw cube segments ``(N, st, V, D, A)``.

        Runs in eval mode without recording gradients. By default each
        batch executes the compiled autograd-free plan
        (:mod:`repro.nn.inference`); ``use_compiled=False`` forces the
        eager forward, and ``shards`` splits each compiled batch across
        that many worker threads (useful for large serving batches).
        ``precision`` selects the compiled plan's execution mode
        (``"float32"`` / ``"float16"`` / ``"int8"``; int8 requires a
        prior :meth:`calibrate`). The eager fallback always runs
        float32.
        """
        segments = np.asarray(segments, dtype=np.float32)
        if segments.ndim == 4:
            segments = segments[None]
        if segments.ndim != 5:
            raise ModelError(
                f"predict expects (N, st, V, D, A) segments, got "
                f"{segments.shape}"
            )
        joints = self.model_config.num_joints
        if segments.shape[0] == 0:
            # An empty micro-batch (e.g. every window was served from
            # the cache) regresses to an empty prediction.
            return np.zeros((0, joints, 3), dtype=np.float32)
        plan = self.compiled() if use_compiled else None
        was_training = self.training
        self.eval()
        outputs = []
        try:
            with no_grad(), trace.span(
                "model.predict", segments=len(segments),
                compiled=plan is not None,
            ):
                for start in range(0, len(segments), batch_size):
                    batch = self.normalize_inputs(
                        segments[start : start + batch_size]
                    )
                    if plan is not None:
                        pred = plan.run(
                            batch, shards=shards, precision=precision
                        )
                    else:
                        pred = self.forward(Tensor(batch)).data
                    outputs.append(self.denormalize_labels(pred))
        finally:
            if was_training:
                self.train()
        return np.concatenate(outputs, axis=0)
