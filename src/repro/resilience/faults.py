"""Deterministic fault injection for chaos-testing the pipeline.

The :class:`FaultInjector` draws every decision from one seeded
``numpy`` generator, so a chaos run is exactly reproducible: the same
seed corrupts the same frames and fails the same forward passes. It
knows three fault surfaces:

* **frames** -- :meth:`corrupt_frame` returns a NaN-poisoned,
  Inf-poisoned, wrong-shaped or dropped variant of an input frame;
* **forward passes** -- :meth:`maybe_delay_forward` /
  :meth:`maybe_fail_forward` stall or abort a model invocation with
  :class:`~repro.errors.InjectedFaultError`, and
  :meth:`maybe_fail_compile` forces the compiled inference plan to
  look broken (:class:`~repro.errors.InferenceCompileError`) so the
  circuit breaker's eager fallback can be exercised;
* **batches** -- :meth:`maybe_kill_batch` aborts a training step,
  simulating a mid-epoch crash for checkpoint/resume tests.

Exposed to operators via ``mmhand serve --chaos`` and to tests via the
``fault_injector`` fixture in ``tests/conftest.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import (
    InferenceCompileError,
    InjectedFaultError,
    ResilienceError,
)

FRAME_MODES = ("nan", "inf", "wrong-shape", "drop")


@dataclass(frozen=True)
class FaultConfig:
    """Rates and shapes of the injected faults (all off by default)."""

    frame_corrupt_rate: float = 0.0
    frame_modes: Tuple[str, ...] = FRAME_MODES
    forward_fail_rate: float = 0.0
    forward_delay_rate: float = 0.0
    forward_delay_s: float = 0.0
    batch_kill_rate: float = 0.0
    compile_fail: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "frame_corrupt_rate", "forward_fail_rate",
            "forward_delay_rate", "batch_kill_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(f"{name} must lie in [0, 1]")
        if self.forward_delay_s < 0:
            raise ResilienceError("forward_delay_s must be >= 0")
        if not self.frame_modes:
            raise ResilienceError("frame_modes must not be empty")
        for mode in self.frame_modes:
            if mode not in FRAME_MODES:
                raise ResilienceError(
                    f"unknown frame mode {mode!r}; "
                    f"choose from {', '.join(FRAME_MODES)}"
                )


class FaultInjector:
    """Seed-driven source of deliberate failures.

    One injector instance has one random stream; interleaving calls
    from several threads is safe but changes which call sees which
    draw, so deterministic experiments should drive it from a single
    thread (the serving loop and the trainer both do).
    """

    def __init__(self, config: Optional[FaultConfig] = None, **overrides):
        if config is None:
            config = FaultConfig(**overrides)
        elif overrides:
            raise ResilienceError(
                "pass either a FaultConfig or keyword overrides, not both"
            )
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def reset(self) -> None:
        """Rewind the random stream and forget the fault counts."""
        self._rng = np.random.default_rng(self.config.seed)
        self.injected = {}

    def stats(self) -> Dict[str, int]:
        return dict(self.injected)

    # -- frame corruption ----------------------------------------------
    def corrupt_frame(
        self, frame: np.ndarray
    ) -> Tuple[Optional[np.ndarray], Optional[str]]:
        """Maybe corrupt one frame.

        Returns ``(frame, None)`` untouched most of the time; with
        probability ``frame_corrupt_rate`` returns a corrupted copy and
        the fault kind, or ``(None, "drop")`` for a dropped frame.
        """
        if self._rng.random() >= self.config.frame_corrupt_rate:
            return frame, None
        mode = str(
            self.config.frame_modes[
                self._rng.integers(len(self.config.frame_modes))
            ]
        )
        self._count(f"frame.{mode}")
        if mode == "drop":
            return None, mode
        corrupted = np.array(frame, copy=True)
        if not np.issubdtype(corrupted.dtype, np.inexact):
            # Integer frames cannot hold NaN/Inf; complex ones can.
            corrupted = corrupted.astype(float)
        if mode == "wrong-shape":
            return corrupted.reshape(-1), mode
        flat = corrupted.reshape(-1)
        # Poison a handful of entries; one is enough to fail a
        # finiteness check, several make the corruption obvious in dumps.
        count = max(1, flat.size // 64)
        index = self._rng.integers(flat.size, size=count)
        flat[index] = np.nan if mode == "nan" else np.inf
        return corrupted, mode

    # -- forward-pass faults -------------------------------------------
    def maybe_delay_forward(self, sleep=time.sleep) -> float:
        """Stall the forward path; returns the injected delay."""
        if (
            self.config.forward_delay_rate > 0
            and self._rng.random() < self.config.forward_delay_rate
        ):
            self._count("forward.delay")
            if self.config.forward_delay_s > 0:
                sleep(self.config.forward_delay_s)
            return self.config.forward_delay_s
        return 0.0

    def maybe_fail_forward(self) -> None:
        """Abort the forward path with an :class:`InjectedFaultError`."""
        if (
            self.config.forward_fail_rate > 0
            and self._rng.random() < self.config.forward_fail_rate
        ):
            self._count("forward.fail")
            raise InjectedFaultError("injected forward-pass failure")

    def maybe_fail_compile(self) -> None:
        """Make the compiled plan look broken (deterministic, not
        rate-driven: a broken plan stays broken)."""
        if self.config.compile_fail:
            self._count("compile.fail")
            raise InferenceCompileError("injected compile failure")

    # -- batch kills ----------------------------------------------------
    def maybe_kill_batch(self) -> None:
        """Abort a training batch, simulating a mid-epoch crash."""
        if (
            self.config.batch_kill_rate > 0
            and self._rng.random() < self.config.batch_kill_rate
        ):
            self._count("batch.kill")
            raise InjectedFaultError("injected batch kill")
