"""Deadline-aware retry with exponential backoff and seeded jitter.

:class:`RetryPolicy` is a frozen value object describing *how* to retry
(attempt count, backoff curve, jitter fraction, overall deadline); the
actual execution lives in :meth:`RetryPolicy.call` so one policy can be
shared by many call sites. Jitter is drawn from a caller-supplied
``numpy`` generator, which keeps chaos experiments deterministic, and
the clock/sleep functions are injectable so tests can prove the
deadline invariant without real waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

import numpy as np

from repro.errors import ResilienceError, RetryExhaustedError


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a flaky call.

    ``max_attempts`` counts the first try: ``max_attempts=1`` means no
    retries. Backoff before attempt ``k`` (0-based retry index) is
    ``base_delay_s * multiplier**k`` capped at ``max_delay_s``, then
    jittered uniformly in ``[delay * (1 - jitter), delay * (1 + jitter)]``.
    ``deadline_s``, when set, bounds the *total* time spent inside
    :meth:`call`: a backoff sleep is truncated so it never crosses the
    deadline, and once the deadline is reached no further attempt starts.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.1
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ResilienceError("base_delay_s must be >= 0")
        if self.max_delay_s < self.base_delay_s:
            raise ResilienceError("max_delay_s must be >= base_delay_s")
        if self.multiplier < 1.0:
            raise ResilienceError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError("jitter must lie in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ResilienceError("deadline_s must be positive")

    # ------------------------------------------------------------------
    def backoff_s(
        self, retry_index: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Jittered sleep before the ``retry_index``-th retry (0-based)."""
        if retry_index < 0:
            raise ResilienceError("retry_index must be >= 0")
        delay = min(
            self.base_delay_s * self.multiplier ** retry_index,
            self.max_delay_s,
        )
        if self.jitter > 0 and rng is not None and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return float(delay)

    def delays(
        self, rng: Optional[np.random.Generator] = None
    ) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` sleeps)."""
        for retry_index in range(self.max_attempts - 1):
            yield self.backoff_s(retry_index, rng)

    # ------------------------------------------------------------------
    def call(
        self,
        fn: Callable,
        *args,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        rng: Optional[np.random.Generator] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        **kwargs,
    ):
        """Run ``fn(*args, **kwargs)``, retrying on ``retry_on``.

        Returns the first successful result. Raises
        :class:`RetryExhaustedError` (with the last failure chained)
        once attempts or the deadline run out; exceptions outside
        ``retry_on`` propagate immediately.
        """
        start = clock()
        deadline = (
            start + self.deadline_s if self.deadline_s is not None else None
        )
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except retry_on as error:  # noqa: PERF203 - retry loop
                last_error = error
                if on_retry is not None:
                    on_retry(attempt, error)
            if attempt == self.max_attempts - 1:
                break
            delay = self.backoff_s(attempt, rng)
            if deadline is not None:
                remaining = deadline - clock()
                if remaining <= 0:
                    raise RetryExhaustedError(
                        f"deadline of {self.deadline_s:.3f}s reached "
                        f"after {attempt + 1} attempt(s)"
                    ) from last_error
                # Never sleep past the deadline; a truncated sleep still
                # grants the final attempt whatever time is left.
                delay = min(delay, remaining)
            if delay > 0:
                sleep(delay)
            if deadline is not None and clock() >= deadline:
                raise RetryExhaustedError(
                    f"deadline of {self.deadline_s:.3f}s reached "
                    f"after {attempt + 1} attempt(s)"
                ) from last_error
        raise RetryExhaustedError(
            f"all {self.max_attempts} attempt(s) failed"
        ) from last_error
