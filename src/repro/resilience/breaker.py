"""Circuit breaker: stop hammering a dependency that keeps failing.

The classic three-state machine:

``closed``
    Calls flow through; consecutive failures are counted and
    ``failure_threshold`` of them trips the breaker open.
``open``
    Calls are refused outright until ``reset_timeout_s`` has elapsed.
``half-open``
    Exactly **one** probe call is admitted (even under concurrent
    callers); its success closes the breaker, its failure re-opens it
    and restarts the timeout.

State changes are published to an optional metrics registry so the
serving layer's Prometheus exposition shows breaker health.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import CircuitOpenError, ResilienceError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

# Numeric encoding for the state gauge (higher is worse).
_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker around a dependency.

    ``allow()`` asks for admission, ``record_success()`` /
    ``record_failure()`` report the outcome, and :meth:`call` bundles
    the three for the common case. ``clock`` is injectable so tests can
    step time explicitly.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        name: str = "breaker",
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ResilienceError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ResilienceError("reset_timeout_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.name = name
        self.metrics = metrics
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opened_total = 0
        self.refused_total = 0
        self.probes_total = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        """Current state, accounting for an elapsed open-timeout
        (callers hold the lock)."""
        if (
            self._state == OPEN
            and self.clock() - self._opened_at >= self.reset_timeout_s
        ):
            return HALF_OPEN
        return self._state

    def _publish(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(f"{self.name}.state").set(
                _STATE_CODES[self._state]
            )

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        if state == OPEN:
            self.opened_total += 1
            self._opened_at = self.clock()
            if self.metrics is not None:
                self.metrics.counter(f"{self.name}.opened").increment()
                self.metrics.events.emit(
                    "breaker_open", breaker=self.name,
                    failures=self._consecutive_failures,
                )
        self._publish()

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """``True`` if a call may proceed right now.

        In half-open state at most one caller gets ``True`` until that
        probe's outcome is reported.
        """
        with self._lock:
            state = self._peek_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                self._transition(HALF_OPEN)
                if self._probe_in_flight:
                    self.refused_total += 1
                    return False
                self._probe_in_flight = True
                self.probes_total += 1
                return True
            self.refused_total += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            state = self._peek_state()
            self._consecutive_failures += 1
            if state == HALF_OPEN:
                # The probe failed: back to open, restart the timeout.
                self._probe_in_flight = False
                self._state = HALF_OPEN  # force the OPEN transition below
                self._transition(OPEN)
            elif (
                state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)

    def call(self, fn: Callable, *args, **kwargs):
        """Guarded invocation: refuse when open, report the outcome."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is open "
                f"(failed {self._consecutive_failures} time(s) in a row)"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Force the breaker back to closed (operator override)."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._transition(CLOSED)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._peek_state(),
                "consecutive_failures": self._consecutive_failures,
                "opened_total": self.opened_total,
                "refused_total": self.refused_total,
                "probes_total": self.probes_total,
            }
