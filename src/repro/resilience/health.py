"""Error budgets and the healthy/degraded/unhealthy ladder.

An :class:`ErrorBudget` watches a sliding window of recent outcomes and
maps the observed failure ratio onto a :class:`HealthState`. The
serving layer keeps one budget per session (quarantined frames and
failed forwards burn it) plus the server-wide aggregate; both are
surfaced in ``InferenceServer.stats()`` and as a Prometheus gauge.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Any, Deque, Dict

from repro.errors import ResilienceError


class HealthState(enum.Enum):
    """The degradation ladder, ordered from best to worst."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    UNHEALTHY = "unhealthy"

    @property
    def code(self) -> int:
        """Numeric encoding for gauges (0 healthy, 1 degraded, 2 not)."""
        return _CODES[self]

    @staticmethod
    def worst(*states: "HealthState") -> "HealthState":
        return max(states, key=lambda s: s.code, default=HealthState.HEALTHY)


_CODES = {
    HealthState.HEALTHY: 0,
    HealthState.DEGRADED: 1,
    HealthState.UNHEALTHY: 2,
}


class ErrorBudget:
    """Sliding-window failure ratio with health thresholds.

    ``min_events`` keeps a single early failure from flapping the state:
    until the window has seen that many outcomes the budget reports
    healthy.
    """

    def __init__(
        self,
        window: int = 64,
        degraded_ratio: float = 0.05,
        unhealthy_ratio: float = 0.25,
        min_events: int = 4,
    ) -> None:
        if window < 1:
            raise ResilienceError("window must be >= 1")
        if not 0.0 < degraded_ratio <= unhealthy_ratio <= 1.0:
            raise ResilienceError(
                "require 0 < degraded_ratio <= unhealthy_ratio <= 1"
            )
        if min_events < 1:
            raise ResilienceError("min_events must be >= 1")
        self.degraded_ratio = degraded_ratio
        self.unhealthy_ratio = unhealthy_ratio
        self.min_events = min_events
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._lock = threading.Lock()
        self.successes_total = 0
        self.failures_total = 0

    def record_success(self) -> None:
        with self._lock:
            self._outcomes.append(True)
            self.successes_total += 1

    def record_failure(self) -> None:
        with self._lock:
            self._outcomes.append(False)
            self.failures_total += 1

    def ratio(self) -> float:
        """Failure ratio over the current window (0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            failures = sum(1 for ok in self._outcomes if not ok)
            return failures / len(self._outcomes)

    def health(self) -> HealthState:
        with self._lock:
            if len(self._outcomes) < self.min_events:
                return HealthState.HEALTHY
            failures = sum(1 for ok in self._outcomes if not ok)
            ratio = failures / len(self._outcomes)
        if ratio >= self.unhealthy_ratio:
            return HealthState.UNHEALTHY
        if ratio >= self.degraded_ratio:
            return HealthState.DEGRADED
        return HealthState.HEALTHY

    def stats(self) -> Dict[str, Any]:
        return {
            "health": self.health().value,
            "error_ratio": self.ratio(),
            "successes_total": self.successes_total,
            "failures_total": self.failures_total,
        }
