"""Crash-safe training checkpoints (write-tmp + fsync + rename).

A checkpoint is one ``.npz`` archive holding the model's full
``state_dict`` (parameters *and* buffers, so normalisation statistics
and batch-norm running stats survive), the optimizer state, and a JSON
metadata blob (epoch/step counters, RNG states, loss history). The
archive is serialised to memory first and published with the classic
atomic-rename dance, so a crash mid-write can never leave a truncated
checkpoint where the resume path would find it — the worst case is a
stale ``*.tmp`` file that :func:`latest_checkpoint` ignores.

No pickle anywhere: arrays travel as plain npz entries and everything
else as JSON, so a checkpoint from an untrusted disk cannot execute
code when loaded.
"""

from __future__ import annotations

import io
import json
import os
import re
import tempfile
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.errors import CheckpointError

FORMAT_VERSION = 1

_CKPT_PATTERN = re.compile(r"^ckpt-epoch(\d+)\.npz$")

PathLike = Union[str, os.PathLike]


def atomic_write_bytes(path: PathLike, payload: bytes) -> str:
    """Durably publish ``payload`` at ``path`` via tmp+fsync+rename."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    # Flush the rename itself so the new directory entry survives a
    # power cut (best-effort: not every platform lets you fsync a dir).
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return path
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def checkpoint_path(directory: PathLike, epoch: int) -> str:
    """Canonical checkpoint file name for one completed epoch."""
    return os.path.join(os.fspath(directory), f"ckpt-epoch{epoch:04d}.npz")


def latest_checkpoint(directory: PathLike) -> Optional[str]:
    """The newest ``ckpt-epoch*.npz`` in ``directory`` (``None`` if
    none); stale ``*.tmp`` leftovers from interrupted writes are
    ignored."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return None
    best_epoch = -1
    best_name = None
    for name in os.listdir(directory):
        match = _CKPT_PATTERN.match(name)
        if match and int(match.group(1)) > best_epoch:
            best_epoch = int(match.group(1))
            best_name = name
    if best_name is None:
        return None
    return os.path.join(directory, best_name)


def save_checkpoint(
    path: PathLike,
    model_state: Dict[str, np.ndarray],
    optimizer_state: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Atomically write one checkpoint archive.

    ``model_state`` is a ``Module.state_dict()``; ``optimizer_state``
    is an ``Optimizer.state_dict()`` (lists of arrays are flattened
    into indexed npz entries, scalars ride in the JSON metadata);
    ``extra`` must be JSON-serialisable.
    """
    arrays: Dict[str, np.ndarray] = {}
    for key, value in model_state.items():
        arrays[f"model:{key}"] = np.asarray(value)
    opt_meta: Dict[str, Any] = {}
    if optimizer_state is not None:
        for key, value in optimizer_state.items():
            if isinstance(value, (list, tuple)) and all(
                isinstance(item, np.ndarray) for item in value
            ):
                opt_meta[f"__slots__:{key}"] = len(value)
                for index, item in enumerate(value):
                    arrays[f"opt:{key}:{index:04d}"] = item
            elif isinstance(value, np.ndarray):
                arrays[f"opt:{key}"] = value
            else:
                opt_meta[key] = value
    meta = {
        "format_version": FORMAT_VERSION,
        "optimizer": opt_meta if optimizer_state is not None else None,
        "extra": extra if extra is not None else {},
    }
    try:
        meta_json = json.dumps(meta)
    except TypeError as error:
        raise CheckpointError(
            f"checkpoint metadata is not JSON-serialisable: {error}"
        ) from error
    arrays["__meta__"] = np.array(meta_json)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())


def load_checkpoint(path: PathLike) -> Dict[str, Any]:
    """Read a checkpoint archive back into its three sections.

    Returns ``{"model": {...}, "optimizer": {... or None}, "extra":
    {...}}``; raises :class:`CheckpointError` on a missing file or an
    archive that is not a checkpoint.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            entries = {key: archive[key] for key in archive.files}
    except (OSError, ValueError) as error:
        raise CheckpointError(
            f"could not read checkpoint {path}: {error}"
        ) from error
    if "__meta__" not in entries:
        raise CheckpointError(
            f"{path} is not a checkpoint archive (missing metadata)"
        )
    meta = json.loads(str(entries.pop("__meta__")))
    if meta.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format "
            f"{meta.get('format_version')!r} in {path}"
        )
    model_state: Dict[str, np.ndarray] = {}
    opt_arrays: Dict[str, Any] = {}
    for key, value in entries.items():
        if key.startswith("model:"):
            model_state[key[len("model:"):]] = value
        elif key.startswith("opt:"):
            opt_arrays[key[len("opt:"):]] = value
    optimizer_state: Optional[Dict[str, Any]] = None
    opt_meta = meta.get("optimizer")
    if opt_meta is not None:
        optimizer_state = {}
        for key, value in opt_meta.items():
            if key.startswith("__slots__:"):
                name = key[len("__slots__:"):]
                count = int(value)
                optimizer_state[name] = [
                    opt_arrays[f"{name}:{index:04d}"]
                    for index in range(count)
                ]
            else:
                optimizer_state[key] = value
        for key, value in opt_arrays.items():
            if ":" not in key:
                optimizer_state[key] = value
    return {
        "model": model_state,
        "optimizer": optimizer_state,
        "extra": meta.get("extra", {}),
    }
