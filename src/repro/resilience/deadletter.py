"""Quarantine for requests the pipeline refused to serve.

Instead of failing a whole micro-batch (or silently discarding the
offender), invalid frames and requests that exhausted their retries are
recorded here: a bounded, thread-safe ring of structured records that
operators can tail from ``InferenceServer.stats()`` or export as JSONL
(the chaos CI job uploads that file as an artifact).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Optional, Union

from repro.errors import ResilienceError


@dataclass
class DeadLetter:
    """One quarantined request: who, where in the pipeline, and why.

    ``payload_hex`` optionally preserves (a truncated prefix of) the
    offending raw bytes -- the network front end records the undecoded
    tail of a poisoned connection here so operators can replay it.
    ``payload_len`` is the *original* byte count before truncation.
    """

    session_id: str
    frame_index: int
    stage: str
    reason: str
    corr_id: str = ""
    ts: float = field(default_factory=time.time)
    payload_hex: str = ""
    payload_len: int = 0


class DeadLetterLog:
    """Bounded ring buffer of :class:`DeadLetter` records.

    ``payload_cap`` bounds how many payload bytes one record may retain;
    a single giant malformed network frame must not be able to bloat
    the ring (or the exported JSONL artifact) by megabytes.
    """

    def __init__(
        self, capacity: int = 1024, payload_cap: int = 256
    ) -> None:
        if capacity < 1:
            raise ResilienceError("dead-letter capacity must be >= 1")
        if payload_cap < 0:
            raise ResilienceError("payload_cap must be >= 0")
        self.capacity = capacity
        self.payload_cap = payload_cap
        self._records: Deque[DeadLetter] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total = 0

    def record(
        self,
        session_id: str,
        frame_index: int,
        stage: str,
        reason: str,
        corr_id: str = "",
        payload: Optional[bytes] = None,
    ) -> DeadLetter:
        payload_hex = ""
        payload_len = 0
        if payload:
            payload_len = len(payload)
            payload_hex = bytes(payload[: self.payload_cap]).hex()
        letter = DeadLetter(
            session_id=session_id,
            frame_index=frame_index,
            stage=stage,
            reason=reason,
            corr_id=corr_id,
            payload_hex=payload_hex,
            payload_len=payload_len,
        )
        with self._lock:
            self._records.append(letter)
            self.total += 1
        return letter

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def tail(self, count: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._records)
        if count is not None:
            records = records[-count:]
        return [asdict(r) for r in records]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": len(self._records),
                "total": self.total,
                "capacity": self.capacity,
            }

    def export_jsonl(self, path: Union[str, os.PathLike]) -> str:
        """Write every retained record as one JSON object per line.

        The entries are snapshotted under the lock *before* any
        serialization happens, so concurrent :meth:`record` calls from
        server threads can neither mutate the deque mid-iteration nor
        tear a half-written record into the artifact. Payload bytes
        were already truncated to ``payload_cap`` at record time, so
        the file size is bounded by ``capacity`` regardless of what
        arrived on the wire.
        """
        with self._lock:
            records = [asdict(r) for r in self._records]
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return str(path)

    # Historical name, kept for callers predating the netfront PR.
    to_jsonl = export_jsonl
