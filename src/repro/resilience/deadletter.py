"""Quarantine for requests the pipeline refused to serve.

Instead of failing a whole micro-batch (or silently discarding the
offender), invalid frames and requests that exhausted their retries are
recorded here: a bounded, thread-safe ring of structured records that
operators can tail from ``InferenceServer.stats()`` or export as JSONL
(the chaos CI job uploads that file as an artifact).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Optional, Union

from repro.errors import ResilienceError


@dataclass
class DeadLetter:
    """One quarantined request: who, where in the pipeline, and why."""

    session_id: str
    frame_index: int
    stage: str
    reason: str
    corr_id: str = ""
    ts: float = field(default_factory=time.time)


class DeadLetterLog:
    """Bounded ring buffer of :class:`DeadLetter` records."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ResilienceError("dead-letter capacity must be >= 1")
        self.capacity = capacity
        self._records: Deque[DeadLetter] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total = 0

    def record(
        self,
        session_id: str,
        frame_index: int,
        stage: str,
        reason: str,
        corr_id: str = "",
    ) -> DeadLetter:
        letter = DeadLetter(
            session_id=session_id,
            frame_index=frame_index,
            stage=stage,
            reason=reason,
            corr_id=corr_id,
        )
        with self._lock:
            self._records.append(letter)
            self.total += 1
        return letter

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def tail(self, count: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._records)
        if count is not None:
            records = records[-count:]
        return [asdict(r) for r in records]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": len(self._records),
                "total": self.total,
                "capacity": self.capacity,
            }

    def to_jsonl(self, path: Union[str, os.PathLike]) -> str:
        """Write every retained record as one JSON object per line."""
        records = self.tail()
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return str(path)
