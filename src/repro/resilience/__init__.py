"""Resilience layer: survive faults instead of crashing on them.

``repro.resilience`` supplies the failure-handling primitives the rest
of the pipeline composes (see DESIGN.md "Resilience"):

* :class:`RetryPolicy` -- deadline-aware exponential backoff with
  seeded jitter;
* :class:`CircuitBreaker` -- closed/open/half-open guard that stops
  calling a dependency which keeps failing (the serving layer wraps
  the compiled inference plan with one and degrades to the eager
  forward);
* :class:`FaultInjector` -- deterministic, seed-driven chaos: corrupt
  or drop frames, delay/fail forward passes, force compile failures,
  kill training batches (``mmhand serve --chaos`` and the
  ``fault_injector`` pytest fixture);
* :class:`ErrorBudget` / :class:`HealthState` -- sliding-window error
  ratios mapped onto the healthy/degraded/unhealthy ladder;
* :class:`DeadLetterLog` -- bounded quarantine for requests the
  pipeline refused to serve, exportable as JSONL;
* :mod:`~repro.resilience.checkpoint` -- crash-safe (atomic
  write-tmp+fsync+rename) training checkpoints with full RNG and
  optimizer state, consumed by ``Trainer.fit(checkpoint_dir=...,
  resume_from=...)``.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.checkpoint import (
    atomic_write_bytes,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.deadletter import DeadLetter, DeadLetterLog
from repro.resilience.faults import FRAME_MODES, FaultConfig, FaultInjector
from repro.resilience.health import ErrorBudget, HealthState
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterLog",
    "ErrorBudget",
    "FRAME_MODES",
    "FaultConfig",
    "FaultInjector",
    "HealthState",
    "RetryPolicy",
    "atomic_write_bytes",
    "checkpoint_path",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
]
