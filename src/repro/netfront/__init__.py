"""``repro.netfront``: the hardened network edge of the serving stack.

An asyncio TCP server (:class:`NetFrontServer`) speaks a
length-prefixed, CRC32-checked binary protocol and bridges client
connections onto the multi-process :class:`~repro.gateway.Gateway`:
radar frames in, pose streams out. Robustness is the design center --
admission control with constant-time token auth and a lockout budget,
per-connection deadlines and an idle reaper, bounded outbound queues
that shed slow consumers, protocol-error quarantine into the dead-letter
log, health-ladder overload shedding, and SIGTERM graceful drain with
full frame accounting. :class:`NetFrontClient` is the blocking
reference client; :class:`ProtocolFuzzer` is the seeded adversary the
chaos tests run against the server.
"""

from repro.netfront.admission import (
    AdmissionConfig,
    AdmissionController,
    reason_name,
)
from repro.netfront.client import NetFrontClient, PoseFrame
from repro.netfront.protocol import (
    DEFAULT_MAX_PAYLOAD,
    HEADER_BYTES,
    MAGIC,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolFuzzer,
    WireMessage,
    decode_all,
    encode_message,
)
from repro.netfront.server import (
    NetFrontConfig,
    NetFrontHandle,
    NetFrontServer,
    serve_until_signal,
    start_in_thread,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "DEFAULT_MAX_PAYLOAD",
    "FrameDecoder",
    "HEADER_BYTES",
    "MAGIC",
    "NetFrontClient",
    "NetFrontConfig",
    "NetFrontHandle",
    "NetFrontServer",
    "PROTOCOL_VERSION",
    "PoseFrame",
    "ProtocolFuzzer",
    "WireMessage",
    "decode_all",
    "encode_message",
    "reason_name",
    "serve_until_signal",
    "start_in_thread",
]
