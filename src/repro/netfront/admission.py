"""Admission control for the network front end.

The gate answers three questions *before* any work is accepted, so an
overloaded or abused server rejects with a typed wire error instead of
accepting-then-starving:

* **connections** -- is there a free connection slot, is the
  auth-failure budget intact, and is the pool healthy enough to take
  new clients at all (``unhealthy`` sheds connections)?
* **sessions** -- is there a free session slot, and is the pool at
  least ``healthy`` (``degraded`` sheds new sessions while existing
  ones keep streaming)?
* **auth** -- does the presented token match, checked in constant time
  (:func:`hmac.compare_digest`) so the comparison leaks no prefix
  information? Failures burn a sliding-window budget; once it is
  exhausted, new connections are rejected outright for the rest of the
  window (``auth_lockout``), which caps brute-force throughput at the
  budget rate no matter how fast the attacker connects.

All deadlines and windows use ``time.monotonic`` -- wall-clock jumps
must never mass-expire admission state.
"""

from __future__ import annotations

import hmac
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.errors import NetFrontError
from repro.netfront.protocol import (
    ERR_AUTH_FAILED,
    ERR_AUTH_LOCKOUT,
    ERR_DRAINING,
    ERR_MAX_CONNECTIONS,
    ERR_MAX_SESSIONS,
    ERR_OVERLOADED,
    ERROR_NAMES,
)
from repro.resilience import HealthState


@dataclass(frozen=True)
class AdmissionConfig:
    """Limits and auth policy of the front door."""

    max_connections: int = 64
    max_sessions: int = 256
    # Shared secret presented in the HELLO payload; None disables auth
    # (loopback benches). Compared in constant time.
    auth_token: Optional[bytes] = None
    # Sliding-window brute-force budget: after this many failed tokens
    # within ``auth_lockout_window_s`` seconds, new connections are
    # refused until the window drains.
    auth_failure_budget: int = 8
    auth_lockout_window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise NetFrontError("max_connections must be >= 1")
        if self.max_sessions < 1:
            raise NetFrontError("max_sessions must be >= 1")
        if self.auth_failure_budget < 1:
            raise NetFrontError("auth_failure_budget must be >= 1")
        if self.auth_lockout_window_s <= 0:
            raise NetFrontError("auth_lockout_window_s must be > 0")


class AdmissionController:
    """Thread-safe admission decisions for connections and sessions.

    ``health_fn`` feeds the overload ladder (normally the gateway's
    merged :meth:`~repro.gateway.Gateway.health`): ``DEGRADED`` rejects
    new sessions, ``UNHEALTHY`` rejects new connections. Decisions
    return ``None`` (admit) or a ``(wire_error_code, reason)`` tuple
    the server turns into a typed ``MSG_ERROR`` frame.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        health_fn: Optional[Callable[[], HealthState]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self._health_fn = health_fn
        self._clock = clock
        self._lock = threading.Lock()
        self._connections = 0
        self._sessions = 0
        self._auth_failures: Deque[float] = deque()
        self.draining = False
        self.counters: Dict[str, int] = {
            "connections_admitted": 0,
            "connections_rejected": 0,
            "sessions_admitted": 0,
            "sessions_rejected": 0,
            "auth_failures": 0,
            "auth_lockouts": 0,
        }

    # -- health ---------------------------------------------------------
    def _health(self) -> HealthState:
        if self._health_fn is None:
            return HealthState.HEALTHY
        try:
            return self._health_fn()
        except Exception:  # pragma: no cover - defensive
            return HealthState.UNHEALTHY

    def _prune_failures_locked(self, now: float) -> None:
        horizon = now - self.config.auth_lockout_window_s
        while self._auth_failures and self._auth_failures[0] < horizon:
            self._auth_failures.popleft()

    def _locked_out(self, now: float) -> bool:
        with self._lock:
            self._prune_failures_locked(now)
            return (
                len(self._auth_failures)
                >= self.config.auth_failure_budget
            )

    # -- connections ----------------------------------------------------
    def admit_connection(self) -> Optional[Tuple[int, str]]:
        """Gate one incoming TCP connection; None admits."""
        now = self._clock()
        if self.draining:
            return self._reject(
                "connections", ERR_DRAINING,
                "server is draining; not accepting connections",
            )
        if self._locked_out(now):
            with self._lock:
                self.counters["auth_lockouts"] += 1
            return self._reject(
                "connections", ERR_AUTH_LOCKOUT,
                f"auth-failure budget "
                f"({self.config.auth_failure_budget} per "
                f"{self.config.auth_lockout_window_s:.0f}s) exhausted",
            )
        if self._health() is HealthState.UNHEALTHY:
            return self._reject(
                "connections", ERR_OVERLOADED,
                "pool is unhealthy; shedding new connections",
            )
        with self._lock:
            if self._connections >= self.config.max_connections:
                self.counters["connections_rejected"] += 1
                return (
                    ERR_MAX_CONNECTIONS,
                    f"connection limit "
                    f"{self.config.max_connections} reached",
                )
            self._connections += 1
            self.counters["connections_admitted"] += 1
        return None

    def release_connection(self) -> None:
        with self._lock:
            self._connections = max(0, self._connections - 1)

    # -- sessions -------------------------------------------------------
    def admit_session(self) -> Optional[Tuple[int, str]]:
        """Gate one OPEN request; None admits."""
        if self.draining:
            return self._reject(
                "sessions", ERR_DRAINING,
                "server is draining; not opening sessions",
            )
        if self._health() is not HealthState.HEALTHY:
            return self._reject(
                "sessions", ERR_OVERLOADED,
                f"pool is {self._health().value}; shedding new sessions",
            )
        with self._lock:
            if self._sessions >= self.config.max_sessions:
                self.counters["sessions_rejected"] += 1
                return (
                    ERR_MAX_SESSIONS,
                    f"session limit {self.config.max_sessions} reached",
                )
            self._sessions += 1
            self.counters["sessions_admitted"] += 1
        return None

    def release_session(self) -> None:
        with self._lock:
            self._sessions = max(0, self._sessions - 1)

    def _reject(
        self, kind: str, code: int, reason: str
    ) -> Tuple[int, str]:
        with self._lock:
            self.counters[f"{kind}_rejected"] += 1
        return code, reason

    # -- auth -----------------------------------------------------------
    def check_token(self, presented: bytes) -> Optional[Tuple[int, str]]:
        """Constant-time token check; None on success.

        Every mismatch is timestamped into the sliding lockout window;
        ``hmac.compare_digest`` runs even when no token is configured so
        the code path's timing does not reveal whether auth is on.
        """
        expected = self.config.auth_token or b""
        ok = hmac.compare_digest(bytes(presented), expected)
        if self.config.auth_token is None:
            return None
        if ok:
            return None
        with self._lock:
            self.counters["auth_failures"] += 1
            self._auth_failures.append(self._clock())
            self._prune_failures_locked(self._clock())
        return ERR_AUTH_FAILED, "authentication token mismatch"

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            recent = len(self._auth_failures)
            return {
                "connections": self._connections,
                "sessions": self._sessions,
                "max_connections": self.config.max_connections,
                "max_sessions": self.config.max_sessions,
                "auth_enabled": self.config.auth_token is not None,
                "recent_auth_failures": recent,
                "draining": self.draining,
                **dict(self.counters),
            }


def reason_name(code: int) -> str:
    """Human-readable slug for a typed wire error code."""
    return ERROR_NAMES.get(code, f"code{code}")
