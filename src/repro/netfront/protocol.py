"""The netfront wire protocol: length-prefixed, CRC-checked frames.

Every message on the wire is one fixed 74-byte header followed by an
optional payload::

    magic(4s) version(u8) msg_type(u8) flags(u16) session_id(32s)
    frame_id(u64) dtype(u8) ndim(u8) shape(4 x u32) payload_len(u32)
    crc32(u32)

The CRC covers the header (with the CRC field zeroed) plus the payload,
so a flipped bit anywhere in the message is detected before any byte is
interpreted. Array payloads (radar frames, poses) carry their dtype and
shape in the header and cross the wire as raw C-contiguous bytes --
nothing is pickled, mirroring the gateway's shared-memory rings.

:class:`FrameDecoder` is the streaming half: feed it arbitrary byte
chunks off a socket and it yields complete :class:`WireMessage`\\ s,
raising :class:`~repro.errors.ProtocolError` with a byte-level reason
the moment the stream is provably corrupt. Decoding is deliberately
paranoid -- magic, version, message type, dtype, ndim, shape/payload
consistency and the length cap are all validated *before* the payload
is trusted, so an attacker-controlled length field cannot make the
server allocate unbounded memory.

:class:`ProtocolFuzzer` is the seeded adversary used by the chaos tests
and the CI fuzz drill: it mutates valid byte streams (truncation, bit
flips, oversized length fields, garbage preambles, random noise) in a
replayable way.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError

MAGIC = b"MMHF"
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("<4sBBH32sQBB4III")
HEADER_BYTES = _HEADER.size  # 74

SESSION_ID_BYTES = 32
MAX_DIMS = 4
# Default cap on one message's payload; a raw complex128 IF frame at
# the full radar config is ~1.5 MB, so 64 MiB leaves generous headroom
# while keeping an attacker-supplied length from ballooning memory.
DEFAULT_MAX_PAYLOAD = 64 * 1024 * 1024

# -- message types ------------------------------------------------------
MSG_HELLO = 1        # client -> server: auth token payload
MSG_WELCOME = 2      # server -> client: handshake accepted (JSON info)
MSG_OPEN = 3         # client -> server: open a session
MSG_SESSION = 4      # server -> client: session granted (id in header)
MSG_FRAME_CUBE = 5   # client -> server: preprocessed (D, R, A) cube
MSG_FRAME_RAW = 6    # client -> server: raw complex IF frame
MSG_POSE = 7         # server -> client: regressed joints array
MSG_ERROR = 8        # server -> client: typed error (code in flags)
MSG_CLOSE = 9        # client -> server: close a session
MSG_CLOSED = 10      # server -> client: session closed
MSG_PING = 11        # either direction: liveness probe
MSG_PONG = 12        # reply to PING
MSG_GOODBYE = 13     # either direction: orderly teardown (JSON stats)

MESSAGE_TYPES = frozenset(range(MSG_HELLO, MSG_GOODBYE + 1))

MESSAGE_NAMES = {
    MSG_HELLO: "hello", MSG_WELCOME: "welcome", MSG_OPEN: "open",
    MSG_SESSION: "session", MSG_FRAME_CUBE: "frame_cube",
    MSG_FRAME_RAW: "frame_raw", MSG_POSE: "pose", MSG_ERROR: "error",
    MSG_CLOSE: "close", MSG_CLOSED: "closed", MSG_PING: "ping",
    MSG_PONG: "pong", MSG_GOODBYE: "goodbye",
}

# -- typed wire error codes (carried in the flags field of MSG_ERROR) ---
ERR_AUTH_REQUIRED = 1    # data message before a successful HELLO
ERR_AUTH_FAILED = 2      # token mismatch
ERR_AUTH_LOCKOUT = 3     # auth-failure budget exhausted
ERR_MAX_CONNECTIONS = 4  # connection admission gate full
ERR_MAX_SESSIONS = 5     # session admission gate full
ERR_OVERLOADED = 6       # health ladder is shedding load
ERR_PROTOCOL = 7         # malformed bytes; connection will close
ERR_DEADLINE = 8         # a read/write/submit deadline expired
ERR_DRAINING = 9         # server is draining; no new work admitted
ERR_UNKNOWN_SESSION = 10  # frame for a session this conn does not own
ERR_BACKPRESSURE = 11    # worker rings stayed full past the deadline

ERROR_NAMES = {
    ERR_AUTH_REQUIRED: "auth_required", ERR_AUTH_FAILED: "auth_failed",
    ERR_AUTH_LOCKOUT: "auth_lockout",
    ERR_MAX_CONNECTIONS: "max_connections",
    ERR_MAX_SESSIONS: "max_sessions", ERR_OVERLOADED: "overloaded",
    ERR_PROTOCOL: "protocol", ERR_DEADLINE: "deadline",
    ERR_DRAINING: "draining", ERR_UNKNOWN_SESSION: "unknown_session",
    ERR_BACKPRESSURE: "backpressure",
}

# GOODBYE flag: the server is draining (SIGTERM) rather than evicting
# this one connection.
FLAG_DRAINING = 1

# -- dtype table --------------------------------------------------------
DTYPE_NONE = 0
_DTYPE_CODES: Dict[int, np.dtype] = {
    1: np.dtype(np.float32),
    2: np.dtype(np.float64),
    3: np.dtype(np.complex64),
    4: np.dtype(np.complex128),
    5: np.dtype(np.int8),
    6: np.dtype(np.float16),
    7: np.dtype(np.uint8),
    8: np.dtype(np.int32),
    9: np.dtype(np.int64),
}
_CODE_FOR_DTYPE = {dt: code for code, dt in _DTYPE_CODES.items()}


def dtype_code(dtype: np.dtype) -> int:
    code = _CODE_FOR_DTYPE.get(np.dtype(dtype))
    if code is None:
        raise ProtocolError(
            f"dtype {np.dtype(dtype)} has no wire encoding"
        )
    return code


@dataclass
class WireMessage:
    """One decoded protocol message."""

    msg_type: int
    flags: int = 0
    session_id: str = ""
    frame_id: int = 0
    payload: bytes = b""
    array: Optional[np.ndarray] = None

    @property
    def type_name(self) -> str:
        return MESSAGE_NAMES.get(self.msg_type, f"type{self.msg_type}")

    def json(self) -> Dict[str, Any]:
        """Decode a JSON payload (WELCOME / ERROR / GOODBYE bodies)."""
        if not self.payload:
            return {}
        try:
            return json.loads(self.payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return {}


def _encode_session_id(session_id: str) -> bytes:
    raw = session_id.encode("utf-8")
    if len(raw) > SESSION_ID_BYTES:
        raise ProtocolError(
            f"session id {session_id!r} exceeds the {SESSION_ID_BYTES}"
            "-byte wire field"
        )
    return raw.ljust(SESSION_ID_BYTES, b"\x00")


def encode_message(
    msg_type: int,
    session_id: str = "",
    frame_id: int = 0,
    payload: Any = None,
    flags: int = 0,
) -> bytes:
    """Serialise one message. ``payload`` may be ``None``, ``bytes``,
    a JSON-able dict, or a numpy array (dtype/shape ride the header)."""
    if msg_type not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {msg_type}")
    dtype = DTYPE_NONE
    shape: Tuple[int, ...] = ()
    if payload is None:
        body = b""
    elif isinstance(payload, (bytes, bytearray, memoryview)):
        body = bytes(payload)
    elif isinstance(payload, np.ndarray):
        if payload.ndim > MAX_DIMS:
            raise ProtocolError(
                f"array payload has {payload.ndim} dims; the wire "
                f"format carries at most {MAX_DIMS}"
            )
        array = np.ascontiguousarray(payload)
        dtype = dtype_code(array.dtype)
        shape = array.shape
        body = array.tobytes()
    elif isinstance(payload, dict):
        body = json.dumps(payload).encode("utf-8")
    else:
        raise ProtocolError(
            f"unsupported payload type {type(payload).__name__}"
        )
    dims = list(shape) + [0] * (MAX_DIMS - len(shape))
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, msg_type, flags,
        _encode_session_id(session_id), frame_id, dtype, len(shape),
        *dims, len(body), 0,
    )
    crc = zlib.crc32(header[:-4] + body) & 0xFFFFFFFF
    return header[:-4] + struct.pack("<I", crc) + body


class FrameDecoder:
    """Incremental decoder: bytes in, validated messages out.

    The decoder never trusts a length before the header's magic,
    version, type, dtype and shape arithmetic have all checked out, and
    never buffers more than ``max_payload`` bytes for one message. Any
    violation raises :class:`ProtocolError` immediately -- the caller
    (one server connection) quarantines the buffered bytes and closes;
    other connections never see the poison.
    """

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD) -> None:
        if max_payload < 1:
            raise ProtocolError("max_payload must be >= 1")
        self.max_payload = max_payload
        self._buffer = bytearray()
        self.messages_decoded = 0
        self.bytes_consumed = 0

    def pending_bytes(self) -> bytes:
        """The undecoded tail (dead-lettered on a protocol error)."""
        return bytes(self._buffer)

    def feed(self, data: bytes) -> List[WireMessage]:
        """Absorb a chunk; return every complete message it finished."""
        self._buffer.extend(data)
        out: List[WireMessage] = []
        while True:
            message = self._try_decode_one()
            if message is None:
                return out
            out.append(message)

    def _fail(self, reason: str) -> None:
        head = bytes(self._buffer[:16]).hex()
        raise ProtocolError(f"{reason} (buffer head: {head or 'empty'})")

    def _try_decode_one(self) -> Optional[WireMessage]:
        if len(self._buffer) < HEADER_BYTES:
            # Even a partial preamble must start with the magic, so
            # garbage is rejected without waiting for a full header.
            if self._buffer and not MAGIC.startswith(
                bytes(self._buffer[:4])
            ):
                self._fail("bad magic")
            return None
        header = bytes(self._buffer[:HEADER_BYTES])
        (magic, version, msg_type, flags, sid_raw, frame_id, dtype,
         ndim, d0, d1, d2, d3, payload_len, crc) = _HEADER.unpack(header)
        if magic != MAGIC:
            self._fail(f"bad magic {magic!r}")
        if version != PROTOCOL_VERSION:
            self._fail(f"unsupported protocol version {version}")
        if msg_type not in MESSAGE_TYPES:
            self._fail(f"unknown message type {msg_type}")
        if payload_len > self.max_payload:
            self._fail(
                f"payload length {payload_len} exceeds the "
                f"{self.max_payload}-byte cap"
            )
        if ndim > MAX_DIMS:
            self._fail(f"ndim {ndim} exceeds {MAX_DIMS}")
        shape = (d0, d1, d2, d3)[:ndim]
        array_dtype: Optional[np.dtype] = None
        if dtype != DTYPE_NONE:
            array_dtype = _DTYPE_CODES.get(dtype)
            if array_dtype is None:
                self._fail(f"unknown dtype code {dtype}")
            expected = int(np.prod(shape, dtype=np.int64)) * (
                array_dtype.itemsize
            )
            if expected != payload_len:
                self._fail(
                    f"shape {shape} x {array_dtype} needs {expected} "
                    f"payload bytes, header claims {payload_len}"
                )
        total = HEADER_BYTES + payload_len
        if len(self._buffer) < total:
            return None
        payload = bytes(self._buffer[HEADER_BYTES:total])
        computed = zlib.crc32(header[:-4] + payload) & 0xFFFFFFFF
        if computed != crc:
            self._fail(
                f"crc mismatch (header {crc:#010x}, "
                f"computed {computed:#010x})"
            )
        del self._buffer[:total]
        self.bytes_consumed += total
        self.messages_decoded += 1
        array = None
        if array_dtype is not None:
            array = np.frombuffer(payload, dtype=array_dtype).reshape(
                shape
            ).copy()
        session_id = sid_raw.rstrip(b"\x00").decode(
            "utf-8", errors="replace"
        )
        return WireMessage(
            msg_type=msg_type, flags=flags, session_id=session_id,
            frame_id=frame_id, payload=payload, array=array,
        )


def decode_all(data: bytes) -> List[WireMessage]:
    """Decode a complete byte string (tests / offline tooling)."""
    decoder = FrameDecoder()
    messages = decoder.feed(data)
    if decoder.pending_bytes():
        raise ProtocolError(
            f"{len(decoder.pending_bytes())} trailing bytes after the "
            "last complete message"
        )
    return messages


@dataclass
class ProtocolFuzzer:
    """Seeded byte-level adversary for the protocol surface.

    Every mutation draws from one ``default_rng(seed)`` stream, so a
    failing corpus replays exactly. ``mutate`` applies one randomly
    chosen corruption to a valid message byte string; ``stream`` yields
    an endless mix of corrupted-valid and pure-garbage chunks sized for
    socket writes.
    """

    seed: int = 0
    rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.rng = np.random.default_rng(self.seed)

    # -- corruption primitives -----------------------------------------
    def truncate(self, data: bytes) -> bytes:
        if len(data) <= 1:
            return b""
        return data[: int(self.rng.integers(1, len(data)))]

    def bit_flip(self, data: bytes) -> bytes:
        if not data:
            return data
        out = bytearray(data)
        for _ in range(int(self.rng.integers(1, 4))):
            index = int(self.rng.integers(0, len(out)))
            out[index] ^= 1 << int(self.rng.integers(0, 8))
        return bytes(out)

    def oversize_length(self, data: bytes) -> bytes:
        """Inflate the payload-length field to a hostile value."""
        if len(data) < HEADER_BYTES:
            return self.bit_flip(data)
        out = bytearray(data)
        huge = int(self.rng.integers(2**28, 2**31))
        struct.pack_into("<I", out, HEADER_BYTES - 8, huge)
        return bytes(out)

    def garbage_preamble(self, data: bytes) -> bytes:
        noise = self.rng.integers(
            0, 256, size=int(self.rng.integers(4, 64)), dtype=np.uint8
        ).tobytes()
        return noise + data

    def garbage(self, size: Optional[int] = None) -> bytes:
        if size is None:
            size = int(self.rng.integers(16, 512))
        return self.rng.integers(
            0, 256, size=size, dtype=np.uint8
        ).tobytes()

    _MUTATIONS = (
        "truncate", "bit_flip", "oversize_length", "garbage_preamble",
    )

    def mutate(self, data: bytes) -> bytes:
        """Apply one randomly chosen corruption to valid bytes."""
        name = self._MUTATIONS[
            int(self.rng.integers(0, len(self._MUTATIONS)))
        ]
        return getattr(self, name)(data)

    def stream(self, template: bytes) -> Iterator[bytes]:
        """Endless corrupted chunks derived from a valid template."""
        while True:
            if self.rng.random() < 0.3:
                yield self.garbage()
            else:
                yield self.mutate(template)
