"""Blocking socket client for the netfront wire protocol.

:class:`NetFrontClient` is the reference client: it speaks the framed
protocol from :mod:`repro.netfront.protocol` over one TCP connection,
handles the HELLO/WELCOME handshake, opens gateway sessions, streams
radar frames and collects the poses the server pushes back. It is
deliberately synchronous -- tests, the CLI and the loopback bench all
drive it from plain threads; the asyncio machinery lives server-side
only.

Server-pushed control frames are folded into the receive path: typed
``MSG_ERROR`` frames are collected on :attr:`errors` (and optionally
raised), a draining ``MSG_GOODBYE`` marks the connection
:attr:`server_draining` with the server's final accounting on
:attr:`goodbye`.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import (
    AdmissionRejectedError,
    AuthError,
    DeadlineExceededError,
    NetFrontError,
    ProtocolError,
)
from repro.netfront.protocol import (
    ERR_AUTH_FAILED,
    ERR_AUTH_LOCKOUT,
    ERR_AUTH_REQUIRED,
    MSG_CLOSE,
    MSG_CLOSED,
    MSG_ERROR,
    MSG_FRAME_CUBE,
    MSG_FRAME_RAW,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_OPEN,
    MSG_PING,
    MSG_PONG,
    MSG_POSE,
    MSG_SESSION,
    MSG_WELCOME,
    FrameDecoder,
    WireMessage,
    encode_message,
)

_AUTH_CODES = (ERR_AUTH_REQUIRED, ERR_AUTH_FAILED, ERR_AUTH_LOCKOUT)


class PoseFrame:
    """One pose pushed by the server."""

    __slots__ = ("session_id", "frame_id", "joints")

    def __init__(
        self, session_id: str, frame_id: int, joints: np.ndarray
    ) -> None:
        self.session_id = session_id
        self.frame_id = frame_id
        self.joints = joints

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoseFrame(session={self.session_id!r}, "
            f"frame={self.frame_id}, joints={self.joints.shape})"
        )


class NetFrontClient:
    """One authenticated connection to a :class:`NetFrontServer`.

    Usage::

        client = NetFrontClient.connect("127.0.0.1", 7700, token="s3cret")
        session = client.open_session()
        client.send_cube(session, cube, frame_id=0)
        poses = client.poll_poses(expect=1, timeout_s=5.0)
        client.close()
    """

    def __init__(self, sock: socket.socket, timeout_s: float) -> None:
        self._sock = sock
        self._timeout_s = timeout_s
        self._decoder = FrameDecoder()
        self._inbox: List[WireMessage] = []
        self.welcome: Dict[str, Any] = {}
        self.goodbye: Optional[Dict[str, Any]] = None
        self.server_draining = False
        self.errors: List[Dict[str, Any]] = []
        self.poses: List[PoseFrame] = []
        self.closed = False

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        token: Optional[str] = None,
        timeout_s: float = 10.0,
    ) -> "NetFrontClient":
        """Dial, authenticate and return a ready client.

        Raises :class:`AuthError` when the token is refused,
        :class:`AdmissionRejectedError` when the admission gate sheds
        the connection, :class:`DeadlineExceededError` on timeout.
        """
        sock = socket.create_connection((host, port), timeout=timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        client = cls(sock, timeout_s)
        payload = token.encode("utf-8") if token else b""
        client._send(encode_message(MSG_HELLO, payload=payload))
        reply = client._next_message(timeout_s)
        if reply is None:
            client.close()
            raise NetFrontError(
                "server closed the connection during the handshake"
            )
        if reply.msg_type == MSG_ERROR:
            body = reply.json()
            client.close()
            if reply.flags in _AUTH_CODES:
                raise AuthError(
                    body.get("message", "authentication failed")
                )
            raise AdmissionRejectedError(
                body.get("message", "connection rejected"),
                code=reply.flags,
            )
        if reply.msg_type != MSG_WELCOME:
            client.close()
            raise ProtocolError(
                f"expected welcome, got {reply.type_name}"
            )
        client.welcome = reply.json()
        return client

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    def __enter__(self) -> "NetFrontClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- session / frame API --------------------------------------------
    def open_session(self, timeout_s: Optional[float] = None) -> str:
        """Open a gateway session; returns its id."""
        self._send(encode_message(MSG_OPEN))
        reply = self._await_type(
            (MSG_SESSION,), timeout_s, raise_errors=True
        )
        return reply.session_id

    def close_session(
        self, session_id: str, timeout_s: Optional[float] = None
    ) -> None:
        self._send(encode_message(MSG_CLOSE, session_id=session_id))
        self._await_type((MSG_CLOSED,), timeout_s, raise_errors=False)

    def send_cube(
        self, session_id: str, cube: np.ndarray, frame_id: int
    ) -> None:
        """Stream one preprocessed (D, R, A) cube."""
        self._send(encode_message(
            MSG_FRAME_CUBE, session_id=session_id, frame_id=frame_id,
            payload=np.ascontiguousarray(cube),
        ))

    def send_raw(
        self, session_id: str, raw: np.ndarray, frame_id: int
    ) -> None:
        """Stream one raw complex IF frame."""
        self._send(encode_message(
            MSG_FRAME_RAW, session_id=session_id, frame_id=frame_id,
            payload=np.ascontiguousarray(raw),
        ))

    def send_bytes(self, data: bytes) -> None:
        """Raw write escape hatch (the fuzzer drives this)."""
        self._send(data)

    def ping(self, timeout_s: Optional[float] = None) -> float:
        """Round-trip one PING; returns the latency in seconds."""
        start = time.monotonic()
        self._send(encode_message(MSG_PING))
        self._await_type((MSG_PONG,), timeout_s, raise_errors=True)
        return time.monotonic() - start

    def poll_poses(
        self,
        expect: int,
        timeout_s: Optional[float] = None,
        raise_errors: bool = False,
    ) -> List[PoseFrame]:
        """Block until ``expect`` poses have arrived (cumulative).

        Returns every pose collected so far; raises
        :class:`DeadlineExceededError` if the deadline passes first.
        Typed errors accumulate on :attr:`errors` (or raise when
        ``raise_errors``).
        """
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self._timeout_s
        )
        while len(self.poses) < expect:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"{len(self.poses)}/{expect} poses before the "
                    "deadline"
                )
            message = self._next_message(remaining)
            if message is None:
                if self.server_draining:
                    break
                raise NetFrontError(
                    "server closed the connection while poses were "
                    f"outstanding ({len(self.poses)}/{expect})"
                )
            self._absorb(message, raise_errors)
        return list(self.poses)

    def drain_messages(self, duration_s: float) -> None:
        """Absorb whatever the server pushes for ``duration_s``."""
        deadline = time.monotonic() + duration_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            try:
                message = self._next_message(remaining)
            except DeadlineExceededError:
                return
            if message is None:
                return
            self._absorb(message, raise_errors=False)

    # -- internals ------------------------------------------------------
    def _absorb(self, message: WireMessage, raise_errors: bool) -> None:
        if message.msg_type == MSG_POSE:
            self.poses.append(PoseFrame(
                message.session_id, message.frame_id, message.array
            ))
        elif message.msg_type == MSG_ERROR:
            body = message.json()
            body.setdefault("code", f"flags{message.flags}")
            body["frame_id"] = message.frame_id
            self.errors.append(body)
            if raise_errors:
                raise NetFrontError(
                    f"server error {body.get('code')}: "
                    f"{body.get('message', '')}"
                )
        elif message.msg_type == MSG_GOODBYE:
            self.server_draining = True
            self.goodbye = message.json()
        # PONG / CLOSED and anything else are absorbed silently here;
        # the explicit waiters match them by type.

    def _await_type(
        self,
        types,
        timeout_s: Optional[float],
        raise_errors: bool,
    ) -> WireMessage:
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self._timeout_s
        )
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"no {types} reply before the deadline"
                )
            message = self._next_message(remaining)
            if message is None:
                raise NetFrontError(
                    "server closed the connection mid-request"
                )
            if message.msg_type in types:
                return message
            if message.msg_type == MSG_ERROR and raise_errors:
                body = message.json()
                raise NetFrontError(
                    f"server error {body.get('code')}: "
                    f"{body.get('message', '')}"
                )
            self._absorb(message, raise_errors=False)

    def _send(self, data: bytes) -> None:
        if self.closed:
            raise NetFrontError("client is closed")
        try:
            self._sock.sendall(data)
        except OSError as error:
            self.closed = True
            raise NetFrontError(f"send failed: {error}") from error

    def _next_message(
        self, timeout_s: float
    ) -> Optional[WireMessage]:
        """Next decoded message, or None on EOF."""
        while not self._inbox:
            self._sock.settimeout(max(0.001, timeout_s))
            try:
                data = self._sock.recv(65536)
            except socket.timeout as error:
                raise DeadlineExceededError(
                    "receive deadline expired"
                ) from error
            except OSError:
                return None
            if not data:
                return None
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.pop(0)
