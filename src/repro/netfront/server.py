"""The asyncio TCP front end: sockets in, ``Gateway.submit`` behind.

:class:`NetFrontServer` is the network edge of the serving stack. Each
client connection speaks the length-prefixed CRC-checked protocol from
:mod:`repro.netfront.protocol`; decoded frames feed the multi-process
:class:`~repro.gateway.Gateway` and regressed poses stream back to the
connection that owns the session. The design rule throughout is that
**every failure mode degrades one connection, never the pool**:

* *admission* -- connections and sessions pass the
  :class:`~repro.netfront.admission.AdmissionController` gates before
  any resource is committed; rejects are typed wire errors
  (``max_connections`` / ``max_sessions`` / ``overloaded`` /
  ``auth_lockout``), not accept-then-starve;
* *auth* -- the HELLO token is checked in constant time under a
  handshake deadline; failures burn the sliding lockout budget;
* *deadlines* -- reads carry an idle deadline and a periodic reaper
  sweeps connections that stall mid-message (slowloss/slowloris
  defence); writes time out so a wedged socket cannot pin its writer
  task; frame submits that cannot clear ring backpressure before their
  deadline are rejected with ``backpressure``;
* *slow consumers* -- each connection owns a bounded outbound pose
  queue; when the client cannot keep up the **oldest** pose is shed
  and counted (``netfront.poses_shed``), the serving pool never
  blocks;
* *protocol errors* -- the offending bytes are dead-lettered with
  connection/session context into the shared
  :class:`~repro.resilience.DeadLetterLog` and only that connection is
  closed;
* *overload* -- the PR 5 health ladder gates admission: ``degraded``
  sheds new sessions, ``unhealthy`` sheds new connections;
* *drain* -- SIGTERM stops the listener, lets in-flight frames flush
  through :meth:`Gateway.drain`, sends every client a GOODBYE frame
  carrying the final accounting, and exits 0 only when every submitted
  frame is acked or dead-lettered.

All internal deadlines use ``time.monotonic``; wall-clock time appears
only in logs.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import (
    GatewayError,
    NetFrontError,
    ProtocolError,
    QueueFullError,
)
from repro.netfront.admission import (
    AdmissionConfig,
    AdmissionController,
    reason_name,
)
from repro.netfront.protocol import (
    DEFAULT_MAX_PAYLOAD,
    ERR_AUTH_REQUIRED,
    ERR_BACKPRESSURE,
    ERR_DEADLINE,
    ERR_DRAINING,
    ERR_OVERLOADED,
    ERR_PROTOCOL,
    ERR_UNKNOWN_SESSION,
    FLAG_DRAINING,
    MSG_CLOSE,
    MSG_CLOSED,
    MSG_ERROR,
    MSG_FRAME_CUBE,
    MSG_FRAME_RAW,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_OPEN,
    MSG_PING,
    MSG_PONG,
    MSG_POSE,
    MSG_SESSION,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    FrameDecoder,
    WireMessage,
    encode_message,
)
from repro.obs.logging import get_logger
from repro.obs.metrics import describe_netfront_metrics

_connection_counter = itertools.count()
_logger = get_logger("netfront")


@dataclass
class NetFrontConfig:
    """Tunables of the network front end."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral; the bound port lands on .port
    auth_token: Optional[str] = None
    max_connections: int = 64
    max_sessions: int = 256
    auth_failure_budget: int = 8
    auth_lockout_window_s: float = 60.0
    # Deadline for the client to complete the HELLO handshake.
    handshake_timeout_s: float = 5.0
    # A connection silent for this long is reaped (slowloris defence).
    idle_timeout_s: float = 30.0
    # Deadline for one socket write to drain before the connection is
    # declared wedged and closed.
    write_timeout_s: float = 5.0
    # How long one frame may wait out ring backpressure before it is
    # rejected with a typed wire error.
    submit_deadline_s: float = 2.0
    # Poses buffered per connection; overflow sheds the OLDEST pose.
    outbound_queue: int = 64
    max_payload_bytes: int = DEFAULT_MAX_PAYLOAD
    reaper_interval_s: float = 0.25
    pump_interval_s: float = 0.001
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.outbound_queue < 1:
            raise NetFrontError("outbound_queue must be >= 1")
        for name in (
            "handshake_timeout_s", "idle_timeout_s", "write_timeout_s",
            "submit_deadline_s", "reaper_interval_s", "pump_interval_s",
            "drain_timeout_s",
        ):
            if getattr(self, name) <= 0:
                raise NetFrontError(f"{name} must be > 0")

    def admission(self) -> AdmissionConfig:
        token = self.auth_token
        return AdmissionConfig(
            max_connections=self.max_connections,
            max_sessions=self.max_sessions,
            auth_token=(
                token.encode("utf-8") if isinstance(token, str) else token
            ),
            auth_failure_budget=self.auth_failure_budget,
            auth_lockout_window_s=self.auth_lockout_window_s,
        )


class _Connection:
    """Server-side state of one client socket."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        outbound_capacity: int,
        max_payload: int,
    ) -> None:
        self.id = f"conn{next(_connection_counter)}"
        self.reader = reader
        self.writer = writer
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if peer else "?"
        self.decoder = FrameDecoder(max_payload=max_payload)
        self.inbox: Deque[WireMessage] = deque()
        self.outbound: Deque[bytes] = deque()
        self.outbound_capacity = outbound_capacity
        self.wakeup = asyncio.Event()
        self.sessions: Set[str] = set()
        # session -> (gateway frame id -> client frame id); the gateway
        # numbers frames densely per session, the client numbers them
        # however it likes -- poses go back under the client's ids.
        self.frame_ids: Dict[str, Dict[int, int]] = {}
        self.submitted: Dict[str, int] = {}
        self.authed = False
        self.closing = False
        self.last_activity = time.monotonic()
        self.opened_at = time.monotonic()
        self.poses_shed = 0
        self.writer_task: Optional[asyncio.Task] = None

    def touch(self) -> None:
        self.last_activity = time.monotonic()

    def enqueue_pose(self, encoded: bytes) -> bool:
        """Queue one pose for the writer task; shed-oldest on overflow.

        Returns False when an old pose was shed to make room.
        """
        shed = False
        if len(self.outbound) >= self.outbound_capacity:
            self.outbound.popleft()
            self.poses_shed += 1
            shed = True
        self.outbound.append(encoded)
        self.wakeup.set()
        return not shed

    def label(self, session_id: str = "") -> str:
        """Dead-letter / log context: connection, peer and session."""
        base = f"{self.id}@{self.peer}"
        return f"{base}/{session_id}" if session_id else base


class NetFrontServer:
    """Asyncio TCP server bridging the wire protocol to a gateway.

    ``backend`` is normally a started-or-not
    :class:`~repro.gateway.Gateway`; anything exposing the same
    ``open_session`` / ``close_session`` / ``submit`` / ``submit_cube``
    / ``pump`` / ``outstanding`` / ``health`` / ``dead_letters`` /
    ``metrics`` surface works (tests substitute lighter fakes). All
    backend calls happen on the server's event loop, matching the
    dispatcher's single-threaded contract.
    """

    def __init__(
        self,
        backend,
        config: Optional[NetFrontConfig] = None,
        health_fn=None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else NetFrontConfig()
        self.metrics = backend.metrics
        describe_netfront_metrics(self.metrics)
        self.dead_letters = backend.dead_letters
        self.admission = AdmissionController(
            self.config.admission(),
            health_fn=(
                health_fn if health_fn is not None else backend.health
            ),
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Dict[str, _Connection] = {}
        self._session_conn: Dict[str, _Connection] = {}
        self._tasks: List[asyncio.Task] = []
        self._stopped = asyncio.Event()
        self.draining = False
        self.drain_report: Optional[Dict[str, Any]] = None
        self.port: Optional[int] = None
        self.host: Optional[str] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "NetFrontServer":
        if getattr(self.backend, "_started", True) is False:
            self.backend.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._pump_loop(), name="netfront-pump"),
            loop.create_task(self._reaper_loop(), name="netfront-reaper"),
        ]
        _logger.info(
            "netfront_listening", host=self.host, port=self.port,
            auth=self.config.auth_token is not None,
            max_connections=self.config.max_connections,
            max_sessions=self.config.max_sessions,
        )
        return self

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger the graceful drain (idempotent)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(
                    signum,
                    lambda s=signum: asyncio.ensure_future(
                        self.begin_drain(signal.Signals(s).name)
                    ),
                )

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def begin_drain(
        self, reason: str = "drain"
    ) -> Dict[str, Any]:
        """SIGTERM path: stop accepting, flush in-flight, say goodbye.

        Idempotent; concurrent calls await the first one's report.
        """
        if self.draining:
            while self.drain_report is None:
                await asyncio.sleep(0.01)
            return self.drain_report
        self.draining = True
        self.admission.draining = True
        _logger.info("netfront_drain_begin", reason=reason)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Flush in-flight frames: keep pumping until the gateway owes
        # nothing (the async equivalent of Gateway.drain, which must
        # not block this event loop).
        deadline = time.monotonic() + self.config.drain_timeout_s
        drain_timed_out = False
        while self.backend.outstanding() > 0:
            self._route_results(self.backend.pump())
            if time.monotonic() >= deadline:
                drain_timed_out = True
                break
            await asyncio.sleep(0.0005)
        # Give every writer a moment to flush queued poses.
        flush_deadline = time.monotonic() + min(
            2.0, self.config.drain_timeout_s
        )
        while (
            any(c.outbound for c in self._connections.values())
            and time.monotonic() < flush_deadline
        ):
            await asyncio.sleep(0.005)
        report = self._accounting()
        report["reason"] = reason
        report["drain_timed_out"] = drain_timed_out
        # Goodbye frame to every client, then teardown.
        goodbye = encode_message(
            MSG_GOODBYE, flags=FLAG_DRAINING, payload=report
        )
        for conn in list(self._connections.values()):
            await self._send_now(conn, goodbye)
            await self._close_connection(conn, "drain")
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self.drain_report = report
        _logger.info("netfront_drain_done", **{
            k: v for k, v in report.items()
            if not isinstance(v, (dict, list))
        })
        self._stopped.set()
        return report

    def _accounting(self) -> Dict[str, Any]:
        """Frame accounting: every submitted frame answered or
        dead-lettered (`lost_clean_frames` must be 0 on a clean
        drain)."""
        counters = self.metrics.snapshot()["counters"]
        submitted = counters.get("netfront.frames_submitted", 0)
        acked = counters.get("gateway.acks", 0)
        dead = self.dead_letters.total
        return {
            "frames_received": counters.get("netfront.frames_in", 0),
            "frames_submitted": submitted,
            "frames_rejected": counters.get(
                "netfront.frames_rejected", 0
            ),
            "frames_acked": acked,
            "dead_letters": dead,
            "lost_clean_frames": max(0, submitted - acked - dead),
            "poses_sent": counters.get("netfront.poses_out", 0),
            "poses_shed": counters.get("netfront.poses_shed", 0),
            "protocol_errors": counters.get(
                "netfront.protocol_errors", 0
            ),
            "worker_restarts": counters.get(
                "gateway.worker_restarts", 0
            ),
        }

    # -- background tasks -----------------------------------------------
    async def _pump_loop(self) -> None:
        """The gateway's event-loop tick: drain poses, route them."""
        while True:
            try:
                results = self.backend.pump()
            except GatewayError:
                results = []
            if results:
                self._route_results(results)
                await asyncio.sleep(0)
            else:
                await asyncio.sleep(self.config.pump_interval_s)

    def _route_results(self, results) -> None:
        for result in results:
            conn = self._session_conn.get(result.session_id)
            if conn is None or conn.closing:
                self.metrics.counter(
                    "netfront.poses_orphaned"
                ).increment()
                continue
            client_fid = conn.frame_ids.get(
                result.session_id, {}
            ).pop(result.frame_index, result.frame_index)
            encoded = encode_message(
                MSG_POSE,
                session_id=result.session_id,
                frame_id=client_fid,
                payload=np.asarray(result.joints, dtype=np.float32),
            )
            if conn.enqueue_pose(encoded):
                self.metrics.counter("netfront.poses_out").increment()
            else:
                # Oldest pose shed for a slow consumer: counted, the
                # pool never blocked on this client.
                self.metrics.counter("netfront.poses_out").increment()
                self.metrics.counter("netfront.poses_shed").increment()

    async def _reaper_loop(self) -> None:
        """Close connections idle past the deadline (slowloris)."""
        while True:
            await asyncio.sleep(self.config.reaper_interval_s)
            now = time.monotonic()
            for conn in list(self._connections.values()):
                if conn.closing:
                    continue
                if now - conn.last_activity > self.config.idle_timeout_s:
                    self.metrics.counter(
                        "netfront.idle_reaped"
                    ).increment()
                    await self._send_error(
                        conn, ERR_DEADLINE,
                        f"idle for more than "
                        f"{self.config.idle_timeout_s:.0f}s",
                    )
                    await self._close_connection(conn, "idle")

    async def _writer_loop(self, conn: _Connection) -> None:
        """Drain one connection's outbound queue under write deadlines."""
        try:
            while not conn.closing:
                if not conn.outbound:
                    conn.wakeup.clear()
                    await conn.wakeup.wait()
                    continue
                encoded = conn.outbound.popleft()
                conn.writer.write(encoded)
                self.metrics.counter("netfront.bytes_out").increment(
                    len(encoded)
                )
                try:
                    await asyncio.wait_for(
                        conn.writer.drain(),
                        timeout=self.config.write_timeout_s,
                    )
                    # A consumer keeping up with its pose stream is
                    # alive even if it never sends -- don't reap it.
                    conn.touch()
                except asyncio.TimeoutError:
                    self.metrics.counter(
                        "netfront.write_deadline_closes"
                    ).increment()
                    await self._close_connection(conn, "write-deadline")
                    return
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = _Connection(
            reader, writer,
            outbound_capacity=self.config.outbound_queue,
            max_payload=self.config.max_payload_bytes,
        )
        rejection = self.admission.admit_connection()
        if rejection is not None:
            code, why = rejection
            self.metrics.counter(
                "netfront.connections_rejected"
            ).increment()
            self.metrics.events.emit(
                "netfront_reject", conn=conn.label(),
                code=reason_name(code), reason=why,
            )
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(encode_message(
                    MSG_ERROR, flags=code,
                    payload={"code": reason_name(code), "message": why},
                ))
                await writer.drain()
            writer.close()
            return
        self._connections[conn.id] = conn
        self.metrics.counter("netfront.connections_opened").increment()
        loop = asyncio.get_running_loop()
        conn.writer_task = loop.create_task(
            self._writer_loop(conn), name=f"netfront-writer-{conn.id}"
        )
        try:
            if not await self._handshake(conn):
                return
            self.metrics.histogram(
                "netfront.connection_setup_s"
            ).observe(time.monotonic() - conn.opened_at)
            await self._serve_connection(conn)
        except ProtocolError as error:
            await self._quarantine(conn, error)
        except (
            ConnectionError, asyncio.IncompleteReadError, OSError
        ):
            self.metrics.counter("netfront.disconnects").increment()
        finally:
            await self._close_connection(conn, "eof")

    async def _read_messages(
        self, conn: _Connection, timeout_s: float
    ) -> Optional[WireMessage]:
        """Next decoded message, or None on clean EOF.

        Raises :class:`ProtocolError` on garbage bytes and
        :class:`asyncio.TimeoutError` when the deadline passes without
        a complete message (a stalled or malicious trickle).
        """
        deadline = time.monotonic() + timeout_s
        while not conn.inbox:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise asyncio.TimeoutError()
            data = await asyncio.wait_for(
                conn.reader.read(65536), timeout=remaining
            )
            if not data:
                return None
            conn.touch()
            self.metrics.counter("netfront.bytes_in").increment(
                len(data)
            )
            conn.inbox.extend(conn.decoder.feed(data))
        return conn.inbox.popleft()

    async def _handshake(self, conn: _Connection) -> bool:
        """HELLO -> WELCOME under the handshake deadline."""
        try:
            message = await self._read_messages(
                conn, self.config.handshake_timeout_s
            )
        except asyncio.TimeoutError:
            self.metrics.counter(
                "netfront.handshake_timeouts"
            ).increment()
            await self._send_error(
                conn, ERR_DEADLINE, "handshake deadline expired"
            )
            return False
        if message is None:
            return False
        if message.msg_type != MSG_HELLO:
            await self._send_error(
                conn, ERR_AUTH_REQUIRED,
                f"expected hello, got {message.type_name}",
            )
            return False
        failure = self.admission.check_token(message.payload)
        if failure is not None:
            code, why = failure
            self.metrics.counter("netfront.auth_failures").increment()
            self.metrics.events.emit(
                "netfront_auth_failure", conn=conn.label(),
            )
            await self._send_error(conn, code, why)
            return False
        conn.authed = True
        await self._send_now(conn, encode_message(
            MSG_WELCOME,
            payload={
                "version": PROTOCOL_VERSION,
                "max_payload": self.config.max_payload_bytes,
                "outbound_queue": self.config.outbound_queue,
                "idle_timeout_s": self.config.idle_timeout_s,
            },
        ))
        return True

    async def _serve_connection(self, conn: _Connection) -> None:
        while not conn.closing and not self.draining:
            try:
                message = await self._read_messages(
                    conn, self.config.idle_timeout_s
                )
            except asyncio.TimeoutError:
                if conn.decoder.pending_bytes():
                    # A partial message stalled past the deadline: the
                    # slowloris trickle pattern. Socket-level activity
                    # does not excuse it -- the *message* never
                    # completed.
                    self.metrics.counter(
                        "netfront.read_deadline_closes"
                    ).increment()
                    await self._send_error(
                        conn, ERR_DEADLINE,
                        "read deadline expired mid-message",
                    )
                    return
                # No partial message: merely quiet. The reaper owns the
                # idle verdict (writes count as liveness there).
                continue
            if message is None:
                return
            if message.msg_type == MSG_GOODBYE:
                return
            await self._dispatch(conn, message)

    async def _dispatch(
        self, conn: _Connection, message: WireMessage
    ) -> None:
        if message.msg_type == MSG_PING:
            await self._send_now(conn, encode_message(
                MSG_PONG, frame_id=message.frame_id
            ))
        elif message.msg_type == MSG_OPEN:
            await self._open_session(conn, message)
        elif message.msg_type in (MSG_FRAME_CUBE, MSG_FRAME_RAW):
            await self._ingest_frame(conn, message)
        elif message.msg_type == MSG_CLOSE:
            self._close_session(conn, message.session_id)
            await self._send_now(conn, encode_message(
                MSG_CLOSED, session_id=message.session_id,
                frame_id=message.frame_id,
            ))
        elif message.msg_type == MSG_HELLO:
            pass  # redundant hello after auth: ignore
        else:
            raise ProtocolError(
                f"client sent server-only message "
                f"{message.type_name}"
            )

    async def _open_session(
        self, conn: _Connection, message: WireMessage
    ) -> None:
        rejection = self.admission.admit_session()
        if rejection is not None:
            code, why = rejection
            self.metrics.counter(
                "netfront.sessions_rejected"
            ).increment()
            await self._send_now(conn, encode_message(
                MSG_ERROR, flags=code, frame_id=message.frame_id,
                payload={"code": reason_name(code), "message": why},
            ))
            return
        try:
            session_id = self.backend.open_session()
        except GatewayError as error:
            self.admission.release_session()
            await self._send_error(conn, ERR_OVERLOADED, str(error))
            return
        conn.sessions.add(session_id)
        conn.frame_ids[session_id] = {}
        conn.submitted[session_id] = 0
        self._session_conn[session_id] = conn
        self.metrics.counter("netfront.sessions_opened").increment()
        await self._send_now(conn, encode_message(
            MSG_SESSION, session_id=session_id,
            frame_id=message.frame_id,
        ))

    def _close_session(self, conn: _Connection, session_id: str) -> None:
        if session_id not in conn.sessions:
            return
        conn.sessions.discard(session_id)
        self._session_conn.pop(session_id, None)
        self.admission.release_session()
        with contextlib.suppress(GatewayError):
            self.backend.close_session(session_id)

    async def _ingest_frame(
        self, conn: _Connection, message: WireMessage
    ) -> None:
        self.metrics.counter("netfront.frames_in").increment()
        if self.draining:
            await self._send_error(
                conn, ERR_DRAINING, "server is draining",
                frame_id=message.frame_id,
            )
            self.metrics.counter("netfront.frames_rejected").increment()
            return
        sid = message.session_id
        if sid not in conn.sessions:
            self.metrics.counter("netfront.frames_rejected").increment()
            await self._send_error(
                conn, ERR_UNKNOWN_SESSION,
                f"connection does not own session {sid!r}",
                frame_id=message.frame_id,
            )
            return
        if message.array is None:
            raise ProtocolError(
                f"frame {message.frame_id} of {sid!r} carried no array "
                "payload"
            )
        submit = (
            self.backend.submit_cube
            if message.msg_type == MSG_FRAME_CUBE
            else self.backend.submit
        )
        deadline = time.monotonic() + self.config.submit_deadline_s
        wait_start = time.monotonic()
        while True:
            try:
                submit(sid, message.array)
                break
            except QueueFullError:
                # Ring backpressure: this connection's task yields (the
                # pool keeps serving everyone else) and retries until
                # its deadline, then the frame is rejected with a typed
                # error instead of wedging the socket.
                if time.monotonic() >= deadline:
                    self.metrics.counter(
                        "netfront.frames_rejected"
                    ).increment()
                    self.metrics.counter(
                        "netfront.submit_deadlines"
                    ).increment()
                    await self._send_error(
                        conn, ERR_BACKPRESSURE,
                        f"worker rings full past the "
                        f"{self.config.submit_deadline_s:.1f}s submit "
                        "deadline",
                        frame_id=message.frame_id,
                    )
                    return
                self._route_results(self.backend.pump())
                await asyncio.sleep(0.0005)
            except GatewayError as error:
                # Session died underneath (e.g. closed during drain).
                self.metrics.counter(
                    "netfront.frames_rejected"
                ).increment()
                await self._send_error(
                    conn, ERR_UNKNOWN_SESSION, str(error),
                    frame_id=message.frame_id,
                )
                return
        self.metrics.histogram("netfront.submit_wait_s").observe(
            time.monotonic() - wait_start
        )
        gateway_fid = conn.submitted[sid]
        conn.submitted[sid] = gateway_fid + 1
        conn.frame_ids[sid][gateway_fid] = message.frame_id
        self.metrics.counter("netfront.frames_submitted").increment()

    # -- failure paths --------------------------------------------------
    async def _quarantine(
        self, conn: _Connection, error: ProtocolError
    ) -> None:
        """Dead-letter the offending bytes; close only this connection."""
        self.metrics.counter("netfront.protocol_errors").increment()
        pending = conn.decoder.pending_bytes()
        session = next(iter(conn.sessions), "")
        self.dead_letters.record(
            session_id=conn.label(session),
            frame_index=conn.decoder.messages_decoded,
            stage="netfront-protocol",
            reason=str(error),
            corr_id=conn.label(session),
            payload=pending,
        )
        self.metrics.events.emit(
            "netfront_protocol_error", conn=conn.label(),
            reason=str(error), pending_bytes=len(pending),
        )
        await self._send_error(conn, ERR_PROTOCOL, str(error))

    async def _send_error(
        self,
        conn: _Connection,
        code: int,
        message: str,
        frame_id: int = 0,
    ) -> None:
        await self._send_now(conn, encode_message(
            MSG_ERROR, flags=code, frame_id=frame_id,
            payload={"code": reason_name(code), "message": message},
        ))

    async def _send_now(self, conn: _Connection, encoded: bytes) -> None:
        """Control-path write, bypassing the pose queue."""
        if conn.closing:
            return
        try:
            conn.writer.write(encoded)
            self.metrics.counter("netfront.bytes_out").increment(
                len(encoded)
            )
            await asyncio.wait_for(
                conn.writer.drain(), timeout=self.config.write_timeout_s
            )
            conn.touch()
        except (
            ConnectionError, asyncio.TimeoutError, OSError
        ):
            pass

    async def _close_connection(
        self, conn: _Connection, why: str
    ) -> None:
        if conn.closing:
            return
        conn.closing = True
        for session_id in list(conn.sessions):
            self._close_session(conn, session_id)
        if conn.writer_task is not None:
            conn.writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await conn.writer_task
        with contextlib.suppress(ConnectionError, OSError):
            conn.writer.close()
        self._connections.pop(conn.id, None)
        self.admission.release_connection()
        self.metrics.counter("netfront.connections_closed").increment()
        if conn.poses_shed:
            self.metrics.events.emit(
                "netfront_close", conn=conn.label(), why=why,
                poses_shed=conn.poses_shed,
            )

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot()
        snapshot["netfront"] = {
            "connections": len(self._connections),
            "draining": self.draining,
            "admission": self.admission.stats(),
            "accounting": self._accounting(),
        }
        return snapshot


# -- synchronous harness -----------------------------------------------
class NetFrontHandle:
    """A server running on a background thread's event loop.

    Gives blocking callers (tests, the CLI bench) a clean surface:
    ``host``/``port`` for clients, :meth:`drain` to trigger the SIGTERM
    path programmatically, :meth:`stop` to tear everything down.
    """

    def __init__(self, server: NetFrontServer, loop, thread) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def host(self) -> str:
        return self.server.host or "127.0.0.1"

    @property
    def port(self) -> int:
        return int(self.server.port or 0)

    def _run(self, coro, timeout_s: float = 60.0):
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout=timeout_s)

    def drain(self, timeout_s: float = 60.0) -> Dict[str, Any]:
        """Run the graceful-drain path; returns the accounting report."""
        return self._run(
            self.server.begin_drain("programmatic"), timeout_s
        )

    def stats(self) -> Dict[str, Any]:
        async def _stats():
            return self.server.stats()
        return self._run(_stats(), 10.0)

    def stop(self, timeout_s: float = 60.0) -> Dict[str, Any]:
        """Drain (if not already) and stop the loop thread."""
        report = self.drain(timeout_s)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=timeout_s)
        return report


def start_in_thread(
    backend,
    config: Optional[NetFrontConfig] = None,
    health_fn=None,
    timeout_s: float = 60.0,
) -> NetFrontHandle:
    """Start a :class:`NetFrontServer` on a dedicated loop thread.

    The backend is started (and later pumped) exclusively on that
    thread, honouring the gateway's single-threaded dispatcher
    contract.
    """
    server = NetFrontServer(backend, config, health_fn=health_fn)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    failure: List[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)

        async def boot():
            try:
                await server.start()
            except BaseException as error:  # pragma: no cover
                failure.append(error)
            finally:
                ready.set()

        loop.create_task(boot())
        loop.run_forever()
        # Drain-cancelled tasks finish; then the loop closes cleanly.
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.close()

    thread = threading.Thread(
        target=runner, name="netfront-server", daemon=True
    )
    thread.start()
    if not ready.wait(timeout_s):
        raise NetFrontError("netfront server failed to start in time")
    if failure:
        raise failure[0]
    return NetFrontHandle(server, loop, thread)


async def serve_until_signal(
    backend, config: Optional[NetFrontConfig] = None
) -> Dict[str, Any]:
    """CLI path: start, install SIGTERM/SIGINT handlers, serve until a
    signal triggers the drain, return the accounting report."""
    server = NetFrontServer(backend, config)
    await server.start()
    server.install_signal_handlers()
    print(
        f"netfront listening on {server.host}:{server.port}",
        flush=True,
    )
    await server.wait_stopped()
    return server.drain_report or {}
