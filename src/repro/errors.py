"""Exception hierarchy for the mmHand reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses partition failures by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class KinematicsError(ReproError):
    """Hand kinematics received inconsistent joint/angle data."""


class MeshError(ReproError):
    """The parametric hand mesh model received invalid parameters."""


class RadarError(ReproError):
    """The radar simulator was asked to synthesise an impossible scene."""


class SignalProcessingError(ReproError):
    """A DSP stage received data with an unexpected shape or content."""


class ModelError(ReproError):
    """A neural-network module was misused (shape mismatch, bad state)."""


class GradientError(ModelError):
    """Backpropagation encountered an invalid graph state."""


class InferenceCompileError(ModelError):
    """A module could not be compiled into an inference plan
    (:mod:`repro.nn.inference`). Callers fall back to the eager
    autograd forward under ``no_grad()``."""


class QuantizationError(InferenceCompileError):
    """A quantized execution mode was misused (e.g. int8 without
    calibration). Subclasses :class:`InferenceCompileError` so serving
    degrades to the eager forward instead of failing the request."""


class SerializationError(ModelError):
    """Weights could not be saved or restored."""


class DatasetError(ReproError):
    """Dataset construction or splitting failed."""


class EvaluationError(ReproError):
    """An experiment harness was configured inconsistently."""


class FrameShapeError(SignalProcessingError):
    """A streaming/serving entry point received a malformed radar frame.

    Raised instead of a bare :class:`ReproError` so online callers can
    distinguish "this one frame was garbage" (drop it, keep the session)
    from configuration-level failures.
    """


class ObservabilityError(ReproError):
    """The observability subsystem (:mod:`repro.obs`) was misused:
    invalid tracer/log configuration or a malformed exporter target."""


class ResilienceError(ReproError):
    """Base class for failures raised by the resilience layer
    (:mod:`repro.resilience`): retry policies, circuit breakers, fault
    injection and crash-safe checkpoints."""


class RetryExhaustedError(ResilienceError):
    """A :class:`~repro.resilience.RetryPolicy` gave up: every attempt
    failed, or the next backoff sleep would have crossed the deadline.
    The last underlying exception is chained as ``__cause__``."""


class CircuitOpenError(ResilienceError):
    """A call was refused because its
    :class:`~repro.resilience.CircuitBreaker` is open (the protected
    dependency failed repeatedly and has not yet proven recovery)."""


class InjectedFaultError(ResilienceError):
    """A deliberate failure raised by the
    :class:`~repro.resilience.FaultInjector` during chaos testing.
    Production code must treat it exactly like a real transient fault."""


class CheckpointError(ResilienceError):
    """A training checkpoint could not be written, read or validated."""


class ServingError(ReproError):
    """Base class for failures inside the inference service runtime
    (:mod:`repro.serving`): sessions, queueing, batching, caching."""


class QueueFullError(ServingError):
    """The bounded request queue is at capacity and the configured
    backpressure policy refused to admit the request (``reject``), or a
    blocking ``put`` timed out before space became available."""


class SessionClosedError(ServingError):
    """A frame was submitted to a session that has already been closed."""


class UnknownSessionError(ServingError):
    """A session id was used that the server never opened (or has
    evicted)."""


class GatewayError(ServingError):
    """Base class for failures inside the multi-process serving tier
    (:mod:`repro.gateway`): shared-memory rings, worker processes and
    the dispatcher."""


class RingLayoutError(GatewayError):
    """A shared-memory ring was created or attached with an impossible
    geometry (slot too small for the payload, session id too long,
    corrupt slot header)."""


class WorkerCrashedError(GatewayError):
    """A gateway worker process died (non-zero exit code or stale
    heartbeat) and could not be restarted."""


class NetFrontError(ServingError):
    """Base class for failures inside the network front end
    (:mod:`repro.netfront`): the wire protocol, admission control and
    the asyncio server/client."""


class ProtocolError(NetFrontError):
    """A byte stream violated the netfront wire protocol (bad magic,
    unknown version or message type, impossible length, CRC mismatch).
    The server dead-letters the offending bytes and closes only the
    connection that sent them."""


class AuthError(NetFrontError):
    """A connection failed token authentication, exceeded the
    auth-failure budget, or tried to use the data path before
    completing the handshake."""


class AdmissionRejectedError(NetFrontError):
    """The admission gate refused a connection or session (connection/
    session limit reached, or the overload ladder is shedding). Carries
    the typed wire error code the server sent."""

    def __init__(self, message: str, code: int = 0) -> None:
        super().__init__(message)
        self.code = code


class DeadlineExceededError(NetFrontError):
    """A per-connection read/write/submit deadline expired."""


class CampaignError(ReproError):
    """A failure inside the campaign-scale data engine
    (:mod:`repro.campaign`): sharded generation, the streaming sharded
    dataset, or data-parallel training (gradient bus / rank workers)."""
