"""Linear blend skinning (the ``W(.)`` of paper Eq. 10).

Given per-joint axis-angle rotations along the kinematic tree, compute the
posed global joint transforms and deform the template vertices as a
weighted blend of per-joint rigid motions -- the standard LBS formulation
MANO (and SMPL before it) uses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import MeshError
from repro.hand.joints import JOINT_PARENTS, NUM_JOINTS
from repro.mano.rotations import axis_angle_to_matrix


def global_transforms(
    theta: np.ndarray, rest_joints: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Forward kinematics over the joint tree.

    Parameters
    ----------
    theta:
        (21, 3) axis-angle rotation of every joint relative to its parent
        frame; the wrist entry is the global hand rotation.
    rest_joints:
        (21, 3) rest-pose joint locations.

    Returns
    -------
    (rotations, positions):
        ``rotations`` (21, 3, 3) global joint rotations and ``positions``
        (21, 3) posed global joint locations.
    """
    theta = np.asarray(theta, dtype=float)
    rest_joints = np.asarray(rest_joints, dtype=float)
    if theta.shape != (NUM_JOINTS, 3):
        raise MeshError(f"theta must have shape (21, 3), got {theta.shape}")
    if rest_joints.shape != (NUM_JOINTS, 3):
        raise MeshError(
            f"rest_joints must have shape (21, 3), got {rest_joints.shape}"
        )
    local = axis_angle_to_matrix(theta)
    rotations = np.empty((NUM_JOINTS, 3, 3))
    positions = np.empty((NUM_JOINTS, 3))
    rotations[0] = local[0]
    positions[0] = rest_joints[0]
    for joint in range(1, NUM_JOINTS):
        parent = JOINT_PARENTS[joint]
        rotations[joint] = rotations[parent] @ local[joint]
        offset = rest_joints[joint] - rest_joints[parent]
        positions[joint] = positions[parent] + rotations[parent] @ offset
    return rotations, positions


def linear_blend_skinning(
    vertices: np.ndarray,
    weights: np.ndarray,
    theta: np.ndarray,
    rest_joints: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deform ``vertices`` by blended per-joint rigid transforms.

    Every vertex moves as ``sum_j w_vj * (R_j (v - j_j^rest) + j_j^posed)``
    where ``R_j`` is joint j's global rotation. Returns the posed vertices
    (V, 3) and posed joints (21, 3).
    """
    vertices = np.asarray(vertices, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if vertices.ndim != 2 or vertices.shape[1] != 3:
        raise MeshError("vertices must have shape (V, 3)")
    if weights.shape != (len(vertices), NUM_JOINTS):
        raise MeshError("weights must have shape (V, 21)")
    rotations, positions = global_transforms(theta, rest_joints)

    # (J, V, 3): each vertex rigidly transformed by each joint.
    centred = vertices[None, :, :] - rest_joints[:, None, :]
    rotated = np.einsum("jab,jvb->jva", rotations, centred)
    rigid = rotated + positions[:, None, :]
    posed = np.einsum("vj,jva->va", weights, rigid)
    return posed, positions
