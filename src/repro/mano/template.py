"""Procedural hand template mesh.

Real MANO ships a scanned, learned template; those assets are not
redistributable, so this module *generates* an equivalent low-poly hand
mesh from a :class:`~repro.hand.shape.HandShape`: capsule-like tubes along
every phalange, a two-layer palm slab and a thumb metacarpal, each vertex
carrying linear-blend-skinning weights over the 21 joints.

The template lives in the hand frame (wrist at the origin, fingers +y,
palm facing -z) in its rest pose (all joint angles zero), which is the
"standard template T" (T-pose) of paper Eq. (11).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import MeshError
from repro.hand.joints import FINGER_CHAINS, FINGERS, NUM_JOINTS, WRIST
from repro.hand.kinematics import HandPose, forward_kinematics
from repro.hand.shape import HandShape

#: Ring vertex count of every finger tube cross-section.
RING_VERTS = 8
#: Stations (fractions along each phalange) where rings are placed.
STATIONS = (0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0)

#: Base tube radii per finger (metres, before shape scaling).
_FINGER_RADII: Dict[str, float] = {
    "thumb": 0.0105,
    "index": 0.0085,
    "middle": 0.0088,
    "ring": 0.0082,
    "pinky": 0.0070,
}


@dataclass(frozen=True)
class TemplateParams:
    """Shape knobs of the procedural template.

    Perturbing one knob at a time yields the analytic shape blend-shape
    basis (see :mod:`repro.mano.blend`). All knobs are multiplicative
    around 1.0 except ``knuckle_bump`` which is additive around 0.0.
    """

    uniform_scale: float = 1.0
    finger_length: float = 1.0
    palm_width: float = 1.0
    thickness: float = 1.0
    thumb_scale: float = 1.0
    pinky_scale: float = 1.0
    tube_radius: float = 1.0
    palm_length: float = 1.0
    distal_taper: float = 1.0
    knuckle_bump: float = 0.0

    def knob_names(self) -> Tuple[str, ...]:
        return (
            "uniform_scale",
            "finger_length",
            "palm_width",
            "thickness",
            "thumb_scale",
            "pinky_scale",
            "tube_radius",
            "palm_length",
            "distal_taper",
            "knuckle_bump",
        )

    def perturbed(self, knob: str, delta: float) -> "TemplateParams":
        if knob not in self.knob_names():
            raise MeshError(f"unknown template knob {knob!r}")
        return replace(self, **{knob: getattr(self, knob) + delta})


@dataclass
class HandTemplate:
    """The rest-pose hand mesh plus everything skinning needs.

    Attributes
    ----------
    vertices:
        (V, 3) rest-pose vertex positions in the hand frame.
    faces:
        (F, 3) integer triangle indices.
    weights:
        (V, 21) linear-blend-skinning weights; each row sums to 1.
    rest_joints:
        (21, 3) rest-pose joint locations (the ``J(beta)`` of Eq. 10).
    vertex_joint:
        (V,) dominant joint per vertex, used by pose blend shapes and the
        radar scatterer sampler.
    """

    vertices: np.ndarray
    faces: np.ndarray
    weights: np.ndarray
    rest_joints: np.ndarray
    vertex_joint: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=float)
        self.faces = np.asarray(self.faces, dtype=int)
        self.weights = np.asarray(self.weights, dtype=float)
        self.rest_joints = np.asarray(self.rest_joints, dtype=float)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise MeshError("vertices must have shape (V, 3)")
        if self.weights.shape != (len(self.vertices), NUM_JOINTS):
            raise MeshError("weights must have shape (V, 21)")
        if self.rest_joints.shape != (NUM_JOINTS, 3):
            raise MeshError("rest_joints must have shape (21, 3)")
        if self.faces.size and (
            self.faces.min() < 0 or self.faces.max() >= len(self.vertices)
        ):
            raise MeshError("face indices out of range")
        sums = self.weights.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-6):
            raise MeshError("skinning weights must sum to 1 per vertex")
        if self.vertex_joint is None:
            self.vertex_joint = np.argmax(self.weights, axis=1)

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_faces(self) -> int:
        return len(self.faces)


def _ring_frame(direction: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Two unit vectors orthogonal to ``direction`` (tube cross-section)."""
    direction = direction / np.linalg.norm(direction)
    helper = np.array([0.0, 0.0, 1.0])
    if abs(np.dot(direction, helper)) > 0.95:
        helper = np.array([1.0, 0.0, 0.0])
    u = np.cross(direction, helper)
    u /= np.linalg.norm(u)
    v = np.cross(direction, u)
    return u, v


def _tube_ring(
    centre: np.ndarray, u: np.ndarray, v: np.ndarray, radius: float
) -> np.ndarray:
    angles = 2.0 * np.pi * np.arange(RING_VERTS) / RING_VERTS
    return centre + radius * (
        np.cos(angles)[:, None] * u + np.sin(angles)[:, None] * v
    )


def _quad_faces(ring_a: int, ring_b: int) -> List[Tuple[int, int, int]]:
    """Triangles connecting two consecutive rings given start indices."""
    faces = []
    for k in range(RING_VERTS):
        a0 = ring_a + k
        a1 = ring_a + (k + 1) % RING_VERTS
        b0 = ring_b + k
        b1 = ring_b + (k + 1) % RING_VERTS
        faces.append((a0, b0, b1))
        faces.append((a0, b1, a1))
    return faces


def build_template(
    shape: HandShape, params: TemplateParams = TemplateParams()
) -> HandTemplate:
    """Generate the rest-pose hand mesh for ``shape`` under ``params``.

    Deterministic: the same inputs give an identical mesh, and any
    ``params`` perturbation preserves topology (vertex and face counts),
    which the shape blend-shape basis relies on.
    """
    rest_pose = HandPose(wrist_position=np.zeros(3), orientation=np.eye(3))
    rest_joints = forward_kinematics(shape, rest_pose)

    verts: List[np.ndarray] = []
    weights: List[np.ndarray] = []
    faces: List[Tuple[int, int, int]] = []

    def add_vertex(position: np.ndarray, weight: Dict[int, float]) -> int:
        w = np.zeros(NUM_JOINTS)
        for joint, value in weight.items():
            w[joint] = value
        total = w.sum()
        if total <= 0:
            raise MeshError("vertex weights must be positive")
        verts.append(np.asarray(position, dtype=float))
        weights.append(w / total)
        return len(verts) - 1

    # ------------------------------------------------------------------
    # Finger tubes: one capsule-like tube per phalange, ring weights
    # blended across joints for smooth bending.
    # ------------------------------------------------------------------
    for finger in FINGERS:
        chain = FINGER_CHAINS[finger]
        finger_scale = 1.0
        if finger == "thumb":
            finger_scale *= params.thumb_scale
        if finger == "pinky":
            finger_scale *= params.pinky_scale
        base_radius = _FINGER_RADII[finger] * params.tube_radius
        root = rest_joints[chain[0]]

        for seg in range(3):
            pa, pb = chain[seg], chain[seg + 1]
            length_knob = params.finger_length * finger_scale
            if seg == 2:
                length_knob *= params.distal_taper
            a = root + (rest_joints[pa] - root) * length_knob
            b = root + (rest_joints[pb] - root) * length_knob
            direction = b - a
            u, v = _ring_frame(direction)
            radius0 = base_radius * (1.0 - 0.12 * seg)
            radius1 = base_radius * (1.0 - 0.12 * (seg + 1))
            ring_starts = []
            for t in STATIONS:
                centre = a + t * direction
                radius = radius0 + t * (radius1 - radius0)
                if t == 0.0 and seg == 0:
                    radius *= 1.0 + params.knuckle_bump
                ring = _tube_ring(centre, u, v, radius)
                if t < 0.2:
                    parent = WRIST if seg == 0 else chain[seg - 1]
                    weight = {parent: 0.35, pa: 0.65}
                elif t > 0.8:
                    weight = {pa: 0.6, pb: 0.4}
                else:
                    weight = {pa: 1.0}
                start = len(verts)
                for p in ring:
                    add_vertex(p, weight)
                ring_starts.append(start)
            for r0, r1 in zip(ring_starts, ring_starts[1:]):
                faces.extend(_quad_faces(r0, r1))

        # Fingertip cap vertex, driven by the DIP joint (the last phalange
        # DIP->TIP is the distal bone, rotated at the DIP joint).
        tip = root + (rest_joints[chain[3]] - root) * (
            params.finger_length * finger_scale * params.distal_taper
        ) + np.array([0.0, 0.004, 0.0])
        tip_index = add_vertex(tip, {chain[2]: 1.0})
        last_ring = tip_index - RING_VERTS
        for k in range(RING_VERTS):
            a0 = last_ring + k
            a1 = last_ring + (k + 1) % RING_VERTS
            faces.append((a0, a1, tip_index))

    # ------------------------------------------------------------------
    # Palm slab: two-layer grid from the wrist to the knuckle line, rigid
    # with the wrist (the paper notes the palm lacks flexible deformation)
    # apart from a soft blend at the knuckle edge.
    # ------------------------------------------------------------------
    knuckles = [rest_joints[FINGER_CHAINS[f][0]] for f in FINGERS[1:]]
    wrist_corners = [
        np.array([0.030, 0.0, 0.0]),
        np.array([0.012, -0.008, 0.0]),
        np.array([-0.008, -0.008, 0.0]),
        np.array([-0.028, 0.002, 0.0]),
    ]
    rows, cols = 5, 4
    half_thick = 0.5 * shape.palm_thickness_m * params.thickness
    layer_starts = []
    for layer, z_offset in ((0, -half_thick), (1, half_thick)):
        start = len(verts)
        layer_starts.append(start)
        for r in range(rows):
            t = r / (rows - 1)
            for c in range(cols):
                bottom = wrist_corners[c]
                top = knuckles[c] * np.array(
                    [params.palm_width, params.palm_length, 1.0]
                )
                p = (1.0 - t) * bottom + t * top + np.array(
                    [0.0, 0.0, z_offset]
                )
                mcp = FINGER_CHAINS[FINGERS[1 + c]][0]
                if t > 0.8:
                    weight = {WRIST: 0.75, mcp: 0.25}
                else:
                    weight = {WRIST: 1.0}
                add_vertex(p, weight)
        for r in range(rows - 1):
            for c in range(cols - 1):
                i00 = start + r * cols + c
                i01 = i00 + 1
                i10 = i00 + cols
                i11 = i10 + 1
                if layer == 0:
                    faces.append((i00, i10, i11))
                    faces.append((i00, i11, i01))
                else:
                    faces.append((i00, i11, i10))
                    faces.append((i00, i01, i11))

    # Side walls stitching the two palm layers along the outer columns.
    front, back = layer_starts
    for r in range(rows - 1):
        for c in (0, cols - 1):
            f0 = front + r * cols + c
            f1 = f0 + cols
            b0 = back + r * cols + c
            b1 = b0 + cols
            faces.append((f0, b0, b1))
            faces.append((f0, b1, f1))

    # ------------------------------------------------------------------
    # Thumb metacarpal: short tube from the wrist to the thumb root.
    # ------------------------------------------------------------------
    thumb_root = rest_joints[FINGER_CHAINS["thumb"][0]]
    u, v = _ring_frame(thumb_root)
    radius = _FINGER_RADII["thumb"] * 1.25 * params.tube_radius
    ring_starts = []
    for t in (0.25, 0.65, 1.0):
        ring = _tube_ring(t * thumb_root, u, v, radius * (1.1 - 0.2 * t))
        weight = (
            {WRIST: 1.0}
            if t < 0.9
            else {WRIST: 0.5, FINGER_CHAINS["thumb"][0]: 0.5}
        )
        start = len(verts)
        for p in ring:
            add_vertex(p, weight)
        ring_starts.append(start)
    for r0, r1 in zip(ring_starts, ring_starts[1:]):
        faces.extend(_quad_faces(r0, r1))

    scale = params.uniform_scale
    return HandTemplate(
        vertices=np.array(verts) * scale,
        faces=np.array(faces, dtype=int),
        weights=np.array(weights),
        rest_joints=rest_joints * scale,
    )
