"""Shape and pose blend shapes (the ``Bs(beta)`` and ``Bp(theta)`` of
paper Eq. 11).

Real MANO learns these from hand scans; here the *shape* basis is derived
analytically by finite-differencing the procedural template along its ten
shape knobs (scale, finger length, palm width, ...), and the *pose* blend
offsets add a small palmar bulge near bending joints, the dominant soft-
tissue effect LBS alone misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import MeshError
from repro.hand.joints import JOINT_PARENTS, NUM_JOINTS
from repro.hand.shape import HandShape
from repro.mano.template import HandTemplate, TemplateParams, build_template

#: Finite-difference step per shape knob. One unit of beta moves the knob
#: by this amount, so beta ~ N(0, 1) spans realistic hand variation.
_KNOB_DELTAS: Tuple[float, ...] = (
    0.05,  # uniform_scale
    0.06,  # finger_length
    0.06,  # palm_width
    0.10,  # thickness
    0.08,  # thumb_scale
    0.08,  # pinky_scale
    0.12,  # tube_radius
    0.05,  # palm_length
    0.08,  # distal_taper
    0.15,  # knuckle_bump
)

NUM_SHAPE_PARAMS = len(_KNOB_DELTAS)


@dataclass
class ShapeBasis:
    """Linear shape space around a base template.

    ``vertices(beta) = base.vertices + sum_k beta_k * vertex_dirs[k]`` and
    likewise for joints -- the ``T + Bs(beta)`` and ``J(beta)`` pieces of
    Eq. (10)/(11).
    """

    base: HandTemplate
    vertex_dirs: np.ndarray  # (10, V, 3)
    joint_dirs: np.ndarray  # (10, 21, 3)

    def __post_init__(self) -> None:
        expected_v = (NUM_SHAPE_PARAMS, self.base.num_vertices, 3)
        expected_j = (NUM_SHAPE_PARAMS, NUM_JOINTS, 3)
        if self.vertex_dirs.shape != expected_v:
            raise MeshError(
                f"vertex_dirs must have shape {expected_v}, got "
                f"{self.vertex_dirs.shape}"
            )
        if self.joint_dirs.shape != expected_j:
            raise MeshError(
                f"joint_dirs must have shape {expected_j}, got "
                f"{self.joint_dirs.shape}"
            )

    def shaped_vertices(self, beta: np.ndarray) -> np.ndarray:
        """Template vertices deformed by shape coefficients ``beta``."""
        beta = self._check_beta(beta)
        return self.base.vertices + np.tensordot(
            beta, self.vertex_dirs, axes=1
        )

    def shaped_joints(self, beta: np.ndarray) -> np.ndarray:
        """Rest joint locations ``J(beta)`` for shape ``beta``."""
        beta = self._check_beta(beta)
        return self.base.rest_joints + np.tensordot(
            beta, self.joint_dirs, axes=1
        )

    @staticmethod
    def _check_beta(beta: np.ndarray) -> np.ndarray:
        beta = np.asarray(beta, dtype=float)
        if beta.shape != (NUM_SHAPE_PARAMS,):
            raise MeshError(
                f"beta must have shape ({NUM_SHAPE_PARAMS},), got {beta.shape}"
            )
        return beta


def build_shape_basis(
    shape: HandShape, params: TemplateParams = TemplateParams()
) -> ShapeBasis:
    """Finite-difference the template knobs into a linear shape basis.

    Every perturbed template preserves topology, so displacement fields
    are well-defined per-vertex differences.
    """
    base = build_template(shape, params)
    vertex_dirs = np.empty((NUM_SHAPE_PARAMS, base.num_vertices, 3))
    joint_dirs = np.empty((NUM_SHAPE_PARAMS, NUM_JOINTS, 3))
    for k, (knob, delta) in enumerate(zip(params.knob_names(), _KNOB_DELTAS)):
        perturbed = build_template(shape, params.perturbed(knob, delta))
        if perturbed.num_vertices != base.num_vertices:
            raise MeshError(
                f"knob {knob!r} changed template topology"
            )  # pragma: no cover - template guarantees this
        vertex_dirs[k] = perturbed.vertices - base.vertices
        joint_dirs[k] = perturbed.rest_joints - base.rest_joints
    return ShapeBasis(base=base, vertex_dirs=vertex_dirs, joint_dirs=joint_dirs)


def pose_blend_offsets(
    template: HandTemplate, theta: np.ndarray, bulge_m: float = 0.0015
) -> np.ndarray:
    """Pose-dependent corrective offsets ``Bp(theta)`` (paper Eq. 11).

    For every bending joint, vertices it (or its child bone) drives bulge
    slightly towards the palm (-z in the hand frame), proportional to the
    sine of the bend angle -- a first-order model of flexor soft tissue.

    Returns an array of shape (V, 3) to add to the rest vertices *before*
    skinning, as in SMPL/MANO.
    """
    theta = np.asarray(theta, dtype=float)
    if theta.shape != (NUM_JOINTS, 3):
        raise MeshError(f"theta must have shape (21, 3), got {theta.shape}")
    bend = np.linalg.norm(theta, axis=1)
    offsets = np.zeros_like(template.vertices)
    palmward = np.array([0.0, 0.0, -1.0])
    for joint in range(1, NUM_JOINTS):
        amount = float(np.sin(min(bend[joint], np.pi / 2)))
        if amount <= 0.0:
            continue
        # Vertices influenced by the bending joint or by its parent bone
        # (the two sides of the crease).
        parent = JOINT_PARENTS[joint]
        influence = template.weights[:, joint] + 0.5 * template.weights[
            :, parent
        ] * (template.vertex_joint == parent)
        offsets += (
            bulge_m * amount * influence[:, None] * palmward[None, :]
        )
    return offsets
