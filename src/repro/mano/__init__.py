"""MANO-like parametric hand mesh model, built from scratch.

The paper reconstructs meshes with MANO (hand Model with Articulated and
Non-rigid defOrmations, Romero et al.), whose learned assets are not
redistributable. This package implements the same differentiable-function
shape ``M(beta, theta)`` (paper Eq. 10-11) on top of a procedurally
generated hand template: ``beta`` in R^10 controls shape through analytic
blend shapes, ``theta`` in R^{21x3} controls pose in axis-angle, and linear
blend skinning produces the final mesh.
"""

from repro.mano.rotations import (
    axis_angle_to_matrix,
    matrix_to_axis_angle,
    quaternion_to_matrix,
    matrix_to_quaternion,
    quaternion_to_axis_angle,
    axis_angle_to_quaternion,
    normalize_quaternion,
)
from repro.mano.template import HandTemplate, build_template
from repro.mano.blend import ShapeBasis, build_shape_basis, pose_blend_offsets
from repro.mano.skinning import linear_blend_skinning, global_transforms
from repro.mano.model import ManoHandModel, MeshResult, pose_to_theta

__all__ = [
    "axis_angle_to_matrix",
    "matrix_to_axis_angle",
    "quaternion_to_matrix",
    "matrix_to_quaternion",
    "quaternion_to_axis_angle",
    "axis_angle_to_quaternion",
    "normalize_quaternion",
    "HandTemplate",
    "build_template",
    "ShapeBasis",
    "build_shape_basis",
    "pose_blend_offsets",
    "linear_blend_skinning",
    "global_transforms",
    "ManoHandModel",
    "MeshResult",
    "pose_to_theta",
]
