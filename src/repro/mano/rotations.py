"""Rotation representation conversions.

The mesh-recovery network outputs rotation quaternions ``Q in R^{21x4}``
for computational efficiency and converts them to the axis-angle
representation ``theta in R^{21x3}`` MANO consumes (paper Sec. V). This
module provides the batched conversions between axis-angle, quaternion and
rotation-matrix forms, all pure numpy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError

_EPS = 1e-12


def _check_last_dim(array: np.ndarray, dim: int, what: str) -> np.ndarray:
    array = np.asarray(array, dtype=float)
    if array.shape[-1] != dim:
        raise MeshError(f"{what} must have trailing dimension {dim}, "
                        f"got shape {array.shape}")
    return array


def axis_angle_to_matrix(axis_angle: np.ndarray) -> np.ndarray:
    """Convert axis-angle vectors (..., 3) to rotation matrices (..., 3, 3).

    The vector's norm is the rotation angle; a zero vector maps to the
    identity.
    """
    aa = _check_last_dim(axis_angle, 3, "axis-angle")
    batch = aa.reshape(-1, 3)
    angles = np.linalg.norm(batch, axis=1)
    safe = np.where(angles < _EPS, 1.0, angles)
    axes = batch / safe[:, None]
    x, y, z = axes[:, 0], axes[:, 1], axes[:, 2]
    zeros = np.zeros_like(x)
    k = np.stack(
        [zeros, -z, y, z, zeros, -x, -y, x, zeros], axis=1
    ).reshape(-1, 3, 3)
    c = np.cos(angles)[:, None, None]
    s = np.sin(angles)[:, None, None]
    eye = np.broadcast_to(np.eye(3), k.shape)
    mats = eye * c + s * k + (1.0 - c) * np.einsum(
        "bi,bj->bij", axes, axes
    )
    identity_mask = angles < _EPS
    mats[identity_mask] = np.eye(3)
    return mats.reshape(aa.shape[:-1] + (3, 3))


def matrix_to_axis_angle(matrix: np.ndarray) -> np.ndarray:
    """Convert rotation matrices (..., 3, 3) to axis-angle (..., 3)."""
    mat = np.asarray(matrix, dtype=float)
    if mat.shape[-2:] != (3, 3):
        raise MeshError(f"expected (..., 3, 3) matrices, got {mat.shape}")
    return quaternion_to_axis_angle(matrix_to_quaternion(mat))


def normalize_quaternion(quat: np.ndarray) -> np.ndarray:
    """Normalise quaternions (..., 4) to unit norm (w, x, y, z order).

    Raises :class:`MeshError` on (near-)zero quaternions, which carry no
    orientation information.
    """
    q = _check_last_dim(quat, 4, "quaternion")
    norms = np.linalg.norm(q, axis=-1, keepdims=True)
    if np.any(norms < 1e-8):
        raise MeshError("cannot normalise a zero quaternion")
    return q / norms


def quaternion_to_matrix(quat: np.ndarray) -> np.ndarray:
    """Convert unit quaternions (..., 4), (w, x, y, z), to matrices."""
    q = normalize_quaternion(quat)
    w, x, y, z = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    m = np.empty(q.shape[:-1] + (3, 3))
    m[..., 0, 0] = 1 - 2 * (y * y + z * z)
    m[..., 0, 1] = 2 * (x * y - w * z)
    m[..., 0, 2] = 2 * (x * z + w * y)
    m[..., 1, 0] = 2 * (x * y + w * z)
    m[..., 1, 1] = 1 - 2 * (x * x + z * z)
    m[..., 1, 2] = 2 * (y * z - w * x)
    m[..., 2, 0] = 2 * (x * z - w * y)
    m[..., 2, 1] = 2 * (y * z + w * x)
    m[..., 2, 2] = 1 - 2 * (x * x + y * y)
    return m


def matrix_to_quaternion(matrix: np.ndarray) -> np.ndarray:
    """Convert rotation matrices (..., 3, 3) to unit quaternions (w,x,y,z).

    Uses Shepperd's numerically stable branch selection.
    """
    mat = np.asarray(matrix, dtype=float)
    if mat.shape[-2:] != (3, 3):
        raise MeshError(f"expected (..., 3, 3) matrices, got {mat.shape}")
    m = mat.reshape(-1, 3, 3)
    q = np.empty((m.shape[0], 4))
    trace = np.trace(m, axis1=1, axis2=2)
    for i in range(m.shape[0]):
        r = m[i]
        t = trace[i]
        if t > 0:
            s = np.sqrt(t + 1.0) * 2.0
            q[i] = [0.25 * s, (r[2, 1] - r[1, 2]) / s,
                    (r[0, 2] - r[2, 0]) / s, (r[1, 0] - r[0, 1]) / s]
        elif r[0, 0] >= r[1, 1] and r[0, 0] >= r[2, 2]:
            s = np.sqrt(1.0 + r[0, 0] - r[1, 1] - r[2, 2]) * 2.0
            q[i] = [(r[2, 1] - r[1, 2]) / s, 0.25 * s,
                    (r[0, 1] + r[1, 0]) / s, (r[0, 2] + r[2, 0]) / s]
        elif r[1, 1] >= r[2, 2]:
            s = np.sqrt(1.0 + r[1, 1] - r[0, 0] - r[2, 2]) * 2.0
            q[i] = [(r[0, 2] - r[2, 0]) / s, (r[0, 1] + r[1, 0]) / s,
                    0.25 * s, (r[1, 2] + r[2, 1]) / s]
        else:
            s = np.sqrt(1.0 + r[2, 2] - r[0, 0] - r[1, 1]) * 2.0
            q[i] = [(r[1, 0] - r[0, 1]) / s, (r[0, 2] + r[2, 0]) / s,
                    (r[1, 2] + r[2, 1]) / s, 0.25 * s]
    # Canonical sign: non-negative scalar part.
    flip = q[:, 0] < 0
    q[flip] = -q[flip]
    return q.reshape(mat.shape[:-2] + (4,))


def quaternion_to_axis_angle(quat: np.ndarray) -> np.ndarray:
    """Convert unit quaternions (..., 4) to axis-angle vectors (..., 3)."""
    q = normalize_quaternion(quat)
    flip = q[..., 0:1] < 0
    q = np.where(flip, -q, q)
    w = np.clip(q[..., 0], -1.0, 1.0)
    angles = 2.0 * np.arccos(w)
    sin_half = np.sqrt(np.maximum(1.0 - w * w, 0.0))
    scale = np.where(sin_half < 1e-8, 2.0, angles / np.where(
        sin_half < 1e-8, 1.0, sin_half))
    return q[..., 1:] * scale[..., None]


def axis_angle_to_quaternion(axis_angle: np.ndarray) -> np.ndarray:
    """Convert axis-angle vectors (..., 3) to unit quaternions (w,x,y,z)."""
    aa = _check_last_dim(axis_angle, 3, "axis-angle")
    angles = np.linalg.norm(aa, axis=-1)
    safe = np.where(angles < _EPS, 1.0, angles)
    axes = aa / safe[..., None]
    half = angles / 2.0
    q = np.concatenate(
        [np.cos(half)[..., None], axes * np.sin(half)[..., None]], axis=-1
    )
    q[angles < _EPS] = np.array([1.0, 0.0, 0.0, 0.0])
    return q
