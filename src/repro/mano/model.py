"""The MANO-style parametric hand model ``M(beta, theta)`` (paper Eq. 10).

``beta in R^10`` controls shape through the analytic blend basis,
``theta in R^{21x3}`` controls pose as per-joint axis-angle rotations, and
linear blend skinning of the deformed template produces the final mesh:

    M(beta, theta) = W(T + Bs(beta) + Bp(theta), J(beta), theta, W)

The model operates in the hand frame (wrist at origin); callers translate
the result to the world wrist position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MeshError
from repro.hand.joints import FINGER_CHAINS, FINGERS, NUM_JOINTS
from repro.hand.kinematics import _BEND_NORMALS, HandPose, rotation_about_axis
from repro.hand.shape import HandShape
from repro.mano.blend import (
    NUM_SHAPE_PARAMS,
    ShapeBasis,
    build_shape_basis,
    pose_blend_offsets,
)
from repro.mano.rotations import matrix_to_axis_angle
from repro.mano.skinning import linear_blend_skinning
from repro.mano.template import TemplateParams


@dataclass
class MeshResult:
    """Output of one ``M(beta, theta)`` evaluation."""

    vertices: np.ndarray  # (V, 3)
    faces: np.ndarray  # (F, 3)
    joints: np.ndarray  # (21, 3)

    def translated(self, offset: np.ndarray) -> "MeshResult":
        """The same mesh rigidly shifted by ``offset`` (world placement)."""
        offset = np.asarray(offset, dtype=float)
        if offset.shape != (3,):
            raise MeshError("offset must be a 3-vector")
        return MeshResult(
            vertices=self.vertices + offset,
            faces=self.faces,
            joints=self.joints + offset,
        )


class ManoHandModel:
    """Differentiable-function-shaped parametric hand model.

    Parameters
    ----------
    shape:
        Base hand geometry the template is generated from; defaults to the
        average adult hand. ``beta`` deforms around this base.
    params:
        Template generation knobs (rarely changed).
    """

    def __init__(
        self,
        shape: Optional[HandShape] = None,
        params: TemplateParams = TemplateParams(),
    ) -> None:
        self.shape = shape if shape is not None else HandShape()
        self.basis: ShapeBasis = build_shape_basis(self.shape, params)
        self.faces = self.basis.base.faces

    @property
    def num_vertices(self) -> int:
        return self.basis.base.num_vertices

    @property
    def num_shape_params(self) -> int:
        return NUM_SHAPE_PARAMS

    def rest_joints(self, beta: Optional[np.ndarray] = None) -> np.ndarray:
        """``J(beta)``: rest joint locations for shape ``beta``."""
        if beta is None:
            beta = np.zeros(NUM_SHAPE_PARAMS)
        return self.basis.shaped_joints(beta)

    def __call__(
        self,
        beta: Optional[np.ndarray] = None,
        theta: Optional[np.ndarray] = None,
        use_pose_blend: bool = True,
    ) -> MeshResult:
        """Evaluate ``M(beta, theta)`` in the hand frame.

        ``beta`` defaults to zeros (mean shape), ``theta`` to the rest
        pose. Setting ``use_pose_blend=False`` skips the ``Bp(theta)``
        corrective offsets (useful for ablation).
        """
        if beta is None:
            beta = np.zeros(NUM_SHAPE_PARAMS)
        if theta is None:
            theta = np.zeros((NUM_JOINTS, 3))
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (NUM_JOINTS, 3):
            raise MeshError(
                f"theta must have shape (21, 3), got {theta.shape}"
            )
        vertices = self.basis.shaped_vertices(beta)
        rest_joints = self.basis.shaped_joints(beta)
        if use_pose_blend:
            vertices = vertices + pose_blend_offsets(self.basis.base, theta)
        posed_vertices, posed_joints = linear_blend_skinning(
            vertices, self.basis.base.weights, theta, rest_joints
        )
        return MeshResult(
            vertices=posed_vertices, faces=self.faces, joints=posed_joints
        )


def pose_to_theta(pose: HandPose) -> np.ndarray:
    """Convert a :class:`HandPose` (gesture angles + global orientation)
    into the equivalent MANO axis-angle parameters ``theta in R^{21x3}``.

    The wrist entry carries the global hand rotation; finger entries
    express each joint's rotation in its parent frame so that MANO forward
    kinematics reproduces :func:`~repro.hand.kinematics.forward_kinematics`
    exactly (tested property). Fingertips carry no rotation.
    """
    theta = np.zeros((NUM_JOINTS, 3))
    theta[0] = matrix_to_axis_angle(pose.orientation)
    z_axis = np.array([0.0, 0.0, 1.0])
    for i, finger in enumerate(FINGERS):
        mcp_flex, mcp_abd, pip_flex, dip_flex = pose.finger_angles[i]
        chain = FINGER_CHAINS[finger]
        splay = rotation_about_axis(z_axis, _rest_splay(finger))
        d0 = splay @ np.array([0.0, 1.0, 0.0])
        r_abd = rotation_about_axis(z_axis, mcp_abd)
        d_abd = r_abd @ d0
        bend_normal = _BEND_NORMALS[finger]
        axis = np.cross(d_abd, bend_normal)
        norm = np.linalg.norm(axis)
        axis = axis / norm if norm > 1e-9 else np.array([1.0, 0.0, 0.0])
        # MCP: flexion about the (post-abduction) flex axis composed with
        # the abduction swing.
        r_mcp = rotation_about_axis(axis, mcp_flex) @ r_abd
        theta[chain[0]] = matrix_to_axis_angle(r_mcp)
        # PIP/DIP: flexion about the same anatomical axis, expressed in
        # the local (post-abduction) frame: a' = R_abd^T a.
        local_axis = r_abd.T @ axis
        theta[chain[1]] = local_axis * pip_flex
        theta[chain[2]] = local_axis * dip_flex
    return theta


def _rest_splay(finger: str) -> float:
    """Resting splay of the default hand shape (template rest pose)."""
    from repro.hand.shape import _BASE_SPLAY_RAD

    return _BASE_SPLAY_RAD[finger]


def random_theta(
    rng: np.random.Generator,
    orientation: Optional[np.ndarray] = None,
    orientation_jitter_rad: float = 0.35,
) -> np.ndarray:
    """Sample an anatomically plausible ``theta`` by drawing finger angles
    within their limits and converting through :func:`pose_to_theta`.

    Used to self-train the inverse-kinematics networks of the mesh
    reconstruction stage. The wrist orientation is sampled around the
    interaction posture the radar pipeline produces (palm facing the
    radar, fingers up) with random jitter, so the learned inverse covers
    the skeletons the regressor actually emits.
    """
    angles = np.zeros((len(FINGERS), 4))
    angles[:, 0] = rng.uniform(-0.1, 1.5, size=len(FINGERS))  # mcp flexion
    angles[:, 1] = rng.uniform(-0.4, 0.4, size=len(FINGERS))  # abduction
    angles[:, 2] = rng.uniform(0.0, 1.6, size=len(FINGERS))  # pip flexion
    angles[:, 3] = rng.uniform(0.0, 1.0, size=len(FINGERS))  # dip flexion
    if orientation is None:
        from repro.hand.kinematics import default_orientation

        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis)
        angle = rng.uniform(0.0, orientation_jitter_rad)
        orientation = (
            rotation_about_axis(axis, angle) @ default_orientation()
        )
    pose = HandPose(
        finger_angles=angles, wrist_position=np.zeros(3),
        orientation=orientation,
    )
    return pose_to_theta(pose)
