"""Comparison methods (paper Table I).

The paper compares against four vision methods via their *published*
MPJPE numbers on MSRA/ICVL (it does not re-run them), and against two
wireless methods -- mm4Arm (mmWave, forearm-based) and HandFi (WiFi) --
by re-collecting data "following their experimental setups". This package
mirrors that protocol: :mod:`literature` carries the cited numbers, and
:mod:`mm4arm` / :mod:`handfi` implement simplified versions of the two
wireless pipelines that run on our simulated captures.
"""

from repro.baselines.literature import (
    LiteratureResult,
    VISION_BASELINES,
    WIRELESS_REFERENCE,
)
from repro.baselines.mm4arm import Mm4ArmBaseline
from repro.baselines.handfi import HandFiBaseline

__all__ = [
    "LiteratureResult",
    "VISION_BASELINES",
    "WIRELESS_REFERENCE",
    "Mm4ArmBaseline",
    "HandFiBaseline",
]
