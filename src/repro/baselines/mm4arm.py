"""Simplified mm4Arm-style baseline (Liu et al., POMACS 2022).

mm4Arm infers finger motion from forearm micro-Doppler: it does not
image the hand spatially but tracks Doppler signatures of the forearm
muscles, which is why it excels when the forearm faces the radar and
degrades under arm rotation, and why it cannot render hand meshes.

The simplified reproduction keeps that information diet: it collapses
the radar cube's angle axes entirely, keeping only range-Doppler
features, and regresses joints with a small MLP. Run on the same
segments as mmHand, it shows what Doppler-only sensing recovers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import HandPoseDataset
from repro.errors import DatasetError, ModelError
from repro.nn.layers import Linear, Module, ReLU, Sequential
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad


class _DopplerMlp(Module):
    """MLP over flattened range-Doppler features."""

    def __init__(self, in_features: int, hidden: int, seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.net = Sequential(
            Linear(in_features, hidden, rng=rng),
            ReLU(),
            Linear(hidden, hidden, rng=rng),
            ReLU(),
            Linear(hidden, 63, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class Mm4ArmBaseline:
    """Doppler-range joint regressor in the mm4Arm mould."""

    def __init__(self, hidden: int = 128, seed: int = 0) -> None:
        self.hidden = hidden
        self.seed = seed
        self._model: Optional[_DopplerMlp] = None
        self._input_stats = (0.0, 1.0)
        self._label_stats: Optional[tuple] = None

    @staticmethod
    def features(segments: np.ndarray) -> np.ndarray:
        """Collapse the angle axis: (N, st, V, D, A) -> (N, st*V*D)."""
        segments = np.asarray(segments, dtype=np.float32)
        if segments.ndim != 5:
            raise DatasetError(
                f"expected (N, st, V, D, A) segments, got {segments.shape}"
            )
        collapsed = segments.mean(axis=4)
        return collapsed.reshape(len(segments), -1)

    def fit(
        self,
        dataset: HandPoseDataset,
        epochs: int = 30,
        batch_size: int = 32,
        lr: float = 1e-3,
    ) -> list:
        """Train on a labelled dataset; returns the loss history."""
        x = self.features(dataset.segments)
        mean, std = float(x.mean()), float(x.std() + 1e-6)
        self._input_stats = (mean, std)
        x = (x - mean) / std
        y = dataset.labels.reshape(len(dataset), -1).astype(np.float32)
        y_mean = y.mean(axis=0)
        y_std = y.std(axis=0) + 1e-6
        self._label_stats = (y_mean, y_std)
        y_norm = (y - y_mean) / y_std

        self._model = _DopplerMlp(x.shape[1], self.hidden, self.seed)
        optimizer = Adam(self._model.parameters(), lr=lr)
        rng = np.random.default_rng(self.seed)
        history = []
        for _ in range(epochs):
            order = rng.permutation(len(x))
            for start in range(0, len(x) - batch_size + 1, batch_size):
                idx = order[start : start + batch_size]
                pred = self._model(Tensor(x[idx]))
                diff = pred - Tensor(y_norm[idx])
                loss = (diff * diff).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                history.append(float(loss.data))
        return history

    def predict(self, segments: np.ndarray) -> np.ndarray:
        """Joints (N, 21, 3) in metres."""
        if self._model is None or self._label_stats is None:
            raise ModelError("baseline must be fitted before predicting")
        x = self.features(segments)
        mean, std = self._input_stats
        x = (x - mean) / std
        y_mean, y_std = self._label_stats
        with no_grad():
            pred = self._model(Tensor(x.astype(np.float32))).data
        return (pred * y_std + y_mean).reshape(-1, 21, 3)
