"""Published comparison numbers (paper Table I).

The paper cites these MPJPE values directly from the original works; the
reproduction does the same rather than re-implementing four vision
systems (which would need the MSRA/ICVL image datasets the paper itself
could not pair with mmWave captures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class LiteratureResult:
    """One row of the comparison table."""

    method: str
    dataset: str
    mpjpe_mm: float
    modality: str
    mmhand_paper_mm: float


#: Vision-based methods, evaluated on public depth datasets (cited).
VISION_BASELINES: List[LiteratureResult] = [
    LiteratureResult("Cascade", "MSRA", 15.2, "depth", 18.3),
    LiteratureResult("Cascade", "ICVL", 9.9, "depth", 18.3),
    LiteratureResult("CrossingNet", "MSRA", 12.2, "depth", 18.3),
    LiteratureResult("CrossingNet", "ICVL", 10.2, "depth", 18.3),
    LiteratureResult("DeepPrior++", "MSRA", 9.5, "depth", 18.3),
    LiteratureResult("HBE", "ICVL", 8.62, "depth", 18.3),
]

#: Wireless methods: the typical results the papers report on their own
#: setups, against which the paper measures mmHand on re-collected data.
WIRELESS_REFERENCE: List[LiteratureResult] = [
    LiteratureResult("mm4Arm", "self-collected", 4.07, "mmWave (forearm)",
                     20.4),
    LiteratureResult("HandFi", "self-collected", 20.7, "WiFi", 19.0),
]
