"""Simplified HandFi-style baseline (Ji et al., SenSys 2023).

HandFi constructs 3-D hand skeletons from commercial WiFi CSI. WiFi's
bandwidth (tens of MHz vs the radar's 4 GHz) and antenna count give it
far coarser spatial resolution; the simplified reproduction models that
by aggressively downsampling the radar cube's range and angle axes
before a small MLP regresses the joints -- the same learning capacity as
the mm4Arm baseline, but on low-resolution features.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import HandPoseDataset
from repro.errors import DatasetError, ModelError
from repro.nn.layers import Linear, Module, ReLU, Sequential
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad


def _block_reduce(array: np.ndarray, factors: Tuple[int, int]) -> np.ndarray:
    """Average-pool the last two axes by integer factors."""
    fd, fa = factors
    n, st, v, d, a = array.shape
    if d % fd or a % fa:
        raise DatasetError(
            f"cube axes ({d}, {a}) not divisible by pooling {factors}"
        )
    return array.reshape(n, st, v, d // fd, fd, a // fa, fa).mean(
        axis=(4, 6)
    )


class _CsiMlp(Module):
    def __init__(self, in_features: int, hidden: int, seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.net = Sequential(
            Linear(in_features, hidden, rng=rng),
            ReLU(),
            Linear(hidden, hidden, rng=rng),
            ReLU(),
            Linear(hidden, 63, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class HandFiBaseline:
    """Coarse-resolution joint regressor in the HandFi mould."""

    def __init__(
        self,
        pooling: Tuple[int, int] = (4, 4),
        hidden: int = 128,
        seed: int = 1,
    ) -> None:
        self.pooling = pooling
        self.hidden = hidden
        self.seed = seed
        self._model: Optional[_CsiMlp] = None
        self._input_stats = (0.0, 1.0)
        self._label_stats: Optional[tuple] = None

    def features(self, segments: np.ndarray) -> np.ndarray:
        """Downsample range/angle axes, then flatten."""
        segments = np.asarray(segments, dtype=np.float32)
        if segments.ndim != 5:
            raise DatasetError(
                f"expected (N, st, V, D, A) segments, got {segments.shape}"
            )
        coarse = _block_reduce(segments, self.pooling)
        return coarse.reshape(len(segments), -1)

    def fit(
        self,
        dataset: HandPoseDataset,
        epochs: int = 30,
        batch_size: int = 32,
        lr: float = 1e-3,
    ) -> list:
        x = self.features(dataset.segments)
        mean, std = float(x.mean()), float(x.std() + 1e-6)
        self._input_stats = (mean, std)
        x = (x - mean) / std
        y = dataset.labels.reshape(len(dataset), -1).astype(np.float32)
        y_mean = y.mean(axis=0)
        y_std = y.std(axis=0) + 1e-6
        self._label_stats = (y_mean, y_std)
        y_norm = (y - y_mean) / y_std

        self._model = _CsiMlp(x.shape[1], self.hidden, self.seed)
        optimizer = Adam(self._model.parameters(), lr=lr)
        rng = np.random.default_rng(self.seed)
        history = []
        for _ in range(epochs):
            order = rng.permutation(len(x))
            for start in range(0, len(x) - batch_size + 1, batch_size):
                idx = order[start : start + batch_size]
                pred = self._model(Tensor(x[idx]))
                diff = pred - Tensor(y_norm[idx])
                loss = (diff * diff).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                history.append(float(loss.data))
        return history

    def predict(self, segments: np.ndarray) -> np.ndarray:
        if self._model is None or self._label_stats is None:
            raise ModelError("baseline must be fitted before predicting")
        x = self.features(segments)
        mean, std = self._input_stats
        x = (x - mean) / std
        y_mean, y_std = self._label_stats
        with no_grad():
            pred = self._model(Tensor(x.astype(np.float32))).data
        return (pred * y_std + y_mean).reshape(-1, 21, 3)
