"""Multi-process serving tier with zero-copy shared-memory ingest.

``repro.gateway`` scales the single-process
:class:`~repro.serving.InferenceServer` past the GIL: a front-end
:class:`Gateway` dispatcher admits client sessions and moves radar
frames into N worker processes through fixed-slot
``multiprocessing.shared_memory`` ring buffers (:class:`ShmRing`).
Array payloads cross the process boundary as a single ``memcpy`` into
the shared segment -- nothing on the ingest path is pickled; only small
headers (sequence, session id, frame id, dtype/shape tag) and control
metadata move through other channels.

* :class:`ShmRing` -- SPSC shared-memory ring with a per-slot header
  and zero-copy payload views;
* :class:`Gateway` / :class:`GatewayConfig` -- the dispatcher: sticky
  session->worker affinity (each session's FrameWindow stays
  worker-local), heartbeat + exitcode crash detection, restart with
  in-order replay of unacked frames and dead-lettering of
  acked-but-unanswered ones, merged ``health()`` /
  ``stats()`` / Prometheus across the pool;
* :mod:`repro.gateway.worker` -- the per-process serving stack (the
  unchanged compiled-plan + breaker + quarantine + error-budget
  pipeline from :mod:`repro.serving`);
* :mod:`repro.gateway.loadgen` -- open-loop Poisson load generator and
  the ``mmhand gateway-bench`` harness behind ``BENCH_serving.json``.
"""

from repro.gateway.dispatcher import Gateway, GatewayConfig
from repro.gateway.loadgen import (
    LoadgenConfig,
    run_gateway_bench,
    run_loadgen,
)
from repro.gateway.ring import RingMessage, ShmRing
from repro.gateway.worker import WorkerConfig

__all__ = [
    "Gateway",
    "GatewayConfig",
    "LoadgenConfig",
    "RingMessage",
    "ShmRing",
    "WorkerConfig",
    "run_gateway_bench",
    "run_loadgen",
]
