"""The gateway dispatcher: sessions in the front, worker processes behind.

:class:`Gateway` is the process-pool serving tier. It admits client
sessions, pins each one to a worker (sticky affinity, so the session's
sliding window lives in exactly one process), moves radar frames into
the workers through zero-copy shared-memory rings, and collects acks
and poses off the response rings. On top of the data path it runs the
control plane:

* **liveness** -- every worker bumps a heartbeat slot in a small shared
  segment; a stale heartbeat or a non-``None`` ``Process.exitcode``
  marks the worker dead;
* **recovery** -- a dead worker is restarted with fresh rings (the old
  segment may hold a half-written slot), its sessions stay pinned to
  the slot and lazily reopen, unacked in-flight frames are **replayed**
  into the restarted worker in order, and acked-but-unanswered frames
  are **dead-lettered** -- every clean frame is answered or accounted,
  never silently lost;
* **aggregation** -- worker stats snapshots (requested over the control
  pipes) merge into one ``health()`` ladder, one ``stats()`` tree and
  one Prometheus exposition;
* **distributed tracing** -- every forwarded frame is wrapped in a
  dispatcher-side ``gateway.submit`` span whose context rides in the
  ring slot header; workers ship their finished spans (and optional
  sampling profiles) back with stats replies and the final ``bye``, and
  :meth:`Gateway.export_chrome` merges the dispatcher's and every
  worker's spans into one Chrome trace with per-process lanes. A
  per-frame stage-latency ledger (submit / ring-wait / ingest /
  batch-wait / forward / pose-return) aggregates into per-stage
  histograms surfaced by ``stats()["stage_latency"]`` and Prometheus.

The dispatcher itself is single-threaded and polling-based: callers
interleave ``submit``/``submit_cube`` with ``pump()`` exactly like the
in-process :class:`~repro.serving.InferenceServer`'s ``submit``/
``step`` loop.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.config import DspConfig, ModelConfig, RadarConfig
from repro.errors import (
    GatewayError,
    QueueFullError,
    UnknownSessionError,
    WorkerCrashedError,
)
from repro.gateway.ring import (
    ACK_ENQUEUED,
    ACK_QUARANTINED,
    KIND_ACK,
    KIND_CLOSE,
    KIND_CLOSED,
    KIND_FRAME_CUBE,
    KIND_FRAME_RAW,
    KIND_POSE,
    KIND_UNSERVED,
    SLOT_HEADER_BYTES,
    ShmRing,
    encode_session_id,
)
from repro.gateway.worker import WorkerConfig, worker_main
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import merge_profiles
from repro.resilience import DeadLetterLog, HealthState
from repro.serving import ServingConfig
from repro.serving.batcher import PoseResult

_gateway_counter = itertools.count()


@dataclass
class GatewayConfig:
    """Tunables of the multi-process serving tier."""

    workers: int = 2
    ring_slots: int = 64
    slot_bytes: int = 0  # 0: sized automatically from the radar/dsp shapes
    heartbeat_timeout_s: float = 5.0
    max_restarts: int = 8
    start_method: str = "fork"  # "fork" (fast) or "spawn" (portable)
    serving: ServingConfig = field(default_factory=ServingConfig)
    seed: int = 0
    weights_path: Optional[str] = None
    # Pre-compiled plan artifact (``mmhand plan export``); workers load
    # it at spawn instead of retracing/refolding the network.
    plan_path: Optional[str] = None
    # Chaos passthrough (worker-local fault injectors).
    chaos_frame_rate: float = 0.0
    chaos_forward_rate: float = 0.0
    chaos_compile_fail: bool = False
    chaos_seed: int = 0
    # Sampling-profiler rate inside each worker (0 = disabled);
    # profiles ship back over the control pipe and merge into one
    # flamegraph via Gateway.merged_profile().
    profile_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise GatewayError("workers must be >= 1")
        if self.ring_slots < 2:
            raise GatewayError("ring_slots must be >= 2")
        if self.heartbeat_timeout_s <= 0:
            raise GatewayError("heartbeat_timeout_s must be positive")
        if self.max_restarts < 0:
            raise GatewayError("max_restarts must be >= 0")
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise GatewayError(
                f"unknown start_method {self.start_method!r}"
            )


@dataclass
class _InFlight:
    """One frame pushed to a worker and not yet acknowledged.

    Carries the frame's trace context so a crash replay re-propagates
    the *original* ``gateway.submit`` span -- a replayed frame's
    worker-side spans stay parented to the submit that first saw it.
    """

    session_id: str
    frame_id: int
    kind: int
    payload: np.ndarray
    pushed_at: float
    trace_id: int = 0
    parent_span_id: int = 0


class _WorkerHandle:
    """Dispatcher-side state of one worker slot."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.generation = 0
        self.process: Optional[multiprocessing.Process] = None
        self.request_ring: Optional[ShmRing] = None
        self.response_ring: Optional[ShmRing] = None
        self.conn = None
        self.sessions: set = set()
        # (session_id, frame_id) -> _InFlight, insertion-ordered so a
        # crash replay preserves per-session frame order.
        self.inflight: "OrderedDict[Tuple[str, int], _InFlight]" = (
            OrderedDict()
        )
        # Acked-as-enqueued frames awaiting their pose: -> submit time.
        self.awaiting_pose: Dict[Tuple[str, int], float] = {}
        self.restarts = 0
        self.started_at = 0.0
        self.recovered = True
        self.last_stats: Optional[Dict[str, Any]] = None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class Gateway:
    """Multi-process serving tier with zero-copy shared-memory ingest."""

    def __init__(
        self,
        radar: Optional[RadarConfig] = None,
        dsp: Optional[DspConfig] = None,
        model: Optional[ModelConfig] = None,
        config: Optional[GatewayConfig] = None,
    ) -> None:
        self.radar = radar if radar is not None else RadarConfig()
        self.dsp = dsp if dsp is not None else DspConfig()
        self.model = model if model is not None else ModelConfig()
        self.config = config if config is not None else GatewayConfig()
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._id = f"gw{next(_gateway_counter)}"
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(self._publish_gauges)
        self.dead_letters = DeadLetterLog(capacity=4096)
        self._tracer = obs_trace.get_tracer()
        # Spans shipped back from workers (bounded; merged into one
        # Chrome trace by export_chrome) and the latest profile per
        # worker generation (lane name -> profile dict).
        self._worker_spans: Deque[Dict[str, Any]] = deque(maxlen=262144)
        self._worker_profiles: Dict[str, Dict[str, Any]] = {}
        self._process_names: Dict[int, str] = {
            os.getpid(): "dispatcher"
        }
        self._workers = [
            _WorkerHandle(i) for i in range(self.config.workers)
        ]
        self._heartbeat_shm: Optional[shared_memory.SharedMemory] = None
        self._heartbeat: Optional[np.ndarray] = None
        self._sessions: Dict[str, int] = {}  # session id -> worker index
        self._closed_sessions: set = set()
        self._frame_ids: Dict[str, int] = {}
        self._session_counter = itertools.count()
        self._started = False
        self._slot_bytes = self._resolve_slot_bytes()

    # -- sizing ---------------------------------------------------------
    def _resolve_slot_bytes(self) -> int:
        if self.config.slot_bytes:
            return self.config.slot_bytes
        # Raw IF frames off the simulator are complex128 (16 B/elem).
        raw_bytes = 16 * (
            self.radar.num_virtual_antennas
            * self.radar.chirp_loops
            * self.radar.samples_per_chirp
        )
        cube_bytes = 8 * (
            self.dsp.doppler_bins
            * self.dsp.range_bins
            * self.dsp.angle_bins_total
        )
        payload = max(raw_bytes, cube_bytes, 21 * 3 * 8)
        return SLOT_HEADER_BYTES + payload

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "Gateway":
        if self._started:
            return self
        size = max(self.config.workers * 8, 8)
        self._heartbeat_shm = shared_memory.SharedMemory(
            create=True, size=size
        )
        self._heartbeat = np.ndarray(
            (self.config.workers,),
            dtype=np.float64,
            buffer=self._heartbeat_shm.buf,
        )
        # Liveness deadlines run on the monotonic clock (system-wide on
        # Linux, shared with the workers' beat()): an NTP step or DST
        # jump on the wall clock must never mass-expire heartbeats and
        # kill a healthy pool. Wall time appears only in logs/traces.
        self._heartbeat[:] = time.monotonic()
        for handle in self._workers:
            self._launch(handle)
        self._started = True
        self._await_first_heartbeats()
        return self

    def _await_first_heartbeats(self, timeout_s: float = 10.0) -> None:
        """Block briefly until every worker proves live, so a freshly
        ``start()``-ed gateway reports HEALTHY instead of the
        not-yet-proven-recovered DEGRADED clamp."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            self.pump(check_liveness=True)
            if all(handle.recovered for handle in self._workers):
                return
            time.sleep(0.005)

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _worker_config(self) -> WorkerConfig:
        return WorkerConfig(
            radar=self.radar,
            dsp=self.dsp,
            model=self.model,
            serving=replace(self.config.serving),
            seed=self.config.seed,
            weights_path=self.config.weights_path,
            plan_path=self.config.plan_path,
            chaos_frame_rate=self.config.chaos_frame_rate,
            chaos_forward_rate=self.config.chaos_forward_rate,
            chaos_compile_fail=self.config.chaos_compile_fail,
            chaos_seed=self.config.chaos_seed,
            profile_hz=self.config.profile_hz,
        )

    def _launch(self, handle: _WorkerHandle) -> None:
        handle.generation += 1
        request_ring = ShmRing.create(
            self.config.ring_slots, self._slot_bytes
        )
        response_ring = ShmRing.create(
            self.config.ring_slots, self._slot_bytes
        )
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                handle.index,
                request_ring.name,
                response_ring.name,
                self._heartbeat_shm.name,
                child_conn,
                self._worker_config(),
            ),
            name=f"{self._id}-worker-{handle.index}"
                 f".g{handle.generation}",
            daemon=True,
        )
        if self._heartbeat is not None:
            self._heartbeat[handle.index] = time.monotonic()
        process.start()
        child_conn.close()
        handle.process = process
        handle.request_ring = request_ring
        handle.response_ring = response_ring
        handle.conn = parent_conn
        handle.started_at = time.monotonic()
        handle.recovered = False
        if process.pid is not None:
            lane = f"worker-{handle.index}"
            if handle.generation > 1:
                lane += f".g{handle.generation}"
            self._process_names[process.pid] = lane
        self.metrics.events.emit(
            "worker_start", worker=handle.index,
            generation=handle.generation, pid=process.pid,
        )

    def _absorb_obs(self, handle: "_WorkerHandle", payload: Any) -> None:
        """Bank spans/profile a worker shipped over the control pipe."""
        if not isinstance(payload, dict):
            return
        spans = payload.get("trace_spans")
        if spans:
            self._worker_spans.extend(spans)
        profile = payload.get("profile")
        if profile:
            lane = f"worker-{handle.index}"
            if handle.generation > 1:
                lane += f".g{handle.generation}"
            self._worker_profiles[lane] = profile

    def _absorb_control_message(
        self, handle: "_WorkerHandle", kind: str, payload: Any
    ) -> None:
        if kind == "stats" and isinstance(payload, dict):
            self._absorb_obs(
                handle,
                {
                    "trace_spans": payload.pop("trace_spans", None),
                    "profile": payload.pop("profile", None),
                },
            )
            handle.last_stats = payload
        elif kind == "bye":
            self._absorb_obs(handle, payload)

    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Stop workers and release every shared segment."""
        for handle in self._workers:
            if handle.conn is not None:
                try:
                    handle.conn.send("shutdown")
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + timeout_s
        # Collect each worker's farewell (buffered spans, final
        # profile) before joining; a worker that died uncleanly simply
        # has nothing to say.
        for handle in self._workers:
            conn = handle.conn
            if conn is None:
                continue
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    if not conn.poll(min(0.5, remaining)):
                        break
                    kind, _index, payload = conn.recv()
                except (EOFError, OSError):
                    break
                self._absorb_control_message(handle, kind, payload)
                if kind == "bye":
                    break
        for handle in self._workers:
            if handle.process is None:
                continue
            handle.process.join(max(0.05, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            self._teardown_worker_ipc(handle)
        if self._heartbeat_shm is not None:
            self._heartbeat = None
            self._heartbeat_shm.close()
            try:
                self._heartbeat_shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._heartbeat_shm = None
        self._started = False

    def _teardown_worker_ipc(self, handle: _WorkerHandle) -> None:
        for ring in (handle.request_ring, handle.response_ring):
            if ring is not None:
                ring.close()
                ring.unlink()
        handle.request_ring = None
        handle.response_ring = None
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None

    # -- session management ---------------------------------------------
    def open_session(self, session_id: Optional[str] = None) -> str:
        """Admit a client stream, pinning it to the least-loaded worker."""
        self._require_started()
        if session_id is None:
            session_id = f"{self._id}-s{next(self._session_counter)}"
        encode_session_id(session_id)  # validates header width
        if session_id in self._sessions:
            raise GatewayError(
                f"session id {session_id!r} already exists"
            )
        handle = min(self._workers, key=lambda h: len(h.sessions))
        handle.sessions.add(session_id)
        self._sessions[session_id] = handle.index
        self._closed_sessions.discard(session_id)
        self._frame_ids[session_id] = -1
        self.metrics.counter("gateway.sessions_opened").increment()
        return session_id

    def close_session(self, session_id: str) -> None:
        handle = self._handle_for(session_id)
        if session_id in self._closed_sessions:
            return
        self._closed_sessions.add(session_id)
        if handle.request_ring is not None:
            if not handle.request_ring.push(KIND_CLOSE, session_id, 0):
                self.pump()
                handle = self._handle_for(session_id)
                if handle.request_ring is not None:
                    handle.request_ring.push(KIND_CLOSE, session_id, 0)
        self.metrics.counter("gateway.sessions_closed").increment()

    def session_to_worker(self) -> Dict[str, int]:
        """Sticky session->worker assignment (for tests/operators)."""
        return dict(self._sessions)

    def _handle_for(self, session_id: str) -> _WorkerHandle:
        index = self._sessions.get(session_id)
        if index is None:
            raise UnknownSessionError(
                f"unknown session id {session_id!r}"
            )
        return self._workers[index]

    def _require_started(self) -> None:
        if not self._started:
            raise GatewayError(
                "gateway is not running; call start() first"
            )

    # -- data path ------------------------------------------------------
    def submit(self, session_id: str, raw_frame: np.ndarray) -> bool:
        """Forward one raw IF frame to the session's worker."""
        return self._forward(session_id, KIND_FRAME_RAW, raw_frame)

    def submit_cube(
        self, session_id: str, cube_frame: np.ndarray
    ) -> bool:
        """Forward one preprocessed ``(V, D, A)`` cube frame."""
        return self._forward(session_id, KIND_FRAME_CUBE, cube_frame)

    def _forward(
        self, session_id: str, kind: int, frame: np.ndarray
    ) -> bool:
        self._require_started()
        handle = self._handle_for(session_id)
        if session_id in self._closed_sessions:
            raise GatewayError(
                f"session {session_id!r} is closed"
            )
        frame = np.ascontiguousarray(frame)
        frame_id = self._frame_ids[session_id] + 1
        submit_start = time.perf_counter()
        # The submit span is the frame's trace root on the dispatcher
        # side; its (trace_id, span_id) rides in the slot header so the
        # worker's spans join this trace across the process boundary.
        with self._tracer.span(
            "gateway.submit", session=session_id, frame_id=frame_id
        ) as span:
            trace_id = span.trace_id if span is not None else 0
            parent_span_id = span.span_id if span is not None else 0
            if handle.request_ring is None or not handle.request_ring.push(
                kind, session_id, frame_id, frame,
                trace_id=trace_id, parent_span_id=parent_span_id,
                enqueue_ts=time.time(),
            ):
                # Ring full (or the worker is mid-restart): give the
                # pool one pump to drain, then apply explicit
                # backpressure.
                self.pump()
                handle = self._handle_for(session_id)
                if handle.request_ring is None or not (
                    handle.request_ring.push(
                        kind, session_id, frame_id, frame,
                        trace_id=trace_id, parent_span_id=parent_span_id,
                        enqueue_ts=time.time(),
                    )
                ):
                    self.metrics.counter(
                        "gateway.ring_rejects"
                    ).increment()
                    raise QueueFullError(
                        f"worker {handle.index} request ring is full "
                        f"({self.config.ring_slots} slots); rejecting "
                        f"frame {frame_id} of {session_id!r}"
                    )
        self.metrics.histogram("gateway.stage.submit_s").observe(
            time.perf_counter() - submit_start
        )
        self._frame_ids[session_id] = frame_id
        handle.inflight[(session_id, frame_id)] = _InFlight(
            session_id=session_id, frame_id=frame_id, kind=kind,
            payload=frame, pushed_at=time.perf_counter(),
            trace_id=trace_id, parent_span_id=parent_span_id,
        )
        self.metrics.counter("gateway.frames_forwarded").increment()
        return True

    # -- response path --------------------------------------------------
    def pump(self, check_liveness: bool = True) -> List[PoseResult]:
        """Drain every worker's response ring; detect/recover crashes.

        Returns the poses that arrived during this pump, in arrival
        order. Call it frequently -- it is the gateway's event loop
        tick.
        """
        self._require_started()
        results: List[PoseResult] = []
        for handle in self._workers:
            results.extend(self._drain_worker(handle))
        if check_liveness:
            for handle in self._workers:
                if self._worker_is_dead(handle):
                    self._recover_worker(handle, results)
                elif not handle.recovered:
                    beat = (
                        self._heartbeat[handle.index]
                        if self._heartbeat is not None else 0.0
                    )
                    if beat >= handle.started_at:
                        handle.recovered = True
        return results

    def _drain_worker(
        self, handle: _WorkerHandle, limit: Optional[int] = None
    ) -> List[PoseResult]:
        results: List[PoseResult] = []
        ring = handle.response_ring
        if ring is None:
            return results
        budget = limit if limit is not None else 4 * self.config.ring_slots
        for _ in range(budget):
            message = ring.pop()
            if message is None:
                break
            key = (message.session_id, message.frame_id)
            if message.kind == KIND_ACK:
                entry = handle.inflight.pop(key, None)
                self.metrics.counter("gateway.acks").increment()
                if message.flags == ACK_ENQUEUED:
                    handle.awaiting_pose[key] = (
                        entry.pushed_at
                        if entry is not None
                        else time.perf_counter()
                    )
                elif message.flags == ACK_QUARANTINED:
                    self.metrics.counter(
                        "gateway.frames_quarantined"
                    ).increment()
            elif message.kind == KIND_POSE:
                pushed_at = handle.awaiting_pose.pop(
                    key, time.perf_counter()
                )
                results.append(
                    PoseResult(
                        session_id=message.session_id,
                        frame_index=message.frame_id,
                        joints=message.payload,
                        latency_s=time.perf_counter() - pushed_at,
                        corr_id=(
                            f"{message.session_id}#{message.frame_id}"
                        ),
                    )
                )
                self.metrics.counter("gateway.poses").increment()
                self.metrics.histogram("gateway.latency_s").observe(
                    results[-1].latency_s
                )
                if message.enqueue_ts > 0:
                    # Pose-return stage: time the answer sat on the
                    # response ring before this pump collected it.
                    returned_at = time.time()
                    self.metrics.histogram(
                        "gateway.stage.pose_return_s"
                    ).observe(max(0.0, returned_at - message.enqueue_ts))
                    if message.trace_id:
                        self._tracer.record(
                            "gateway.pose_return",
                            self._tracer.rel_from_unix(
                                message.enqueue_ts
                            ),
                            self._tracer.rel_from_unix(returned_at),
                            trace_id=message.trace_id,
                            parent_id=message.parent_span_id or None,
                            correlation_id=results[-1].corr_id,
                            frame_id=message.frame_id,
                            session=message.session_id,
                        )
            elif message.kind == KIND_UNSERVED:
                handle.awaiting_pose.pop(key, None)
                self.dead_letters.record(
                    session_id=message.session_id,
                    frame_index=message.frame_id,
                    stage="worker-forward",
                    reason="request quarantined during batch forward",
                    corr_id=(
                        f"{message.session_id}#{message.frame_id}"
                    ),
                )
                self.metrics.counter("gateway.unserved").increment()
            elif message.kind == KIND_CLOSED:
                handle.sessions.discard(message.session_id)
        return results

    # -- crash recovery -------------------------------------------------
    def _worker_is_dead(self, handle: _WorkerHandle) -> bool:
        if handle.process is None:
            return False
        if not handle.process.is_alive():
            return True
        if self._heartbeat is None:
            return False
        age = time.monotonic() - self._heartbeat[handle.index]
        return age > self.config.heartbeat_timeout_s

    def _recover_worker(
        self, handle: _WorkerHandle, results: List[PoseResult]
    ) -> None:
        """Restart a dead worker; replay or dead-letter its in-flight.

        Order matters: drain the old response ring first (acks/poses
        published before the crash are still valid, and land in
        ``results``), then account every remaining in-flight frame,
        then bring up the replacement.
        """
        exitcode = (
            handle.process.exitcode if handle.process is not None else None
        )
        self.metrics.counter("gateway.worker_deaths").increment()
        self.metrics.events.emit(
            "worker_death", worker=handle.index, exitcode=exitcode,
            generation=handle.generation,
        )
        results.extend(self._drain_worker(handle))
        # Frames the dead worker acked as enqueued but never answered:
        # their window/queue state died with the process.
        for (sid, fid) in list(handle.awaiting_pose):
            self.dead_letters.record(
                session_id=sid, frame_index=fid, stage="worker-crash",
                reason=f"worker {handle.index} died (exit {exitcode}) "
                       "before serving the segment",
                corr_id=f"{sid}#{fid}",
            )
            self.metrics.counter(
                "gateway.crash_dead_letters"
            ).increment()
        handle.awaiting_pose.clear()
        replay = list(handle.inflight.values())
        handle.inflight.clear()

        if handle.process is not None:
            handle.process.join(0.1)
        self._teardown_worker_ipc(handle)
        if handle.restarts >= self.config.max_restarts:
            handle.process = None
            for entry in replay:
                self.dead_letters.record(
                    session_id=entry.session_id,
                    frame_index=entry.frame_id,
                    stage="worker-crash",
                    reason=f"worker {handle.index} exceeded "
                           f"{self.config.max_restarts} restarts",
                    corr_id=f"{entry.session_id}#{entry.frame_id}",
                )
            raise WorkerCrashedError(
                f"worker {handle.index} died (exit {exitcode}) and "
                f"exceeded its restart budget of "
                f"{self.config.max_restarts}"
            )
        handle.restarts += 1
        self.metrics.counter("gateway.worker_restarts").increment()
        self._launch(handle)
        # Replay unacked frames in original order into the fresh worker
        # (its windows restart empty; the frames are re-acked normally).
        for entry in replay:
            if entry.session_id in self._closed_sessions:
                continue
            # Replays re-propagate the frame's original trace context:
            # the restarted worker's spans stay parented to the submit
            # span that first forwarded the frame.
            if handle.request_ring.push(
                entry.kind, entry.session_id, entry.frame_id,
                entry.payload, trace_id=entry.trace_id,
                parent_span_id=entry.parent_span_id,
                enqueue_ts=time.time(),
            ):
                handle.inflight[
                    (entry.session_id, entry.frame_id)
                ] = entry
                self.metrics.counter("gateway.frames_replayed").increment()
            else:  # pragma: no cover - ring sized >= inflight bound
                self.dead_letters.record(
                    session_id=entry.session_id,
                    frame_index=entry.frame_id,
                    stage="worker-crash",
                    reason="replay ring full after restart",
                    corr_id=f"{entry.session_id}#{entry.frame_id}",
                )
        self.metrics.events.emit(
            "worker_restart", worker=handle.index,
            generation=handle.generation, replayed=len(replay),
        )

    # -- draining -------------------------------------------------------
    def drain(self, timeout_s: float = 30.0) -> List[PoseResult]:
        """Pump until no frame is in flight (or the deadline passes)."""
        deadline = time.monotonic() + timeout_s
        results: List[PoseResult] = []
        while time.monotonic() < deadline:
            results.extend(self.pump())
            if not any(
                handle.inflight or handle.awaiting_pose
                for handle in self._workers
            ):
                return results
            time.sleep(0.0005)
        raise GatewayError(
            f"drain timed out after {timeout_s:.1f}s with "
            f"{sum(len(h.inflight) for h in self._workers)} unacked and "
            f"{sum(len(h.awaiting_pose) for h in self._workers)} "
            "unanswered frames"
        )

    def outstanding(self) -> int:
        """Frames forwarded but not yet answered (ack/pose pending)."""
        return sum(
            len(handle.inflight) + len(handle.awaiting_pose)
            for handle in self._workers
        )

    # -- aggregated observability ---------------------------------------
    def request_stats(self, timeout_s: float = 2.0) -> None:
        """Ask every live worker for a fresh stats snapshot."""
        pending = []
        for handle in self._workers:
            if handle.conn is None or not handle.alive():
                continue
            try:
                handle.conn.send("stats")
                pending.append(handle)
            except (BrokenPipeError, OSError):
                continue
        deadline = time.monotonic() + timeout_s
        for handle in pending:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if handle.conn.poll(remaining):
                    kind, _index, payload = handle.conn.recv()
                    self._absorb_control_message(handle, kind, payload)
            except (EOFError, OSError):  # pragma: no cover
                continue

    def health(self) -> HealthState:
        """Aggregated ladder: worst worker-reported health, clamped to
        at least DEGRADED while any worker is dead or not yet proven
        recovered after a restart."""
        states = [HealthState.HEALTHY]
        degraded = False
        for handle in self._workers:
            if not handle.alive() or not handle.recovered:
                degraded = True
            if handle.last_stats is not None:
                reported = handle.last_stats.get("health")
                if reported is not None:
                    states.append(HealthState(reported))
        overall = HealthState.worst(*states)
        if degraded:
            overall = HealthState.worst(overall, HealthState.DEGRADED)
        return overall

    def _publish_gauges(self, registry: MetricsRegistry) -> None:
        registry.gauge("gateway.health").set(self.health().code)
        registry.gauge("gateway.open_sessions").set(
            len(self._sessions) - len(self._closed_sessions)
        )
        for handle in self._workers:
            if handle.request_ring is not None:
                registry.gauge(
                    f"gateway.ring_occupancy.w{handle.index}"
                ).set(handle.request_ring.occupancy())
            registry.gauge(
                f"gateway.worker_alive.w{handle.index}"
            ).set(1.0 if handle.alive() else 0.0)
        # Merge worker counters into the dispatcher registry so one
        # scrape shows pool-wide totals (refreshed by request_stats()).
        merged: Dict[str, float] = {}
        for handle in self._workers:
            if not handle.last_stats:
                continue
            for name, value in handle.last_stats.get(
                "counters", {}
            ).items():
                merged[name] = merged.get(name, 0.0) + float(value)
        for name, value in merged.items():
            registry.gauge(f"workers.{name}").set(value)
        # Mirror the merged stage-latency ledger as gauges so one
        # Prometheus scrape of the dispatcher shows pool-wide stage
        # timings (the dispatcher-side stages are real histograms in
        # this registry already).
        for stage, entry in self.stage_latency().items():
            for key in ("mean", "p95", "max"):
                registry.gauge(f"stage.{stage}.{key}_s").set(entry[key])
            registry.gauge(f"stage.{stage}.count").set(entry["count"])

    # Worker-side ledger stages (shipped in worker stats histograms)
    # and dispatcher-side stages (this registry's own histograms).
    _WORKER_STAGES = {
        "stage.ring_wait_s": "ring_wait",
        "stage.ingest_s": "ingest",
        "stage.batch_wait_s": "batch_wait",
        "stage.forward_s": "forward",
    }
    _DISPATCHER_STAGES = {
        "gateway.stage.submit_s": "submit",
        "gateway.stage.pose_return_s": "pose_return",
        "gateway.latency_s": "e2e",
    }

    def stage_latency(self) -> Dict[str, Dict[str, float]]:
        """The per-frame stage ledger, merged across the pool.

        Maps stage name (``submit``/``ring_wait``/``ingest``/
        ``batch_wait``/``forward``/``pose_return``/``e2e``) to merged
        count/sum/mean and worst-case p95/max. Worker-side stages come
        from the histograms in each worker's latest stats snapshot
        (refresh with :meth:`request_stats`); quantiles are maxed, not
        averaged, so the merged view never understates the tail.
        """
        stages: Dict[str, Dict[str, float]] = {}

        def absorb(stage: str, summary: Dict[str, float]) -> None:
            if not summary or not summary.get("count"):
                return
            entry = stages.setdefault(
                stage,
                {"count": 0, "sum": 0.0, "mean": 0.0, "p50": 0.0,
                 "p95": 0.0, "max": 0.0},
            )
            entry["count"] += summary["count"]
            entry["sum"] += summary["sum"]
            entry["p50"] = max(entry["p50"], summary["p50"])
            entry["p95"] = max(entry["p95"], summary["p95"])
            entry["max"] = max(entry["max"], summary["max"])

        for handle in self._workers:
            if not handle.last_stats:
                continue
            histograms = handle.last_stats.get("histograms", {})
            for name, stage in self._WORKER_STAGES.items():
                absorb(stage, histograms.get(name, {}))
        with self.metrics._lock:
            own = dict(self.metrics._histograms)
        for name, stage in self._DISPATCHER_STAGES.items():
            if name in own:
                absorb(stage, own[name].summary())
        for entry in stages.values():
            if entry["count"]:
                entry["mean"] = entry["sum"] / entry["count"]
        return stages

    def stats(
        self, refresh: bool = True, timeout_s: float = 2.0
    ) -> Dict[str, Any]:
        """One merged snapshot of the dispatcher and every worker."""
        if refresh and self._started:
            self.request_stats(timeout_s=timeout_s)
        snapshot = self.metrics.snapshot()
        snapshot["health"] = self.health().value
        snapshot["stage_latency"] = self.stage_latency()
        snapshot["dead_letters"] = {
            **self.dead_letters.stats(),
            "tail": self.dead_letters.tail(5),
        }
        snapshot["sessions"] = {
            sid: {
                "worker": index,
                "frames": self._frame_ids.get(sid, -1) + 1,
                "closed": sid in self._closed_sessions,
            }
            for sid, index in self._sessions.items()
        }
        snapshot["workers"] = {}
        for handle in self._workers:
            entry: Dict[str, Any] = {
                "alive": handle.alive(),
                "pid": (
                    handle.process.pid if handle.process else None
                ),
                "generation": handle.generation,
                "restarts": handle.restarts,
                "sessions": len(handle.sessions),
                "inflight": len(handle.inflight),
                "awaiting_pose": len(handle.awaiting_pose),
            }
            if handle.request_ring is not None:
                entry["request_ring"] = handle.request_ring.stats()
            if handle.response_ring is not None:
                entry["response_ring"] = handle.response_ring.stats()
            if handle.last_stats is not None:
                entry["serving"] = {
                    "health": handle.last_stats.get("health"),
                    "counters": handle.last_stats.get("counters", {}),
                }
                entry["plan_artifact"] = handle.last_stats.get(
                    "worker", {}
                ).get("plan_artifact")
            snapshot["workers"][handle.index] = entry
        return snapshot

    def prometheus(self) -> str:
        """Merged Prometheus exposition of the whole pool."""
        return self.metrics.to_prometheus()

    # -- distributed trace / profile export -----------------------------
    def trace_records(self) -> List[Dict[str, Any]]:
        """Every span this gateway knows about, dispatcher + workers.

        Worker spans arrive with stats replies and shutdown byes; call
        :meth:`request_stats` (or :meth:`stats`) first to pull the
        latest batch from live workers.
        """
        records = list(self._worker_spans)
        records.extend(self._tracer.spans())
        return records

    def export_chrome(self, path: str) -> str:
        """Merge dispatcher and worker spans into one Chrome trace.

        Each process gets its own named lane (``dispatcher``,
        ``worker-0``, ...) via metadata events; spans align on their
        wall-clock timestamps, and worker-side forward spans point at
        their dispatcher-side submit parents through the propagated
        context.
        """
        return obs_trace.export_chrome_merged(
            path, self.trace_records(), dict(self._process_names)
        )

    def merged_profile(
        self, extra: Optional[Dict[str, Dict[str, Any]]] = None
    ) -> Dict[str, Any]:
        """All workers' sampling profiles merged under per-lane roots.

        ``extra`` adds more lanes (the CLI passes the dispatcher's own
        profiler dict as ``{"dispatcher": ...}``).
        """
        parts: Dict[str, Dict[str, Any]] = dict(self._worker_profiles)
        if extra:
            parts.update(extra)
        return merge_profiles(parts)
