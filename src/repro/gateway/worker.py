"""The gateway worker process: one full serving stack per core.

Each worker attaches to its two shared-memory rings, builds the
*existing* serving stack (CubeBuilder + HandJointRegressor behind the
compiled-plan circuit breaker, quarantine, per-session error budgets --
an unmodified :class:`~repro.serving.InferenceServer`) and loops:

* pull frames off the request ring (the payload was memcpy'd into
  shared memory by the dispatcher -- nothing was pickled),
* feed them into worker-local sessions (sticky session->worker affinity
  means a session's :class:`~repro.serving.FrameWindow` lives entirely
  in one worker),
* acknowledge **every** frame on the response ring (absorbed /
  enqueued / quarantined), and ship each regressed pose back with the
  dispatcher's frame id,
* bump a heartbeat slot and answer control-pipe requests (stats
  snapshots, shutdown).

The control pipe carries only small picklable metadata (stats dicts,
shutdown commands); array payloads move exclusively through the rings.

Distributed tracing: every frame arrives with the dispatcher's trace
context (``trace_id``/``parent_span_id``/``enqueue_ts``) in the ring
slot header. The worker records a ``gateway.ring_wait`` span covering
the time the frame sat in the ring, opens its ingest span *under* the
propagated context, and attributes each batched forward back to the
frames it served as per-frame ``worker.forward`` spans parented to the
dispatcher-side submit span. Completed spans buffer in the worker's
process-local tracer and ship back (as plain dicts) with every stats
reply and with the final ``bye`` -- the control pipe stays
metadata-only. An optional sampling profiler
(``WorkerConfig.profile_hz``) rides along the same way.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import DspConfig, ModelConfig, RadarConfig
from repro.gateway.ring import (
    ACK_ENQUEUED,
    ACK_QUARANTINED,
    ACK_WINDOW,
    KIND_ACK,
    KIND_CLOSE,
    KIND_CLOSED,
    KIND_FRAME_CUBE,
    KIND_FRAME_RAW,
    KIND_POSE,
    KIND_UNSERVED,
    ShmRing,
)
from repro.obs import trace as obs_trace
from repro.obs.profiler import SamplingProfiler
from repro.serving import ServingConfig


@dataclass
class WorkerConfig:
    """Everything a worker needs to rebuild the serving stack.

    Must stay picklable (it crosses the process boundary at spawn
    time); holds only configs and scalars, never arrays or live
    objects.
    """

    radar: RadarConfig = field(default_factory=RadarConfig)
    dsp: DspConfig = field(default_factory=DspConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    seed: int = 0
    weights_path: Optional[str] = None
    plan_path: Optional[str] = None
    heartbeat_interval_s: float = 0.05
    idle_sleep_s: float = 0.0005
    # Sampling profiler rate inside the worker (0 = disabled); the
    # profile ships back with stats replies and the final bye.
    profile_hz: float = 0.0
    # Chaos knobs (forwarded to a worker-local FaultInjector).
    chaos_frame_rate: float = 0.0
    chaos_forward_rate: float = 0.0
    chaos_compile_fail: bool = False
    chaos_seed: int = 0

    def wants_chaos(self) -> bool:
        return (
            self.chaos_frame_rate > 0
            or self.chaos_forward_rate > 0
            or self.chaos_compile_fail
        )


def _build_server(config: WorkerConfig):
    import dataclasses

    from repro.core.regressor import HandJointRegressor
    from repro.dsp.radar_cube import CubeBuilder
    from repro.resilience import FaultInjector
    from repro.serving import InferenceServer

    serving = config.serving
    # Workers always run the block policy: the serving loop drains the
    # queue before it can fill, so no request admitted to a worker is
    # ever dropped there -- backpressure is the request ring filling up,
    # which the dispatcher surfaces to its callers.
    if serving.policy != "block":
        serving = dataclasses.replace(serving, policy="block")
    if serving.queue_capacity <= serving.max_batch_size:
        serving = dataclasses.replace(
            serving, queue_capacity=2 * serving.max_batch_size
        )
    config = dataclasses.replace(config, serving=serving)
    regressor = HandJointRegressor(
        config.dsp, config.model, seed=config.seed
    )
    if config.weights_path is not None:
        from repro.nn.serialization import load_state

        load_state(regressor, config.weights_path)
    regressor.eval()
    if config.plan_path is not None:
        # Load the pre-compiled plan artifact instead of tracing and
        # folding in every worker process: N workers spawn against one
        # exported plan (folded weights, quant ranges, memory plans).
        from repro.errors import SerializationError
        from repro.nn.serialization import (
            attach_plan,
            load_plan,
            plan_matches_config,
        )
        from repro.obs.logging import get_logger

        compiled, plan_meta = load_plan(config.plan_path, with_meta=True)
        if plan_meta.get("config", {}).get("dsp") and not (
            plan_matches_config(plan_meta, config.dsp, config.model)
        ):
            raise SerializationError(
                f"plan artifact {config.plan_path} was exported for a "
                "different dsp/model config than this worker's"
            )
        attach_plan(regressor, compiled)
        get_logger("gateway.worker").info(
            "plan_artifact_loaded",
            path=config.plan_path,
            ops=len(compiled.plan.ops),
            calibrated=bool(compiled.act_ranges),
            memory_plans=len(compiled._memory_plans),
        )
    injector = None
    if config.wants_chaos():
        injector = FaultInjector(
            frame_corrupt_rate=config.chaos_frame_rate,
            forward_fail_rate=config.chaos_forward_rate,
            compile_fail=config.chaos_compile_fail,
            seed=config.chaos_seed,
        )
    builder = CubeBuilder(config.radar, config.dsp)
    return InferenceServer(
        builder, regressor, config.serving, fault_injector=injector
    )


def _push_blocking(
    ring: ShmRing, kind, session_id, frame_id, payload=None, flags=0,
    deadline_s: float = 5.0, trace_id: int = 0, parent_span_id: int = 0,
) -> bool:
    """Push a response, briefly yielding while the dispatcher drains.

    Gives up (dropping the message) after ``deadline_s`` so a dead
    dispatcher cannot wedge the worker; the dispatcher notices the gap
    through its in-flight accounting. Responses are stamped with a
    fresh ``enqueue_ts`` so the dispatcher can measure response-ring
    wait (the pose-return stage), and echo the frame's original trace
    context so the dispatcher can finish the frame's trace without
    remembering it.
    """
    deadline = time.perf_counter() + deadline_s
    while not ring.push(
        kind, session_id, frame_id, payload, flags,
        trace_id=trace_id, parent_span_id=parent_span_id,
        enqueue_ts=time.time(),
    ):
        if time.perf_counter() >= deadline:
            return False
        time.sleep(0.0002)
    return True


def worker_main(
    worker_index: int,
    request_ring_name: str,
    response_ring_name: str,
    heartbeat_name: str,
    conn,
    config: WorkerConfig,
) -> None:
    """Entry point run inside each gateway worker process."""
    request_ring = ShmRing.attach(request_ring_name)
    response_ring = ShmRing.attach(response_ring_name)
    heartbeat_shm = None
    heartbeat = None
    try:
        from multiprocessing import shared_memory

        # Attaching re-registers the name with the tracker shared with
        # the dispatcher -- a set-add no-op; see ShmRing.attach.
        heartbeat_shm = shared_memory.SharedMemory(name=heartbeat_name)
        heartbeat = np.ndarray(
            (max(worker_index + 1, 1),),
            dtype=np.float64,
            buffer=heartbeat_shm.buf,
        )
    except FileNotFoundError:  # pragma: no cover - heartbeat optional
        heartbeat = None

    server = _build_server(config)
    serving = config.serving
    opened: Dict[str, bool] = {}
    # Worker-local frame counter per session: Session.feed_cube labels
    # segments with the *worker's* frame index (frames the window
    # actually absorbed); this maps those back to dispatcher frame ids.
    local_index: Dict[str, int] = {}
    pose_ids: Dict[Tuple[str, int], int] = {}
    # Trace context of every enqueued-but-unserved frame, keyed like
    # pose_ids: (trace_id, parent_span_id, enqueue perf_counter).
    pending_ctx: Dict[Tuple[str, int], Tuple[int, int, float]] = {}
    tracer = obs_trace.get_tracer()
    # A forked worker inherits the dispatcher's finished-span buffer;
    # drop it so those spans are not shipped back as duplicates.
    tracer.clear()
    profiler: Optional[SamplingProfiler] = None
    if config.profile_hz > 0:
        profiler = SamplingProfiler(hz=config.profile_hz).start()
    last_beat = 0.0
    running = True

    def obs_payload() -> dict:
        """Spans (and profile) to ship over the control pipe."""
        return {
            "trace_spans": tracer.drain(),
            "profile": profiler.to_dict() if profiler else None,
        }

    def beat() -> None:
        nonlocal last_beat
        # Monotonic, matching the dispatcher's liveness deadline clock
        # (CLOCK_MONOTONIC is system-wide, so the comparison is valid
        # across processes); wall-clock jumps must not fake staleness.
        now = time.monotonic()
        if heartbeat is not None and (
            now - last_beat >= config.heartbeat_interval_s
        ):
            heartbeat[worker_index] = now
            last_beat = now

    def flush_results() -> None:
        step_start = time.perf_counter()
        results = server.step()
        step_end = time.perf_counter()
        for result in results:
            key = (result.session_id, result.frame_index)
            frame_id = pose_ids.pop(key, result.frame_index)
            ctx = pending_ctx.pop(key, None)
            if ctx is not None:
                # Attribute the fused forward back to this frame: a
                # per-frame span parented (via the propagated context)
                # to the dispatcher-side submit span.
                tracer.record(
                    "worker.forward",
                    tracer.rel_from_perf(step_start),
                    tracer.rel_from_perf(step_end),
                    trace_id=ctx[0] or None,
                    parent_id=ctx[1] or None,
                    correlation_id=result.corr_id,
                    frame_id=frame_id,
                    session=result.session_id,
                    batch=result.batch_size,
                    cached=result.cached,
                    batch_wait_s=max(0.0, step_start - ctx[2]),
                )
            _push_blocking(
                response_ring, KIND_POSE, result.session_id, frame_id,
                np.ascontiguousarray(result.joints),
                trace_id=ctx[0] if ctx else 0,
                parent_span_id=ctx[1] if ctx else 0,
            )
        for session_id, frame_index in server.last_unserved:
            key = (session_id, frame_index)
            frame_id = pose_ids.pop(key, frame_index)
            ctx = pending_ctx.pop(key, None)
            _push_blocking(
                response_ring, KIND_UNSERVED, session_id, frame_id,
                trace_id=ctx[0] if ctx else 0,
                parent_span_id=ctx[1] if ctx else 0,
            )

    beat()
    while running:
        progress = False
        message = request_ring.pop()
        if message is not None:
            progress = True
            sid = message.session_id
            if message.kind == KIND_CLOSE:
                if sid in opened:
                    server.close_session(sid)
                    opened.pop(sid, None)
                    local_index.pop(sid, None)
                _push_blocking(
                    response_ring, KIND_CLOSED, sid, message.frame_id
                )
            elif message.kind in (KIND_FRAME_RAW, KIND_FRAME_CUBE):
                if sid not in opened:
                    server.open_session(sid)
                    opened[sid] = True
                    local_index.setdefault(sid, -1)
                # Keep the queue below the inline-step threshold so
                # every pose comes out of flush_results() with its
                # dispatcher frame id attached.
                if len(server.queue) >= serving.max_batch_size:
                    flush_results()
                # Stage ledger: ring-wait is dequeue wall time minus the
                # dispatcher's enqueue stamp in the slot header.
                dequeued_at = time.time()
                if message.enqueue_ts > 0:
                    ring_wait = max(0.0, dequeued_at - message.enqueue_ts)
                    server.metrics.histogram(
                        "stage.ring_wait_s"
                    ).observe(ring_wait)
                    if message.trace_id:
                        tracer.record(
                            "gateway.ring_wait",
                            tracer.rel_from_unix(message.enqueue_ts),
                            tracer.rel_from_unix(dequeued_at),
                            trace_id=message.trace_id,
                            parent_id=message.parent_span_id or None,
                            frame_id=message.frame_id,
                            session=sid,
                        )
                before = server.session_stats(sid)["quarantined"]
                ingest_start = time.perf_counter()
                with tracer.remote_context(
                    message.trace_id, message.parent_span_id
                ):
                    with tracer.span(
                        "worker.ingest", session=sid,
                        frame_id=message.frame_id,
                    ):
                        if message.kind == KIND_FRAME_RAW:
                            enqueued = server.submit(sid, message.payload)
                        else:
                            enqueued = server.submit_cube(
                                sid, message.payload
                            )
                server.metrics.histogram("stage.ingest_s").observe(
                    time.perf_counter() - ingest_start
                )
                if server.session_stats(sid)["quarantined"] > before:
                    flag = ACK_QUARANTINED
                else:
                    local_index[sid] += 1
                    if enqueued:
                        flag = ACK_ENQUEUED
                        pose_ids[(sid, local_index[sid])] = (
                            message.frame_id
                        )
                        pending_ctx[(sid, local_index[sid])] = (
                            message.trace_id,
                            message.parent_span_id,
                            time.perf_counter(),
                        )
                    else:
                        flag = ACK_WINDOW
                _push_blocking(
                    response_ring, KIND_ACK, sid, message.frame_id,
                    flags=flag, trace_id=message.trace_id,
                    parent_span_id=message.parent_span_id,
                )
        if len(server.queue) >= serving.max_batch_size or (
            message is None and len(server.queue) > 0
        ):
            flush_results()
            progress = True

        beat()
        # Control pipe: stats requests and shutdown. Never blocks.
        while conn.poll(0):
            try:
                command = conn.recv()
            except (EOFError, OSError):
                running = False
                break
            if command == "shutdown":
                running = False
            elif command == "stats":
                stats = server.stats()
                stats["worker"] = {
                    "index": worker_index,
                    "pid": os.getpid(),
                    "request_ring": request_ring.stats(),
                    "response_ring": response_ring.stats(),
                    "plan_artifact": config.plan_path,
                }
                stats.update(obs_payload())
                try:
                    conn.send(("stats", worker_index, stats))
                except (BrokenPipeError, OSError):
                    running = False
        if os.getppid() == 1:
            # The dispatcher died and we were re-parented to init;
            # there is nobody left to serve.
            running = False
        if not progress and running:
            time.sleep(config.idle_sleep_s)

    # Drain what is already queued so acked frames get answered even on
    # a graceful shutdown.
    flush_results()
    if profiler is not None:
        profiler.stop()
    try:
        conn.send(("bye", worker_index, obs_payload()))
    except (BrokenPipeError, OSError):  # pragma: no cover
        pass
    request_ring.close()
    response_ring.close()
    if heartbeat_shm is not None:
        heartbeat = None
        heartbeat_shm.close()
