"""Open-loop load generator and scaling bench for the gateway.

Simulates hundreds of client sessions with Poisson frame arrivals
against a :class:`~repro.gateway.Gateway`. The generator is
**open-loop**: arrival times are drawn up front from the seeded
exponential inter-arrival distribution and frames are dispatched when
their wall-clock moment comes, whether or not earlier frames were
answered -- the standard way to measure serving capacity without the
coordinated-omission bias of closed-loop clients. A frame refused at
the ring (gateway backpressure) stays at the head of its session's
schedule and is retried on the next tick, so the offered load is never
silently shed by the *generator* -- any loss must show up in the
gateway's own accounting.

``run_gateway_bench`` sweeps worker counts (1/2/4 by default), records
sessions/sec, frames/sec, p50/p99 end-to-end latency and ring-buffer
occupancy per count, and emits the ``BENCH_serving.json`` summary via
:func:`repro.perf.write_bench_json`. ``cpu_count`` is embedded in the
summary: on a single-core host the worker pool time-slices one core
and the speedup column reads ~1x by physics; the committed numbers are
only meaningful next to that field.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.config import DspConfig, ModelConfig, RadarConfig
from repro.errors import GatewayError, QueueFullError
from repro.gateway.dispatcher import Gateway, GatewayConfig
from repro.serving import ServingConfig


@dataclass
class LoadgenConfig:
    """Shape of the simulated client population."""

    sessions: int = 64
    frames_per_session: int = 8
    # Aggregate offered load in frames/s; 0 saturates (next frame is
    # offered as soon as the previous dispatch attempt returns).
    arrival_rate_hz: float = 0.0
    frame_pool: int = 32
    seed: int = 0
    drain_timeout_s: float = 60.0
    occupancy_sample_every: int = 16

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise GatewayError("sessions must be >= 1")
        if self.frames_per_session < 1:
            raise GatewayError("frames_per_session must be >= 1")
        if self.arrival_rate_hz < 0:
            raise GatewayError("arrival_rate_hz must be >= 0")
        if self.frame_pool < 1:
            raise GatewayError("frame_pool must be >= 1")


def make_frame_pool(
    dsp: DspConfig, count: int, seed: int
) -> np.ndarray:
    """Plausible pre-processed cube frames ``(count, V, D, A)``.

    Log-magnitude cubes are non-negative; random folded normals are a
    faithful stand-in for load testing (the network does real work on
    them) without paying the radar simulator per frame.
    """
    rng = np.random.default_rng(seed)
    return np.abs(
        rng.normal(
            size=(
                count,
                dsp.doppler_bins,
                dsp.range_bins,
                dsp.angle_bins_total,
            )
        )
    ).astype(np.float32)


def run_loadgen(
    gateway: Gateway, config: LoadgenConfig
) -> Dict[str, Any]:
    """Drive one open-loop load run against a started gateway."""
    pool = make_frame_pool(
        gateway.dsp, config.frame_pool, config.seed
    )
    rng = np.random.default_rng(config.seed + 1)
    session_ids = [
        gateway.open_session() for _ in range(config.sessions)
    ]

    # Per-session Poisson schedules, merged into one event heap of
    # (due_time, session index). Saturation mode (rate 0) treats every
    # frame as immediately due.
    per_session_rate = (
        config.arrival_rate_hz / config.sessions
        if config.arrival_rate_hz > 0
        else 0.0
    )
    next_frame = [0] * config.sessions
    heap: List = []
    for index in range(config.sessions):
        if per_session_rate > 0:
            due = rng.exponential(1.0 / per_session_rate)
        else:
            due = 0.0
        heapq.heappush(heap, (due, index))

    sent = 0
    deferred = 0
    occupancy_samples: List[int] = []
    ticks = 0
    start = time.perf_counter()
    results = []
    while heap:
        now = time.perf_counter() - start
        due, index = heap[0]
        if due > now:
            results.extend(gateway.pump())
            time.sleep(min(due - now, 0.001))
            continue
        heapq.heappop(heap)
        sid = session_ids[index]
        frame = pool[(index + next_frame[index]) % len(pool)]
        try:
            gateway.submit_cube(sid, frame)
        except QueueFullError:
            # Backpressure: keep the frame scheduled and retry after a
            # pump; the offered load is deferred, never dropped here.
            deferred += 1
            heapq.heappush(heap, (due + 0.0005, index))
            results.extend(gateway.pump())
            continue
        sent += 1
        next_frame[index] += 1
        if next_frame[index] < config.frames_per_session:
            if per_session_rate > 0:
                gap = rng.exponential(1.0 / per_session_rate)
                heapq.heappush(heap, (due + gap, index))
            else:
                heapq.heappush(heap, (due, index))
        ticks += 1
        if ticks % config.occupancy_sample_every == 0:
            snapshot = [
                handle.request_ring.occupancy()
                for handle in gateway._workers
                if handle.request_ring is not None
            ]
            if snapshot:
                occupancy_samples.append(max(snapshot))
            results.extend(gateway.pump())

    results.extend(gateway.drain(timeout_s=config.drain_timeout_s))
    elapsed = time.perf_counter() - start

    stats = gateway.stats()
    counters = stats["counters"]
    acked = int(counters.get("gateway.acks", 0))
    quarantined = int(counters.get("gateway.frames_quarantined", 0))
    dead = int(stats["dead_letters"]["total"])
    # Invariant: every submitted frame is acked by its worker (replayed
    # frames re-ack) or dead-lettered by crash recovery. "Clean" loss
    # is anything submitted that is neither.
    lost_clean = max(0, sent - acked - dead)
    latencies = np.array(
        [result.latency_s for result in results], dtype=np.float64
    )
    answered_sessions = 0
    per_session = {sid: 0 for sid in session_ids}
    for result in results:
        per_session[result.session_id] = (
            per_session.get(result.session_id, 0) + 1
        )
    expected_poses = max(
        0,
        config.frames_per_session - gateway.dsp.segment_frames + 1,
    )
    for sid in session_ids:
        if per_session.get(sid, 0) >= expected_poses or (
            expected_poses == 0
        ):
            answered_sessions += 1
    for sid in session_ids:
        gateway.close_session(sid)
    gateway.pump()

    summary: Dict[str, Any] = {
        "sessions": config.sessions,
        "frames_per_session": config.frames_per_session,
        "frames_sent": sent,
        "frames_deferred": deferred,
        "frames_acked": acked,
        "frames_quarantined": quarantined,
        "dead_letters": dead,
        "lost_clean_frames": lost_clean,
        "poses": len(results),
        "sessions_completed": answered_sessions,
        "elapsed_s": elapsed,
        "sessions_per_s": (
            answered_sessions / elapsed if elapsed > 0 else 0.0
        ),
        "frames_per_s": sent / elapsed if elapsed > 0 else 0.0,
        "latency_p50_ms": (
            float(np.percentile(latencies, 50)) * 1e3
            if latencies.size else 0.0
        ),
        "latency_p99_ms": (
            float(np.percentile(latencies, 99)) * 1e3
            if latencies.size else 0.0
        ),
        "ring_occupancy_mean": (
            float(np.mean(occupancy_samples))
            if occupancy_samples else 0.0
        ),
        "ring_occupancy_max": (
            int(np.max(occupancy_samples))
            if occupancy_samples else 0
        ),
        "worker_restarts": int(
            counters.get("gateway.worker_restarts", 0)
        ),
        # Where each frame's time went, pool-wide (milliseconds).
        "stage_latency_ms": {
            stage: {
                "count": int(entry["count"]),
                "mean": entry["mean"] * 1e3,
                "p95": entry["p95"] * 1e3,
                "max": entry["max"] * 1e3,
            }
            for stage, entry in stats.get(
                "stage_latency", {}
            ).items()
        },
    }
    return summary


def bench_configs():
    """Mid-sized stack shared with ``benchmarks/bench_serving.py``:
    real model work per frame, seconds-not-minutes total runtime."""
    radar = RadarConfig(samples_per_chirp=32, chirp_loops=8)
    dsp = DspConfig(
        range_bins=16, doppler_bins=4, azimuth_bins=8,
        elevation_bins=8, segment_frames=2,
    )
    model = ModelConfig(
        base_channels=4, hourglass_depth=1, num_blocks=1,
        feature_dim=32, lstm_hidden=32,
    )
    return radar, dsp, model


def run_gateway_bench(
    worker_counts: Sequence[int] = (1, 2, 4),
    smoke: bool = False,
    seed: int = 0,
    sessions: Optional[int] = None,
    frames_per_session: Optional[int] = None,
    start_method: str = "fork",
) -> Dict[str, Any]:
    """Sweep worker counts and summarise scaling for BENCH_serving.json."""
    radar, dsp, model = bench_configs()
    if smoke:
        worker_counts = tuple(worker_counts) or (2,)
        n_sessions = sessions if sessions is not None else 16
        n_frames = (
            frames_per_session if frames_per_session is not None else 6
        )
    else:
        n_sessions = sessions if sessions is not None else 96
        n_frames = (
            frames_per_session if frames_per_session is not None else 10
        )

    rows: List[Dict[str, Any]] = []
    for workers in worker_counts:
        gateway = Gateway(
            radar, dsp, model,
            GatewayConfig(
                workers=workers,
                ring_slots=128,
                serving=ServingConfig(
                    max_batch_size=16,
                    queue_capacity=64,
                    policy="block",
                ),
                seed=seed,
                start_method=start_method,
            ),
        )
        loadgen = LoadgenConfig(
            sessions=n_sessions,
            frames_per_session=n_frames,
            seed=seed,
        )
        with gateway:
            row = run_loadgen(gateway, loadgen)
        row = {"workers": workers, **row}
        rows.append(row)

    base = rows[0]["sessions_per_s"] or 1e-12
    for row in rows:
        row["speedup_vs_1_worker"] = row["sessions_per_s"] / base
    summary: Dict[str, Any] = {
        "benchmark": "gateway_serving",
        "smoke": smoke,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "worker_counts": list(worker_counts),
        "rows": rows,
        "speedup_max_vs_1_worker": max(
            row["speedup_vs_1_worker"] for row in rows
        ),
        "lost_clean_frames": sum(
            row["lost_clean_frames"] for row in rows
        ),
        "scaling_note": (
            "workers are OS processes; expect near-linear sessions/sec "
            "up to min(cpu_count, workers). On a 1-CPU host all worker "
            "counts time-slice one core and the speedup column stays "
            "~1x."
        ),
    }
    return summary


def print_gateway_report(summary: Dict[str, Any]) -> None:
    print(
        f"gateway bench (cpus={summary['cpu_count']}, "
        f"smoke={summary['smoke']})"
    )
    header = (
        f"{'workers':>7s} {'sess/s':>9s} {'frames/s':>9s} "
        f"{'p50 ms':>8s} {'p99 ms':>8s} {'occ max':>8s} "
        f"{'lost':>5s} {'speedup':>8s}"
    )
    print(header)
    for row in summary["rows"]:
        print(
            f"{row['workers']:>7d} {row['sessions_per_s']:>9.2f} "
            f"{row['frames_per_s']:>9.1f} "
            f"{row['latency_p50_ms']:>8.2f} "
            f"{row['latency_p99_ms']:>8.2f} "
            f"{row['ring_occupancy_max']:>8d} "
            f"{row['lost_clean_frames']:>5d} "
            f"{row['speedup_vs_1_worker']:>7.2f}x"
        )
