"""Zero-copy shared-memory ring buffers for the serving gateway.

A :class:`ShmRing` is a fixed-slot single-producer/single-consumer ring
living in one ``multiprocessing.shared_memory`` segment. Each slot holds
a small fixed header (publish sequence, message kind, session id, frame
id, dtype/shape tag, payload size) followed by the raw array payload, so
a radar frame crosses the process boundary as exactly one ``memcpy``
into the segment on the producer side -- **no pickling of array
payloads anywhere on the ingest path**. The consumer either copies the
payload out (:meth:`pop`) or maps it in place as a numpy view backed by
the shared segment (:meth:`peek` + :meth:`commit`).

Layout::

    [control 192 B][slot 0][slot 1]...[slot S-1]

    control:  magic/version/slots/slot_bytes at offset 0,
              head (producer cursor) at offset 64,
              tail (consumer cursor) at offset 128
              -- head and tail sit on their own cache lines so the two
              sides never write the same line.
    slot:     128 B header + payload area (slot_bytes - 128)

Publication order: the producer writes the payload, then the header
(whose ``seq`` field is ``head + 1``), then advances ``head``. The
consumer only reads a slot after observing ``head > tail`` and verifies
``seq == tail + 1`` as a torn-write integrity check. Cursors are
8-byte-aligned single-writer fields, which CPython writes with a single
C-level ``memcpy``; combined with the interpreter overhead separating
the payload store from the cursor store this is sound on mainstream
(x86/ARM) hosts without needing explicit fences.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

from repro.errors import GatewayError, RingLayoutError

_MAGIC = 0x6D6D5247  # "mmRG"
# v2: the header carries distributed-trace context (trace_id,
# parent_span_id, enqueue wall-clock timestamp) in its trailing 24
# bytes, filling the 128-byte header exactly.
_VERSION = 2

_CONTROL_FMT = struct.Struct("<IIQQ")  # magic, version, slots, slot_bytes
_HEAD_OFFSET = 64
_TAIL_OFFSET = 128
_SLOTS_OFFSET = 192
_CURSOR = struct.Struct("<Q")

# seq, kind, flags, frame_id, payload_bytes, dtype code, ndim,
# shape (8 x u32), session id (utf-8, zero padded),
# trace_id, parent_span_id, enqueue_ts (unix seconds; 0 = unset)
_SLOT_HEADER_FMT = struct.Struct("<QIIQQII8I32sQQd")
SLOT_HEADER_BYTES = 128
assert _SLOT_HEADER_FMT.size <= SLOT_HEADER_BYTES

SESSION_ID_BYTES = 32
_MAX_NDIM = 8

# Message kinds understood by the gateway protocol. Frames flow
# dispatcher -> worker on the request ring; acks/poses flow back on the
# response ring. Only FRAME_* and POSE messages carry a payload.
KIND_FRAME_RAW = 1
KIND_FRAME_CUBE = 2
KIND_CLOSE = 3
KIND_ACK = 10
KIND_POSE = 11
KIND_UNSERVED = 12
KIND_CLOSED = 13

# Ack dispositions (the ``flags`` field of KIND_ACK messages).
ACK_WINDOW = 1      # absorbed into the session's sliding window
ACK_ENQUEUED = 2    # emitted a segment; a pose (or UNSERVED) will follow
ACK_QUARANTINED = 3  # rejected at ingest; dead-lettered in the worker
ACK_DROPPED = 4     # lost to worker-side queue backpressure

_DTYPE_CODES = {
    np.dtype(np.float32): 1,
    np.dtype(np.float64): 2,
    np.dtype(np.complex64): 3,
    np.dtype(np.complex128): 4,
    np.dtype(np.int32): 5,
    np.dtype(np.int64): 6,
    np.dtype(np.uint8): 7,
    # Low-precision payload kinds for quantized frames/poses crossing
    # the gateway (PR 7 mixed-precision engine).
    np.dtype(np.float16): 8,
    np.dtype(np.int8): 9,
}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}


def encode_session_id(session_id: str) -> bytes:
    """Session id as the fixed-width header field (validates length)."""
    raw = session_id.encode("utf-8")
    if len(raw) > SESSION_ID_BYTES:
        raise RingLayoutError(
            f"session id {session_id!r} exceeds the {SESSION_ID_BYTES}"
            "-byte ring header field"
        )
    return raw


@dataclass
class RingMessage:
    """One decoded ring slot: the header fields plus the payload.

    ``payload`` is ``None`` for control messages, a fresh copy for
    :meth:`ShmRing.pop`, and a zero-copy view into the shared segment
    for :meth:`ShmRing.peek` (valid only until :meth:`ShmRing.commit`).

    ``trace_id``/``parent_span_id`` carry the producer's trace context
    across the process boundary (0 = no context) and ``enqueue_ts`` is
    the wall-clock instant of the push, letting the consumer measure
    ring-wait time without any extra round trip.
    """

    kind: int
    session_id: str
    frame_id: int
    flags: int = 0
    payload: Optional[np.ndarray] = None
    trace_id: int = 0
    parent_span_id: int = 0
    enqueue_ts: float = 0.0


class ShmRing:
    """Fixed-slot SPSC ring buffer in a shared-memory segment."""

    def __init__(
        self, shm: shared_memory.SharedMemory, owner: bool
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._buf = shm.buf
        magic, version, slots, slot_bytes = _CONTROL_FMT.unpack_from(
            self._buf, 0
        )
        if magic != _MAGIC or version != _VERSION:
            raise RingLayoutError(
                f"segment {shm.name!r} is not a v{_VERSION} gateway ring"
            )
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.payload_capacity = slot_bytes - SLOT_HEADER_BYTES
        # Producer-/consumer-side loss accounting (process-local).
        self.pushes = 0
        self.pops = 0
        self.full_rejects = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls, slots: int, slot_bytes: int, name: Optional[str] = None
    ) -> "ShmRing":
        if slots < 2:
            raise RingLayoutError("a ring needs at least 2 slots")
        if slot_bytes <= SLOT_HEADER_BYTES:
            raise RingLayoutError(
                f"slot_bytes must exceed the {SLOT_HEADER_BYTES}-byte "
                "slot header"
            )
        size = _SLOTS_OFFSET + slots * slot_bytes
        shm = shared_memory.SharedMemory(
            create=True, size=size, name=name
        )
        _CONTROL_FMT.pack_into(
            shm.buf, 0, _MAGIC, _VERSION, slots, slot_bytes
        )
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        # Gateway workers are children of the dispatcher, so they share
        # its resource-tracker process (POSIX passes the tracker fd to
        # both fork and spawn children); this attach's duplicate
        # REGISTER is a set-add no-op there, and the creator's unlink
        # performs the single matching unregister. Do NOT unregister
        # here: with a shared tracker that would delete the creator's
        # registration and make its unlink crash the tracker.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- cursors --------------------------------------------------------
    def _read_cursor(self, offset: int) -> int:
        return _CURSOR.unpack_from(self._buf, offset)[0]

    def _write_cursor(self, offset: int, value: int) -> None:
        _CURSOR.pack_into(self._buf, offset, value)

    @property
    def head(self) -> int:
        return self._read_cursor(_HEAD_OFFSET)

    @property
    def tail(self) -> int:
        return self._read_cursor(_TAIL_OFFSET)

    def occupancy(self) -> int:
        """Slots currently published and unconsumed."""
        return max(0, self.head - self.tail)

    @property
    def full(self) -> bool:
        return self.occupancy() >= self.slots

    def __len__(self) -> int:
        return self.occupancy()

    # -- producer -------------------------------------------------------
    def push(
        self,
        kind: int,
        session_id: str,
        frame_id: int,
        payload: Optional[np.ndarray] = None,
        flags: int = 0,
        trace_id: int = 0,
        parent_span_id: int = 0,
        enqueue_ts: float = 0.0,
    ) -> bool:
        """Publish one message; ``False`` if the ring is full.

        The payload (if any) is written straight into the slot's shared
        memory -- one ``memcpy``, no serialisation. ``trace_id``/
        ``parent_span_id``/``enqueue_ts`` ride in the header so trace
        context crosses the boundary with the frame itself.
        """
        sid = encode_session_id(session_id)
        head = self.head
        if head - self.tail >= self.slots:
            self.full_rejects += 1
            return False
        base = _SLOTS_OFFSET + (head % self.slots) * self.slot_bytes

        dtype_code = 0
        ndim = 0
        shape: Tuple[int, ...] = ()
        nbytes = 0
        if payload is not None:
            arr = np.ascontiguousarray(payload)
            dtype_code = _DTYPE_CODES.get(arr.dtype, 0)
            if dtype_code == 0:
                raise RingLayoutError(
                    f"unsupported ring payload dtype {arr.dtype}"
                )
            if arr.ndim > _MAX_NDIM:
                raise RingLayoutError(
                    f"payload rank {arr.ndim} exceeds {_MAX_NDIM}"
                )
            nbytes = arr.nbytes
            if nbytes > self.payload_capacity:
                raise RingLayoutError(
                    f"payload of {nbytes} B exceeds the slot capacity "
                    f"of {self.payload_capacity} B"
                )
            ndim = arr.ndim
            shape = arr.shape
            dest = np.ndarray(
                arr.shape,
                dtype=arr.dtype,
                buffer=self._buf,
                offset=base + SLOT_HEADER_BYTES,
            )
            np.copyto(dest, arr)

        dims = list(shape) + [0] * (_MAX_NDIM - ndim)
        _SLOT_HEADER_FMT.pack_into(
            self._buf, base,
            head + 1, kind, flags, frame_id, nbytes, dtype_code, ndim,
            *dims, sid, trace_id, parent_span_id, enqueue_ts,
        )
        self._write_cursor(_HEAD_OFFSET, head + 1)
        self.pushes += 1
        return True

    # -- consumer -------------------------------------------------------
    def _decode(self, tail: int, copy: bool) -> RingMessage:
        base = _SLOTS_OFFSET + (tail % self.slots) * self.slot_bytes
        fields = _SLOT_HEADER_FMT.unpack_from(self._buf, base)
        seq, kind, flags, frame_id, nbytes, dtype_code, ndim = fields[:7]
        dims = fields[7:7 + _MAX_NDIM]
        sid_raw = fields[7 + _MAX_NDIM]
        trace_id, parent_span_id, enqueue_ts = fields[8 + _MAX_NDIM:]
        if seq != tail + 1:
            raise GatewayError(
                f"ring {self.name!r}: slot seq {seq} != expected "
                f"{tail + 1} (torn write or corrupt ring)"
            )
        payload: Optional[np.ndarray] = None
        if nbytes:
            dtype = _CODE_DTYPES.get(dtype_code)
            if dtype is None:
                raise GatewayError(
                    f"ring {self.name!r}: unknown dtype code {dtype_code}"
                )
            shape = tuple(dims[:ndim])
            view = np.ndarray(
                shape,
                dtype=dtype,
                buffer=self._buf,
                offset=base + SLOT_HEADER_BYTES,
            )
            payload = view.copy() if copy else view
        session_id = sid_raw.rstrip(b"\x00").decode("utf-8")
        return RingMessage(
            kind=kind, session_id=session_id, frame_id=frame_id,
            flags=flags, payload=payload, trace_id=trace_id,
            parent_span_id=parent_span_id, enqueue_ts=enqueue_ts,
        )

    def pop(self) -> Optional[RingMessage]:
        """Consume one message (payload copied out of the segment)."""
        tail = self.tail
        if tail >= self.head:
            return None
        message = self._decode(tail, copy=True)
        self._write_cursor(_TAIL_OFFSET, tail + 1)
        self.pops += 1
        return message

    def peek(self) -> Optional[RingMessage]:
        """Next message with a zero-copy payload view into the segment.

        The view stays valid until :meth:`commit` releases the slot back
        to the producer; callers that retain the array must copy it.
        """
        tail = self.tail
        if tail >= self.head:
            return None
        return self._decode(tail, copy=False)

    def commit(self) -> None:
        """Release the slot last returned by :meth:`peek`."""
        tail = self.tail
        if tail >= self.head:
            raise GatewayError("commit() without a pending peek()")
        self._write_cursor(_TAIL_OFFSET, tail + 1)
        self.pops += 1

    # -- lifecycle ------------------------------------------------------
    def stats(self) -> dict:
        return {
            "occupancy": self.occupancy(),
            "slots": self.slots,
            "pushes": self.pushes,
            "pops": self.pops,
            "full_rejects": self.full_rejects,
        }

    def close(self) -> None:
        self._buf = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - outstanding peek views
            # A zero-copy view still references the segment; the mapping
            # is reclaimed when the last view dies.
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
