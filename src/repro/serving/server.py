"""The multi-session inference server.

Ties the serving pieces together::

    client frames -> Session (sliding window, shared CubeBuilder)
                  -> RequestQueue (bounded, backpressure, fairness)
                  -> MicroBatcher (one batched forward + LRU cache)
                  -> PoseResult (+ Metrics / EventLog)

The server is synchronous and single-consumer by design: ``submit``
admits work, ``step`` serves one micro-batch, ``drain`` serves until the
queue is empty. Producers may call ``submit`` from other threads (the
queue is thread-safe and the ``block`` policy waits for the consumer),
but ``step``/``drain`` are meant to run on one serving loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.regressor import HandJointRegressor
from repro.dsp.plans import PLAN_CACHE, publish_plan_cache_metrics
from repro.nn.inference import PRECISIONS, publish_plan_memory_metrics
from repro.dsp.radar_cube import CubeBuilder
from repro.errors import (
    FrameShapeError,
    QueueFullError,
    ServingError,
    UnknownSessionError,
)
from repro.resilience import (
    CircuitBreaker,
    DeadLetterLog,
    ErrorBudget,
    FaultInjector,
    HealthState,
)
from repro.serving.batcher import MicroBatcher, PoseResult
from repro.serving.cache import SegmentCache
from repro.obs.metrics import MetricsRegistry
from repro.serving.queue import RequestQueue
from repro.serving.session import SegmentRequest, Session


@dataclass
class ServingConfig:
    """Tunables of the inference service runtime.

    The resilience knobs: ``strict_frames=False`` quarantines malformed
    frames at :meth:`InferenceServer.submit` (dead-letter log + error
    budget) instead of raising; the ``breaker_*`` fields govern the
    circuit breaker in front of the compiled inference plan; the
    ``budget_*``/``*_ratio`` fields shape each session's error budget
    and thus the healthy/degraded/unhealthy ladder.
    """

    max_batch_size: int = 16
    queue_capacity: int = 64
    policy: str = "block"
    block_timeout_s: float = 1.0
    cache_capacity: int = 256
    enable_cache: bool = True
    hop_frames: int = 1
    max_sessions: int = 1024
    shard_threads: int = 0
    precision: str = "float32"
    strict_frames: bool = False
    breaker_failure_threshold: int = 3
    breaker_reset_s: float = 30.0
    budget_window: int = 64
    budget_min_events: int = 4
    degraded_ratio: float = 0.05
    unhealthy_ratio: float = 0.25
    dead_letter_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if self.max_sessions < 1:
            raise ServingError("max_sessions must be >= 1")
        if self.hop_frames < 1:
            raise ServingError("hop_frames must be >= 1")
        if self.shard_threads < 0:
            raise ServingError("shard_threads must be >= 0")
        if self.precision not in PRECISIONS:
            raise ServingError(
                f"precision must be one of {PRECISIONS}, got "
                f"{self.precision!r}"
            )
        if self.breaker_failure_threshold < 1:
            raise ServingError("breaker_failure_threshold must be >= 1")
        if self.dead_letter_capacity < 1:
            raise ServingError("dead_letter_capacity must be >= 1")


class InferenceServer:
    """Serves many concurrent radar sessions against one shared model."""

    def __init__(
        self,
        builder: CubeBuilder,
        regressor: HandJointRegressor,
        config: Optional[ServingConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.builder = builder
        self.regressor = regressor
        # Serving must use inference semantics: running batch-norm
        # statistics and dropout as identity. A regressor handed over
        # straight from a trainer may still be in training mode, which
        # would make served outputs batch-dependent and perturb the
        # running statistics on every forward.
        self.regressor.eval()
        self.config = config if config is not None else ServingConfig()
        self.fault_injector = fault_injector
        self.metrics = MetricsRegistry()
        # The shared FFT plan cache sits below the serving layer; pull
        # its hit/miss/entry counts into this server's registry at every
        # snapshot so stats() and prometheus() agree with PLAN_CACHE.
        self.metrics.register_collector(publish_plan_cache_metrics)
        # Same for compiled-plan memory: arena-equivalent vs planned
        # bytes of every live CompiledModel in this process.
        self.metrics.register_collector(publish_plan_memory_metrics)
        # Aggregate health is derived state: refresh the gauge whenever
        # the registry is snapshotted or scraped.
        self.metrics.register_collector(self._publish_health)
        self.queue = RequestQueue(
            capacity=self.config.queue_capacity,
            policy=self.config.policy,
            block_timeout_s=self.config.block_timeout_s,
            metrics=self.metrics,
        )
        cache = (
            SegmentCache(self.config.cache_capacity)
            if self.config.enable_cache
            else None
        )
        self.dead_letters = DeadLetterLog(
            capacity=self.config.dead_letter_capacity
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
            name="serving.compiled",
            metrics=self.metrics,
        )
        self.batcher = MicroBatcher(
            regressor,
            max_batch_size=self.config.max_batch_size,
            cache=cache,
            metrics=self.metrics,
            shards=self.config.shard_threads,
            breaker=self.breaker,
            dead_letters=self.dead_letters,
            fault_injector=fault_injector,
            precision=self.config.precision,
        )
        self._sessions: Dict[str, Session] = {}
        # (session_id, frame_index) pairs of the most recent step()'s
        # requests that were quarantined instead of served. The gateway
        # worker reads this to answer every in-flight frame explicitly
        # (an UNSERVED message) instead of leaving its client waiting.
        self.last_unserved: List[tuple] = []

    # -- session lifecycle ---------------------------------------------
    def open_session(self, session_id: Optional[str] = None) -> str:
        """Register a new client stream; returns its session id."""
        open_count = sum(
            1 for s in self._sessions.values() if not s.closed
        )
        if open_count >= self.config.max_sessions:
            raise ServingError(
                f"session limit reached ({self.config.max_sessions})"
            )
        session = Session(
            self.builder, session_id=session_id,
            hop_frames=self.config.hop_frames,
            metrics=self.metrics,
            budget=ErrorBudget(
                window=self.config.budget_window,
                degraded_ratio=self.config.degraded_ratio,
                unhealthy_ratio=self.config.unhealthy_ratio,
                min_events=self.config.budget_min_events,
            ),
        )
        if session.session_id in self._sessions:
            raise ServingError(
                f"session id {session.session_id!r} already exists"
            )
        self._sessions[session.session_id] = session
        self.metrics.counter("sessions_opened").increment()
        self.metrics.gauge("open_sessions").add(1)
        self.metrics.events.emit(
            "session_open", session_id=session.session_id
        )
        return session.session_id

    def close_session(self, session_id: str) -> None:
        """Close a stream and discard its queued (now stale) windows."""
        session = self._get(session_id)
        if session.closed:
            return
        session.close()
        purged = self.queue.purge_session(session_id)
        session.dropped += purged
        self.metrics.counter("sessions_closed").increment()
        self.metrics.gauge("open_sessions").add(-1)
        self.metrics.events.emit(
            "session_close", session_id=session_id, purged=purged
        )

    def _get(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(
                f"unknown session id {session_id!r}"
            )
        return session

    def session_stats(self, session_id: str) -> Dict[str, Any]:
        return self._get(session_id).stats()

    # -- data path ------------------------------------------------------
    def submit(self, session_id: str, raw_frame: np.ndarray) -> bool:
        """Feed one raw IF frame; ``True`` if a window was enqueued.

        A malformed frame (wrong shape, NaN/Inf, non-numeric dtype) is
        quarantined into the dead-letter log and burns the session's
        error budget instead of raising, unless
        ``ServingConfig.strict_frames`` asks for the exception.
        """
        session = self._get(session_id)
        try:
            request = session.feed(raw_frame)
        except FrameShapeError as error:
            self._quarantine_frame(session, error)
            return False
        return self._enqueue(session, request)

    def submit_cube(
        self, session_id: str, cube_frame: np.ndarray
    ) -> bool:
        """Feed one already-preprocessed ``(V, D, A)`` cube frame."""
        session = self._get(session_id)
        try:
            request = session.feed_cube(cube_frame)
        except FrameShapeError as error:
            self._quarantine_frame(session, error)
            return False
        return self._enqueue(session, request)

    def _quarantine_frame(
        self, session: Session, error: FrameShapeError
    ) -> None:
        """Dead-letter one rejected ingest frame; re-raise when strict."""
        session.quarantined += 1
        session.budget.record_failure()
        self.dead_letters.record(
            session_id=session.session_id,
            frame_index=session.window.frame_index + 1,
            stage="ingest",
            reason=str(error),
        )
        self.metrics.counter("frames_quarantined").increment()
        self.metrics.events.emit(
            "frame_quarantined",
            session_id=session.session_id,
            reason=str(error),
        )
        if self.config.strict_frames:
            raise error

    def _enqueue(
        self, session: Session, request: Optional[SegmentRequest]
    ) -> bool:
        self.metrics.counter("frames_in").increment()
        if request is None:
            return False
        if self.policy_is_block and self.queue.full:
            # Single-threaded block backpressure: the producer *is* the
            # consumer's thread, so make room by serving a batch now
            # instead of deadlocking on the condition variable.
            self.step()
        try:
            evicted = self.queue.put(request)
        except QueueFullError:
            session.dropped += 1
            self.metrics.counter("rejected").increment()
            self.metrics.events.emit(
                "reject", session_id=session.session_id,
                frame_index=request.frame_index,
            )
            raise
        if evicted is not None:
            victim = self._sessions.get(evicted.session_id)
            if victim is not None:
                victim.dropped += 1
            self.metrics.counter("dropped").increment()
            self.metrics.events.emit(
                "drop_oldest", session_id=evicted.session_id,
                frame_index=evicted.frame_index,
            )
        self.metrics.gauge("queue_depth").set(len(self.queue))
        return True

    @property
    def policy_is_block(self) -> bool:
        return self.config.policy == "block"

    def step(self) -> List[PoseResult]:
        """Serve one micro-batch from the queue (may be empty).

        Requests the batcher had to quarantine (invalid window, forward
        that exhausted its retries) are missing from the results; their
        sessions' error budgets are charged here so per-session health
        reflects them.
        """
        batch = self.queue.pop_batch(self.config.max_batch_size)
        if not batch:
            self.last_unserved = []
            return []
        # Stage-latency ledger: batch-wait is how long each request sat
        # in the queue before its forward started; forward is the fused
        # batcher pass. Keeping both as separate histograms makes
        # queueing delay separable from compute in stats()/Prometheus.
        forward_start = time.perf_counter()
        batch_wait = self.metrics.histogram("stage.batch_wait_s")
        for request in batch:
            batch_wait.observe(max(0.0, forward_start - request.enqueued_at))
        results = self.batcher.run(batch)
        self.metrics.histogram("stage.forward_s").observe(
            time.perf_counter() - forward_start
        )
        served = {(r.session_id, r.frame_index) for r in results}
        unserved: List[tuple] = []
        for result in results:
            session = self._sessions.get(result.session_id)
            if session is not None:
                session.results_out += 1
                session.budget.record_success()
        for request in batch:
            if (request.session_id, request.frame_index) in served:
                continue
            unserved.append((request.session_id, request.frame_index))
            session = self._sessions.get(request.session_id)
            if session is not None:
                session.quarantined += 1
                session.budget.record_failure()
        self.last_unserved = unserved
        self.metrics.gauge("queue_depth").set(len(self.queue))
        return results

    def drain(self) -> List[PoseResult]:
        """Serve micro-batches until the queue is empty."""
        results: List[PoseResult] = []
        while len(self.queue) > 0:
            results.extend(self.step())
        return results

    # -- health ---------------------------------------------------------
    def health(self) -> HealthState:
        """Worst health across open sessions and the compiled-path
        breaker (an open/half-open breaker means the service is serving
        degraded eager results, never better than ``DEGRADED``)."""
        states = [
            session.health()
            for session in self._sessions.values()
            if not session.closed
        ]
        overall = HealthState.worst(*states)
        if self.breaker.state != "closed":
            overall = HealthState.worst(overall, HealthState.DEGRADED)
        return overall

    def _publish_health(self, registry: MetricsRegistry) -> None:
        registry.gauge("serving.health").set(self.health().code)

    # -- observability --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """One snapshot of every counter, gauge, histogram and cache."""
        snapshot = self.metrics.snapshot()
        snapshot["queue"] = {
            "depth": len(self.queue),
            "capacity": self.queue.capacity,
            "policy": self.queue.policy,
            "dropped": self.queue.dropped,
            "rejected": self.queue.rejected,
            "by_session": self.queue.depth_by_session(),
        }
        if self.batcher.cache is not None:
            snapshot["cache"] = self.batcher.cache.stats()
        snapshot["plan_cache"] = PLAN_CACHE.stats()
        snapshot["health"] = self.health().value
        snapshot["breaker"] = self.breaker.stats()
        snapshot["dead_letters"] = {
            **self.dead_letters.stats(),
            "tail": self.dead_letters.tail(5),
        }
        snapshot["sessions"] = {
            sid: session.stats()
            for sid, session in self._sessions.items()
        }
        return snapshot

    def prometheus(self) -> str:
        """Prometheus text exposition of this server's registry."""
        return self.metrics.to_prometheus()
