"""Operational metrics for the inference service runtime.

A deliberately small, dependency-free registry in the spirit of
Prometheus client libraries: counters (monotonic), gauges (set/sample),
and latency histograms with streaming percentile summaries, plus a
bounded structured event log. Everything is thread-safe because the
:class:`~repro.serving.queue.RequestQueue` supports blocking producers
on other threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from repro.errors import ServingError


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ServingError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can move both ways (queue depth, open sessions)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Reservoir of observations with percentile summaries.

    Keeps the most recent ``capacity`` observations (sliding reservoir);
    for serving latencies this biases the summary toward current
    behaviour, which is what a live dashboard wants.
    """

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ServingError("histogram capacity must be >= 1")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._total += float(value)

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained samples."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self._samples:
                return {
                    "count": self._count, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
                }
            arr = np.asarray(self._samples)
            p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
            return {
                "count": self._count,
                "mean": float(arr.mean()),
                "p50": float(p50),
                "p95": float(p95),
                "p99": float(p99),
                "max": float(arr.max()),
            }


class EventLog:
    """Bounded structured event log.

    Events are plain dicts with a monotonically increasing sequence
    number and a relative timestamp; the log keeps the most recent
    ``capacity`` entries.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServingError("event log capacity must be >= 1")
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._start = time.perf_counter()
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            event = {
                "seq": self._seq,
                "t_s": time.perf_counter() - self._start,
                "kind": kind,
                **fields,
            }
            self._seq += 1
            self._events.append(event)
            return event

    def tail(self, count: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            events = list(self._events)
        if count is None:
            return events
        return events[-count:]

    def __len__(self) -> int:
        return len(self._events)


class MetricsRegistry:
    """Namespace of counters, gauges and histograms plus the event log.

    Instruments are created on first use so call sites never need to
    pre-declare them; :meth:`snapshot` renders everything to plain
    python values for ``server.stats()`` and JSON reports.
    """

    def __init__(self, histogram_capacity: int = 4096,
                 event_capacity: int = 1024) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._histogram_capacity = histogram_capacity
        self.events = EventLog(event_capacity)
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(
                    name, self._histogram_capacity
                )
            return self._histograms[name]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.summary() for n, h in histograms.items()},
            "events": len(self.events),
        }
