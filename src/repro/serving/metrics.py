"""Re-export shim: the serving metrics moved to :mod:`repro.obs.metrics`.

The registry started life here as a private fixture of the inference
server; it is now the unified, pipeline-wide registry in
:mod:`repro.obs.metrics` (with collectors, Prometheus exposition and a
process-global facade). This module keeps every historical import path
-- ``from repro.serving.metrics import MetricsRegistry`` and friends --
working unchanged, but warns: import from :mod:`repro.obs.metrics`
(nothing inside the repo imports this path any more).
"""

import warnings

warnings.warn(
    "repro.serving.metrics is deprecated; import from "
    "repro.obs.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.obs.metrics import (  # noqa: E402
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
