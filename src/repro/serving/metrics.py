"""Re-export shim: the serving metrics moved to :mod:`repro.obs.metrics`.

The registry started life here as a private fixture of the inference
server; it is now the unified, pipeline-wide registry in
:mod:`repro.obs.metrics` (with collectors, Prometheus exposition and a
process-global facade). This module keeps every historical import path
-- ``from repro.serving.metrics import MetricsRegistry`` and friends --
working unchanged.
"""

from repro.obs.metrics import (
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
