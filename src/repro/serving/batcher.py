"""Micro-batching: one forward pass for many sessions' windows.

Per-session streaming inference runs the network with batch size 1 and
pays the full python/layer dispatch overhead per frame. The batcher stacks
every ready window across sessions into a single ``(B, st, V, D, A)``
tensor and regresses all poses in one call -- the classic serving trick
that turns per-request overhead into per-batch overhead. An optional
content-hash cache short-circuits windows the model has already seen.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.regressor import HandJointRegressor
from repro.errors import ServingError
from repro.obs import trace
from repro.serving.cache import SegmentCache, segment_key
from repro.serving.metrics import MetricsRegistry
from repro.serving.session import SegmentRequest


@dataclass
class PoseResult:
    """One regressed pose, tagged with its origin and serving metadata."""

    session_id: str
    frame_index: int
    joints: np.ndarray
    latency_s: float
    cached: bool = False
    batch_size: int = 1
    corr_id: str = ""


class MicroBatcher:
    """Stacks segment requests and runs them as one batched forward.

    Parameters
    ----------
    regressor:
        The shared joint-regression network (its ``predict`` accepts a
        leading batch dimension).
    max_batch_size:
        Upper bound on the number of windows fused into one forward.
    cache:
        Optional :class:`SegmentCache`; byte-identical windows skip the
        network entirely.
    metrics:
        Optional registry receiving batch/latency/cache instruments.
    shards:
        Optional thread count for sharded compiled execution: each
        fused batch is split across this many workers inside
        ``predict`` (``None``/``0``/``1`` keeps it single-threaded).
    """

    def __init__(
        self,
        regressor: HandJointRegressor,
        max_batch_size: int = 16,
        cache: Optional[SegmentCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        shards: Optional[int] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if shards is not None and shards < 0:
            raise ServingError("shards must be >= 0")
        self.regressor = regressor
        self.max_batch_size = max_batch_size
        self.cache = cache
        self.metrics = metrics
        self.shards = shards or None

    def run(self, requests: Sequence[SegmentRequest]) -> List[PoseResult]:
        """Serve ``requests`` (at most ``max_batch_size``) in one pass."""
        if not requests:
            return []
        if len(requests) > self.max_batch_size:
            raise ServingError(
                f"batch of {len(requests)} exceeds max_batch_size="
                f"{self.max_batch_size}"
            )
        joints_by_slot: List[Optional[np.ndarray]] = [None] * len(requests)
        cached_flags = [False] * len(requests)
        miss_slots: List[int] = []
        keys: List[Optional[str]] = [None] * len(requests)
        # key -> slots that ride along on the first occurrence's forward
        # row (within-batch dedup: identical windows run the net once).
        followers: dict = {}

        if self.cache is not None:
            for slot, request in enumerate(requests):
                key = segment_key(request.segment)
                keys[slot] = key
                if key in followers:
                    followers[key].append(slot)
                    cached_flags[slot] = True
                    continue
                hit = self.cache.get(key)
                if hit is not None:
                    joints_by_slot[slot] = hit
                    cached_flags[slot] = True
                else:
                    followers[key] = []
                    miss_slots.append(slot)
        else:
            miss_slots = list(range(len(requests)))

        if miss_slots:
            with trace.span(
                "serving.batch.forward", batch=len(miss_slots)
            ):
                stacked = np.stack(
                    [requests[slot].segment for slot in miss_slots]
                )
                predictions = self.regressor.predict(
                    stacked, shards=self.shards
                )
            for row, slot in enumerate(miss_slots):
                joints_by_slot[slot] = predictions[row]
                if self.cache is not None and keys[slot] is not None:
                    self.cache.put(keys[slot], predictions[row])
                    for follower in followers.get(keys[slot], ()):
                        joints_by_slot[follower] = predictions[row]

        now = time.perf_counter()
        results = [
            PoseResult(
                session_id=request.session_id,
                frame_index=request.frame_index,
                joints=joints_by_slot[slot],
                latency_s=now - request.enqueued_at,
                cached=cached_flags[slot],
                batch_size=len(requests),
                corr_id=request.corr_id,
            )
            for slot, request in enumerate(requests)
        ]

        if self.metrics is not None:
            self.metrics.counter("batches").increment()
            self.metrics.counter("poses").increment(len(results))
            self.metrics.counter("cache_hits").increment(
                sum(cached_flags)
            )
            self.metrics.counter("cache_misses").increment(len(miss_slots))
            self.metrics.histogram("batch_size").observe(len(requests))
            latency = self.metrics.histogram("latency_s")
            for result in results:
                latency.observe(result.latency_s)
            self.metrics.events.emit(
                "batch_served",
                batch_size=len(requests),
                cached=sum(cached_flags),
                corr_ids=[result.corr_id for result in results],
            )
        return results
