"""Micro-batching: one forward pass for many sessions' windows.

Per-session streaming inference runs the network with batch size 1 and
pays the full python/layer dispatch overhead per frame. The batcher stacks
every ready window across sessions into a single ``(B, st, V, D, A)``
tensor and regresses all poses in one call -- the classic serving trick
that turns per-request overhead into per-batch overhead. An optional
content-hash cache short-circuits windows the model has already seen.

Failure handling is per-request, not per-batch (see DESIGN.md
"Resilience"): malformed windows are quarantined into the
:class:`~repro.resilience.DeadLetterLog` instead of poisoning the
batch, a failed batched forward is salvaged request-by-request under a
:class:`~repro.resilience.RetryPolicy`, and the compiled inference
plan runs behind a :class:`~repro.resilience.CircuitBreaker` that
degrades to the eager ``no_grad`` forward when the plan misbehaves
(``InferenceCompileError`` or non-finite output).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.regressor import HandJointRegressor
from repro.errors import (
    InferenceCompileError,
    InjectedFaultError,
    ModelError,
    RetryExhaustedError,
    ServingError,
)
from repro.obs import trace
from repro.resilience import (
    CircuitBreaker,
    DeadLetterLog,
    FaultInjector,
    RetryPolicy,
)
from repro.serving.cache import SegmentCache, segment_key
from repro.obs.metrics import MetricsRegistry
from repro.serving.session import SegmentRequest

# Exceptions a batched forward may raise that warrant salvaging the
# batch request-by-request rather than failing every caller.
_TRANSIENT_FORWARD_ERRORS = (
    InjectedFaultError,
    ModelError,
    FloatingPointError,
)


@dataclass
class PoseResult:
    """One regressed pose, tagged with its origin and serving metadata."""

    session_id: str
    frame_index: int
    joints: np.ndarray
    latency_s: float
    cached: bool = False
    batch_size: int = 1
    corr_id: str = ""


class MicroBatcher:
    """Stacks segment requests and runs them as one batched forward.

    Parameters
    ----------
    regressor:
        The shared joint-regression network (its ``predict`` accepts a
        leading batch dimension).
    max_batch_size:
        Upper bound on the number of windows fused into one forward.
    cache:
        Optional :class:`SegmentCache`; byte-identical windows skip the
        network entirely.
    metrics:
        Optional registry receiving batch/latency/cache instruments.
    shards:
        Optional thread count for sharded compiled execution: each
        fused batch is split across this many workers inside
        ``predict`` (``None``/``0``/``1`` keeps it single-threaded).
    breaker:
        Optional :class:`CircuitBreaker` guarding the compiled plan;
        when open, batches run the eager ``no_grad`` forward instead.
    dead_letters:
        Optional :class:`DeadLetterLog` receiving quarantined requests
        (invalid windows, forwards that exhausted their retries).
    retry:
        Policy for per-request salvage after a batched forward fails
        (default: three immediate attempts, no backoff sleep -- the
        serving loop must not stall).
    fault_injector:
        Optional :class:`FaultInjector` for chaos testing; injects
        delays/failures in front of the forward pass.
    """

    def __init__(
        self,
        regressor: HandJointRegressor,
        max_batch_size: int = 16,
        cache: Optional[SegmentCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        shards: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
        dead_letters: Optional[DeadLetterLog] = None,
        retry: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        precision: str = "float32",
    ) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        if shards is not None and shards < 0:
            raise ServingError("shards must be >= 0")
        self.regressor = regressor
        self.max_batch_size = max_batch_size
        self.cache = cache
        self.metrics = metrics
        self.shards = shards or None
        # Compiled-plan execution mode; the eager fallback in the
        # degradation ladder always runs float32 (an uncalibrated int8
        # request raises QuantizationError, a subclass of
        # InferenceCompileError, and degrades like a compile failure).
        self.precision = precision
        self.breaker = breaker
        self.dead_letters = dead_letters
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(
                max_attempts=3, base_delay_s=0.0, max_delay_s=0.0,
                jitter=0.0,
            )
        )
        self.fault_injector = fault_injector

    # -- degradation ladder --------------------------------------------
    @staticmethod
    def _invalid_reason(segment: np.ndarray) -> Optional[str]:
        """Why this window must not reach the network (``None`` if ok)."""
        segment = np.asarray(segment)
        if segment.ndim != 4:
            return f"expected a (st, V, D, A) window, got {segment.shape}"
        if not np.issubdtype(segment.dtype, np.number):
            return f"non-numeric dtype {segment.dtype}"
        if not np.all(np.isfinite(segment)):
            return "non-finite values (NaN/Inf) in window"
        return None

    def _quarantine(
        self, request: SegmentRequest, stage: str, reason: str
    ) -> None:
        if self.dead_letters is not None:
            self.dead_letters.record(
                session_id=request.session_id,
                frame_index=request.frame_index,
                stage=stage,
                reason=reason,
                corr_id=request.corr_id,
            )
        if self.metrics is not None:
            self.metrics.counter("quarantined").increment()
            self.metrics.events.emit(
                "quarantine",
                session_id=request.session_id,
                frame_index=request.frame_index,
                stage=stage,
                reason=reason,
            )

    def _forward(self, stacked: np.ndarray) -> np.ndarray:
        """One guarded forward pass over ``stacked`` windows.

        The degradation ladder: compiled plan (behind the breaker) ->
        eager ``no_grad`` forward. Injected chaos faults surface here
        so callers exercise the same salvage path as real failures.
        """
        if self.fault_injector is not None:
            self.fault_injector.maybe_delay_forward()
            self.fault_injector.maybe_fail_forward()
        if self.breaker is None:
            return self.regressor.predict(
                stacked, shards=self.shards, precision=self.precision
            )
        if self.breaker.allow():
            reason = None
            try:
                if self.fault_injector is not None:
                    self.fault_injector.maybe_fail_compile()
                out = self.regressor.predict(
                    stacked, use_compiled=True, shards=self.shards,
                    precision=self.precision,
                )
                if np.all(np.isfinite(out)):
                    self.breaker.record_success()
                    return out
                reason = "non-finite compiled output"
            except InferenceCompileError as error:
                reason = f"compile failure: {error}"
            self.breaker.record_failure()
            if self.metrics is not None:
                self.metrics.counter("compiled_fallbacks").increment()
                self.metrics.events.emit(
                    "compiled_fallback", reason=reason,
                    breaker=self.breaker.state,
                )
        elif self.metrics is not None:
            self.metrics.counter("eager_batches").increment()
        return self.regressor.predict(
            stacked, use_compiled=False, shards=self.shards
        )

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[SegmentRequest]) -> List[PoseResult]:
        """Serve ``requests`` (at most ``max_batch_size``) in one pass.

        Invalid or unsalvageable requests are quarantined (dead-letter
        log + ``quarantined`` counter) and simply absent from the
        returned results; the rest of the batch is unaffected.
        """
        if not requests:
            return []
        if len(requests) > self.max_batch_size:
            raise ServingError(
                f"batch of {len(requests)} exceeds max_batch_size="
                f"{self.max_batch_size}"
            )
        admitted: List[SegmentRequest] = []
        for request in requests:
            reason = self._invalid_reason(request.segment)
            if reason is None:
                admitted.append(request)
            else:
                self._quarantine(request, "batch-validate", reason)
        requests = admitted
        if not requests:
            return []

        joints_by_slot: List[Optional[np.ndarray]] = [None] * len(requests)
        cached_flags = [False] * len(requests)
        miss_slots: List[int] = []
        keys: List[Optional[str]] = [None] * len(requests)
        # key -> slots that ride along on the first occurrence's forward
        # row (within-batch dedup: identical windows run the net once).
        followers: dict = {}

        if self.cache is not None:
            for slot, request in enumerate(requests):
                key = segment_key(request.segment)
                keys[slot] = key
                if key in followers:
                    followers[key].append(slot)
                    cached_flags[slot] = True
                    continue
                hit = self.cache.get(key)
                if hit is not None:
                    joints_by_slot[slot] = hit
                    cached_flags[slot] = True
                else:
                    followers[key] = []
                    miss_slots.append(slot)
        else:
            miss_slots = list(range(len(requests)))

        failed_slots: List[int] = []
        if miss_slots:
            with trace.span(
                "serving.batch.forward", batch=len(miss_slots)
            ):
                stacked = np.stack(
                    [requests[slot].segment for slot in miss_slots]
                )
                try:
                    predictions = self._forward(stacked)
                except _TRANSIENT_FORWARD_ERRORS:
                    predictions = None
                    if self.metrics is not None:
                        self.metrics.counter(
                            "batch_forward_failures"
                        ).increment()
            if predictions is None:
                # The fused forward died: salvage request-by-request so
                # one poisoned (or unlucky) window cannot take down the
                # whole batch.
                predictions = self._salvage(
                    requests, miss_slots, failed_slots
                )
            for row, slot in enumerate(miss_slots):
                if predictions[row] is None:
                    continue
                joints_by_slot[slot] = predictions[row]
                if self.cache is not None and keys[slot] is not None:
                    self.cache.put(keys[slot], predictions[row])
                    for follower in followers.get(keys[slot], ()):
                        joints_by_slot[follower] = predictions[row]
            # Followers of a failed leader never got a prediction.
            for slot, request in enumerate(requests):
                if joints_by_slot[slot] is None and slot not in miss_slots:
                    failed_slots.append(slot)
                    self._quarantine(
                        request, "forward",
                        "deduplicated leader request failed",
                    )

        now = time.perf_counter()
        results = [
            PoseResult(
                session_id=request.session_id,
                frame_index=request.frame_index,
                joints=joints_by_slot[slot],
                latency_s=now - request.enqueued_at,
                cached=cached_flags[slot],
                batch_size=len(requests),
                corr_id=request.corr_id,
            )
            for slot, request in enumerate(requests)
            if joints_by_slot[slot] is not None
        ]

        if self.metrics is not None:
            served_cached = sum(
                1 for slot, flag in enumerate(cached_flags)
                if flag and joints_by_slot[slot] is not None
            )
            self.metrics.counter("batches").increment()
            self.metrics.counter("poses").increment(len(results))
            self.metrics.counter("cache_hits").increment(served_cached)
            self.metrics.counter("cache_misses").increment(len(miss_slots))
            self.metrics.histogram("batch_size").observe(len(requests))
            latency = self.metrics.histogram("latency_s")
            for result in results:
                latency.observe(result.latency_s)
            self.metrics.events.emit(
                "batch_served",
                batch_size=len(requests),
                cached=served_cached,
                failed=len(failed_slots),
                corr_ids=[result.corr_id for result in results],
            )
        return results

    def _salvage(
        self,
        requests: Sequence[SegmentRequest],
        miss_slots: List[int],
        failed_slots: List[int],
    ) -> List[Optional[np.ndarray]]:
        """Per-request recovery after a failed batched forward.

        Each miss runs alone under the retry policy; a request that
        still fails is quarantined and reported as ``None`` in the
        returned row list (aligned with ``miss_slots``).
        """
        rows: List[Optional[np.ndarray]] = []
        for slot in miss_slots:
            request = requests[slot]
            try:
                single = self.retry.call(
                    self._forward,
                    request.segment[None],
                    retry_on=_TRANSIENT_FORWARD_ERRORS,
                )
                rows.append(single[0])
                if self.metrics is not None:
                    self.metrics.counter("forward_salvaged").increment()
            except RetryExhaustedError as error:
                failed_slots.append(slot)
                self._quarantine(request, "forward", str(error))
                rows.append(None)
        return rows
