"""Inference service runtime: many radar sessions, one shared model.

``repro.serving`` multiplexes concurrent client streams through a
single :class:`~repro.core.regressor.HandJointRegressor`:

* :class:`Session` / :class:`FrameWindow` -- per-client sliding-window
  state (factored out of the single-session streaming estimator);
* :class:`RequestQueue` -- bounded admission with explicit backpressure
  (``block`` / ``drop-oldest`` / ``reject``) and per-session fairness;
* :class:`MicroBatcher` -- fuses ready windows across sessions into one
  batched forward pass, with a content-hash LRU :class:`SegmentCache`;
* :class:`MetricsRegistry` -- counters, gauges, latency histograms and
  a structured event log, snapshotted by ``InferenceServer.stats()``;
* :class:`InferenceServer` -- the composition, driven by the
  ``mmhand serve`` CLI command.

Failures degrade instead of crashing (see DESIGN.md "Resilience"):
malformed frames are quarantined into the server's
:class:`~repro.resilience.DeadLetterLog`, the compiled inference plan
runs behind a :class:`~repro.resilience.CircuitBreaker` that falls
back to the eager forward, and per-session
:class:`~repro.resilience.ErrorBudget` objects drive the
healthy/degraded/unhealthy ladder reported by
``InferenceServer.health()`` / ``stats()`` / Prometheus.
"""

from repro.serving.batcher import MicroBatcher, PoseResult
from repro.serving.cache import SegmentCache, segment_key
from repro.obs.metrics import (
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serving.queue import POLICIES, RequestQueue
from repro.serving.server import InferenceServer, ServingConfig
from repro.serving.session import FrameWindow, SegmentRequest, Session

__all__ = [
    "Counter",
    "EventLog",
    "FrameWindow",
    "Gauge",
    "Histogram",
    "InferenceServer",
    "MetricsRegistry",
    "MicroBatcher",
    "POLICIES",
    "PoseResult",
    "RequestQueue",
    "SegmentCache",
    "SegmentRequest",
    "ServingConfig",
    "Session",
    "segment_key",
]
