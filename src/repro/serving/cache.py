"""Content-addressed LRU cache for inference results.

Replayed captures and synthetic benchmarks frequently feed the network
byte-identical preprocessed windows; hashing the radar-cube segment
lets the server return the previous joints without a forward pass. The
cache stores *denormalised* joint arrays (metres), i.e. exactly what
:meth:`HandJointRegressor.predict` would have produced.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro.errors import ServingError


def segment_key(segment: np.ndarray) -> str:
    """Content hash of a preprocessed cube segment.

    The key covers dtype and shape as well as the raw bytes so two
    differently-shaped views of the same buffer never collide.
    """
    segment = np.ascontiguousarray(segment)
    digest = hashlib.sha1()
    digest.update(str(segment.dtype).encode())
    digest.update(str(segment.shape).encode())
    digest.update(segment.tobytes())
    return digest.hexdigest()


class SegmentCache:
    """LRU cache mapping segment content hashes to joint predictions."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ServingError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[np.ndarray]:
        """The cached joints for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            if key not in self._entries:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return self._entries[key].copy()

    def put(self, key: str, joints: np.ndarray) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = np.asarray(joints).copy()
                return
            self._entries[key] = np.asarray(joints).copy()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / total if total else 0.0,
            }
