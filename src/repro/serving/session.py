"""Per-client session state for the inference service.

:class:`FrameWindow` is the sliding-window bookkeeping that used to live
inside :class:`~repro.core.streaming.StreamingEstimator`; factoring it
out lets the server keep one window per connected client while sharing a
single preprocessing chain and model. :class:`Session` wraps a window
with identity, lifecycle state and per-session accounting.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional

import numpy as np

from repro.dsp.radar_cube import CubeBuilder
from repro.errors import FrameShapeError, ServingError, SessionClosedError
from repro.obs import trace
from repro.resilience.health import ErrorBudget, HealthState

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class SegmentRequest:
    """One window of preprocessed frames ready for inference.

    ``segment`` has shape ``(st, V, D, A)``; ``frame_index`` is the index
    of the newest raw frame in the window (the emission timestamp of the
    eventual pose); ``enqueued_at`` feeds the latency histograms.
    ``corr_id`` (``<session_id>#<frame_index>``) correlates the request
    across trace spans, the event log and structured log lines.
    """

    session_id: str
    frame_index: int
    segment: np.ndarray
    enqueued_at: float = field(default_factory=time.perf_counter)
    corr_id: str = ""


class FrameWindow:
    """Sliding window over preprocessed cube frames.

    Collects frames of shape ``(V, D, A)`` and yields a stacked segment
    ``(st, V, D, A)`` every ``hop_frames`` pushes once the window holds
    ``segment_frames`` entries -- the exact emission schedule of the
    original streaming estimator.
    """

    def __init__(self, segment_frames: int, hop_frames: int = 1) -> None:
        if segment_frames < 1:
            raise ServingError("segment_frames must be >= 1")
        if hop_frames < 1:
            raise ServingError("hop_frames must be >= 1")
        self.segment_frames = segment_frames
        self.hop_frames = hop_frames
        self._frames: Deque[np.ndarray] = deque(maxlen=segment_frames)
        self._since_emit = 0
        self._frame_index = -1

    @property
    def fill(self) -> int:
        """Frames currently buffered (max: segment length)."""
        return len(self._frames)

    @property
    def frame_index(self) -> int:
        """Index of the most recently pushed frame (-1 before any)."""
        return self._frame_index

    def reset(self) -> None:
        self._frames.clear()
        self._since_emit = 0
        self._frame_index = -1

    def push(self, cube_frame: np.ndarray) -> Optional[np.ndarray]:
        """Add one preprocessed frame; return a due segment or ``None``."""
        cube_frame = np.asarray(cube_frame)
        if cube_frame.ndim != 3:
            raise FrameShapeError(
                f"window expects a preprocessed (V, D, A) frame, got "
                f"shape {cube_frame.shape}"
            )
        self._frame_index += 1
        self._frames.append(cube_frame)
        self._since_emit += 1
        if (
            len(self._frames) < self.segment_frames
            or self._since_emit < self.hop_frames
        ):
            return None
        self._since_emit = 0
        return np.stack(list(self._frames))


_session_counter = itertools.count()


class Session:
    """One client's streaming state inside the server.

    Raw IF frames go in through :meth:`feed` (preprocessed through the
    shared :class:`CubeBuilder`); already-preprocessed cube frames can be
    fed with :meth:`feed_cube`, which is what replay tooling and the
    throughput benchmark use to isolate the inference path.
    """

    def __init__(
        self,
        builder: CubeBuilder,
        session_id: Optional[str] = None,
        hop_frames: int = 1,
        metrics: Optional["MetricsRegistry"] = None,
        budget: Optional[ErrorBudget] = None,
    ) -> None:
        self.builder = builder
        self.metrics = metrics
        self.session_id = (
            session_id
            if session_id is not None
            else f"session-{next(_session_counter)}"
        )
        self.window = FrameWindow(
            builder.dsp.segment_frames, hop_frames=hop_frames
        )
        self.closed = False
        self.frames_in = 0
        self.segments_out = 0
        self.results_out = 0
        self.dropped = 0
        self.quarantined = 0
        # Per-session error budget: quarantined frames and failed
        # forwards burn it, served results replenish it; the resulting
        # HealthState drives the server's degradation ladder.
        self.budget = budget if budget is not None else ErrorBudget()

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosedError(
                f"session {self.session_id!r} is closed"
            )

    def _validate_frame(self, frame: np.ndarray, what: str) -> None:
        """Reject garbage at the ingest boundary with full context.

        NaN/Inf or non-numeric payloads must not reach the window/
        batcher: a single poisoned frame would silently corrupt every
        segment (and batch) it participates in. The error names the
        session and incoming frame index so operators can trace the
        offending client.
        """
        where = (
            f"session {self.session_id!r} frame "
            f"{self.window.frame_index + 1}"
        )
        if not np.issubdtype(frame.dtype, np.number):
            raise FrameShapeError(
                f"{where}: {what} has non-numeric dtype {frame.dtype}"
            )
        if not np.all(np.isfinite(frame)):
            bad = int(np.size(frame) - np.count_nonzero(np.isfinite(frame)))
            raise FrameShapeError(
                f"{where}: {what} contains {bad} non-finite "
                "value(s) (NaN/Inf)"
            )

    def feed(self, raw_frame: np.ndarray) -> Optional[SegmentRequest]:
        """Preprocess one raw IF frame ``(antennas, loops, samples)``."""
        self._check_open()
        raw_frame = np.asarray(raw_frame)
        if raw_frame.ndim != 3:
            raise FrameShapeError(
                f"session {self.session_id!r} frame "
                f"{self.window.frame_index + 1}: feed expects a single "
                "raw frame (antennas, loops, samples), got shape "
                f"{raw_frame.shape}"
            )
        self._validate_frame(raw_frame, "raw IF frame")
        # DSP spans emitted while preprocessing carry this session's id
        # as their correlation id.
        with trace.correlation(self.session_id):
            cube, timings = self.builder.build_timed(raw_frame[None])
        if self.metrics is not None:
            # Per-stage preprocessing cost, visible in server stats()
            # next to the queue/batch latencies it trades off against.
            self.metrics.histogram("preprocess_s").observe(
                sum(timings.values())
            )
            for stage, seconds in timings.items():
                self.metrics.histogram(
                    f"preprocess_{stage}_s"
                ).observe(seconds)
        return self.feed_cube(cube.values[0])

    def feed_cube(self, cube_frame: np.ndarray) -> Optional[SegmentRequest]:
        """Push one preprocessed ``(V, D, A)`` frame into the window."""
        self._check_open()
        cube_frame = np.asarray(cube_frame)
        self._validate_frame(cube_frame, "cube frame")
        segment = self.window.push(cube_frame)
        self.frames_in += 1
        if segment is None:
            return None
        self.segments_out += 1
        return SegmentRequest(
            session_id=self.session_id,
            frame_index=self.window.frame_index,
            segment=segment,
            corr_id=f"{self.session_id}#{self.window.frame_index}",
        )

    def close(self) -> None:
        self.closed = True

    def reset(self) -> None:
        self._check_open()
        self.window.reset()

    def health(self) -> HealthState:
        return self.budget.health()

    def stats(self) -> Dict[str, float]:
        return {
            "frames_in": self.frames_in,
            "segments_out": self.segments_out,
            "results_out": self.results_out,
            "dropped": self.dropped,
            "quarantined": self.quarantined,
            "window_fill": self.window.fill,
            "closed": self.closed,
            "health": self.budget.health().value,
            "error_ratio": self.budget.ratio(),
        }
