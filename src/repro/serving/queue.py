"""Bounded request queue with explicit backpressure and fairness.

The queue sits between the sessions (producers) and the micro-batcher
(consumer). It is bounded so a slow model cannot buffer unbounded radar
history, and the policy applied when it fills is explicit:

``block``
    The producer waits (up to ``block_timeout_s``) for space; a timeout
    raises :class:`QueueFullError`. The natural choice when producers
    run on their own threads.
``drop-oldest``
    Admit the new request by evicting the oldest *of the same session*
    when possible (stale pose windows are worthless in an interactive
    UI), falling back to the globally oldest request.
``reject``
    Refuse the new request immediately with :class:`QueueFullError`.

Batches are popped round-robin across sessions so one chatty client
cannot starve the others.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from repro.errors import QueueFullError, ServingError
from repro.serving.session import SegmentRequest

POLICIES = ("block", "drop-oldest", "reject")


class RequestQueue:
    """Bounded, session-fair queue of :class:`SegmentRequest`."""

    def __init__(
        self,
        capacity: int = 64,
        policy: str = "block",
        block_timeout_s: float = 1.0,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise ServingError("queue capacity must be >= 1")
        if policy not in POLICIES:
            raise ServingError(
                f"unknown backpressure policy {policy!r}; "
                f"choose from {', '.join(POLICIES)}"
            )
        if block_timeout_s <= 0:
            raise ServingError("block_timeout_s must be positive")
        self.capacity = capacity
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        # Optional MetricsRegistry: drops/rejections become visible
        # counters + events instead of silent losses.
        self.metrics = metrics
        # session id -> FIFO of its pending requests; dict order doubles
        # as the round-robin order (rotated on every pop_batch).
        self._pending: "OrderedDict[str, Deque[SegmentRequest]]" = (
            OrderedDict()
        )
        self._size = 0
        self.dropped = 0
        self.rejected = 0
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    def depth_by_session(self) -> Dict[str, int]:
        with self._lock:
            return {s: len(q) for s, q in self._pending.items() if q}

    # ------------------------------------------------------------------
    def _note_loss(self, counter: str, request: SegmentRequest) -> None:
        """Account one lost request (drop-oldest eviction or rejection)
        on the attached registry so the loss is observable."""
        if self.metrics is None:
            return
        self.metrics.counter(counter).increment()
        self.metrics.events.emit(
            counter.rsplit(".", 1)[-1] + "_request",
            session_id=request.session_id,
            frame_index=request.frame_index,
            corr_id=request.corr_id,
        )

    def _admit(self, request: SegmentRequest) -> None:
        queue = self._pending.get(request.session_id)
        if queue is None:
            queue = deque()
            self._pending[request.session_id] = queue
        queue.append(request)
        self._size += 1

    def _evict_oldest(
        self, prefer_session: Optional[str] = None
    ) -> SegmentRequest:
        if prefer_session is not None:
            queue = self._pending.get(prefer_session)
            if queue:
                self._size -= 1
                return queue.popleft()
        for queue in self._pending.values():
            if queue:
                self._size -= 1
                return queue.popleft()
        raise ServingError("internal error: eviction from an empty queue")

    def put(self, request: SegmentRequest) -> Optional[SegmentRequest]:
        """Admit ``request``, applying the backpressure policy.

        Returns the evicted request under ``drop-oldest`` (``None``
        otherwise); raises :class:`QueueFullError` under ``reject`` or
        when a blocking wait times out.
        """
        with self._not_full:
            if self._size < self.capacity:
                self._admit(request)
                return None
            if self.policy == "reject":
                self.rejected += 1
                self._note_loss("serving.queue.rejected", request)
                raise QueueFullError(
                    f"queue at capacity ({self.capacity}); "
                    f"rejecting request from {request.session_id!r}"
                )
            if self.policy == "drop-oldest":
                evicted = self._evict_oldest(
                    prefer_session=request.session_id
                )
                self.dropped += 1
                self._note_loss("serving.queue.dropped", evicted)
                self._admit(request)
                return evicted
            # policy == "block": wait for the consumer to make room.
            deadline_ok = self._not_full.wait_for(
                lambda: self._size < self.capacity,
                timeout=self.block_timeout_s,
            )
            if not deadline_ok:
                self.rejected += 1
                self._note_loss("serving.queue.rejected", request)
                raise QueueFullError(
                    f"queue stayed full for {self.block_timeout_s:.2f}s; "
                    f"giving up on request from {request.session_id!r}"
                )
            self._admit(request)
            return None

    def pop_batch(self, max_batch: int) -> List[SegmentRequest]:
        """Up to ``max_batch`` requests, round-robin across sessions.

        Each pass takes one request per session in rotation order, so a
        session with a deep backlog gets at most ``ceil`` of its fair
        share of any batch while others have work pending.
        """
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        batch: List[SegmentRequest] = []
        with self._not_full:
            while len(batch) < max_batch and self._size > 0:
                for session_id in list(self._pending.keys()):
                    if len(batch) >= max_batch:
                        break
                    queue = self._pending[session_id]
                    if queue:
                        batch.append(queue.popleft())
                        self._size -= 1
                # Rotate so the next batch starts with a different
                # session; drop empty per-session queues.
                for session_id in list(self._pending.keys()):
                    if not self._pending[session_id]:
                        del self._pending[session_id]
                if self._pending:
                    first, queue = next(iter(self._pending.items()))
                    self._pending.move_to_end(first)
            if batch:
                self._not_full.notify_all()
        return batch

    def purge_session(self, session_id: str) -> int:
        """Discard all pending requests of one session (on close)."""
        with self._not_full:
            queue = self._pending.pop(session_id, None)
            if queue is None:
                return 0
            count = len(queue)
            self._size -= count
            if count:
                self._not_full.notify_all()
            return count
