"""Plan cache for config-derived DSP artifacts.

The pre-processing hot path (bandpass -> range-FFT -> Doppler-FFT ->
zoom-FFT angle spectra) repeatedly derives small artifacts from frozen
configuration values: the Butterworth SOS coefficients, FFT window
tapers, the zoom-FFT DFT kernel and the angle-grid steering matrices.
None of them depend on the signal, yet before this module they were
rebuilt on every call -- per frame, per session, for every client of the
serving stack.

:class:`PlanCache` memoizes such artifacts under ``(kind, key)`` pairs
with per-kind hit/miss counters so the savings are observable
(``PLAN_CACHE.stats()``; the benchmark harness records them in
``BENCH_pipeline.json``). Cached arrays are frozen read-only via
:func:`freeze` so a careless caller cannot corrupt a plan shared across
sessions and threads.

``PLAN_CACHE.disabled()`` turns the cache into a pass-through; the
benchmark harness uses it to measure the pre-cache baseline honestly in
the same run as the cached path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Hashable, Iterator, Tuple

import numpy as np
from scipy import signal

from repro.errors import SignalProcessingError
from repro.obs import metrics as obs_metrics


def freeze(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only (in place) and return it.

    Every array stored in the plan cache is frozen so shared plans
    cannot be mutated by callers; take an explicit ``.copy()`` when a
    writable array is needed.
    """
    array.setflags(write=False)
    return array


class PlanCache:
    """Thread-safe LRU cache of config-derived DSP plans.

    Entries are keyed on ``(kind, key)`` where ``kind`` names the
    artifact family (``"window"``, ``"bandpass_sos"``, ``"zoom_kernel"``,
    ``"steering"``) and ``key`` encodes the config values the artifact
    was derived from. Hits and misses are counted per kind.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise SignalProcessingError("plan cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, Hashable], Any]" = (
            OrderedDict()
        )
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._lock = threading.RLock()
        self._disabled = 0

    def get(
        self, kind: str, key: Hashable, build: Callable[[], Any]
    ) -> Any:
        """Return the plan for ``(kind, key)``, building it on a miss."""
        with self._lock:
            if self._disabled:
                return build()
            full_key = (kind, key)
            if full_key in self._entries:
                self._hits[kind] = self._hits.get(kind, 0) + 1
                self._entries.move_to_end(full_key)
                return self._entries[full_key]
            self._misses[kind] = self._misses.get(kind, 0) + 1
            value = build()
            self._entries[full_key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return value

    @property
    def hits(self) -> int:
        with self._lock:
            return sum(self._hits.values())

    @property
    def misses(self) -> int:
        with self._lock:
            return sum(self._misses.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Hit/miss counters, total and per plan kind."""
        with self._lock:
            kinds = sorted(set(self._hits) | set(self._misses))
            entries_by_kind: Dict[str, int] = {}
            for kind, _ in self._entries:
                entries_by_kind[kind] = entries_by_kind.get(kind, 0) + 1
            return {
                "hits": sum(self._hits.values()),
                "misses": sum(self._misses.values()),
                "entries": len(self._entries),
                "by_kind": {
                    kind: {
                        "hits": self._hits.get(kind, 0),
                        "misses": self._misses.get(kind, 0),
                        "entries": entries_by_kind.get(kind, 0),
                    }
                    for kind in kinds
                },
            }

    def clear(self, reset_counters: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            if reset_counters:
                self._hits.clear()
                self._misses.clear()

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Pass-through mode: every ``get`` rebuilds its plan.

        Used by the benchmark harness to time the uncached baseline;
        nesting is supported, existing entries are kept.
        """
        with self._lock:
            self._disabled += 1
        try:
            yield
        finally:
            with self._lock:
                self._disabled -= 1


PLAN_CACHE = PlanCache()
"""The process-wide plan cache used by the whole DSP chain."""


def publish_plan_cache_metrics(registry) -> None:
    """Collector publishing :data:`PLAN_CACHE` counters to ``registry``.

    Designed for :meth:`repro.obs.metrics.MetricsRegistry.register_collector`:
    hit/miss totals become first-class monotonic counters
    (``dsp.plan_cache.hits`` / ``dsp.plan_cache.misses``, advanced by
    delta so repeated collection never double-counts) and the entry
    count a gauge, making the cache visible in ``snapshot()`` and the
    Prometheus exposition of any registry that registers this.
    """
    stats = PLAN_CACHE.stats()
    for key in ("hits", "misses"):
        instrument = registry.counter(f"dsp.plan_cache.{key}")
        delta = stats[key] - instrument.value
        if delta > 0:
            instrument.increment(delta)
    registry.gauge("dsp.plan_cache.entries").set(stats["entries"])


# The global registry always sees the plan cache; private registries
# (e.g. one per InferenceServer) opt in with the same collector.
obs_metrics.get_registry().register_collector(publish_plan_cache_metrics)


def butterworth_bandpass_sos(
    order: int, low: float, high: float
) -> np.ndarray:
    """Cached second-order sections of a Butterworth bandpass.

    ``order`` is scipy's per-section N (a bandpass doubles it); ``low``
    and ``high`` are normalised (Nyquist = 1) corner frequencies. The
    returned array is read-only.
    """
    return PLAN_CACHE.get(
        "bandpass_sos",
        (int(order), float(low), float(high)),
        lambda: freeze(
            signal.butter(order, [low, high], btype="bandpass",
                          output="sos")
        ),
    )


def filtfilt_operator(
    order: int,
    low: float,
    high: float,
    n: int,
    padlen: int,
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """Cached dense operator equivalent of the zero-phase bandpass.

    For a fixed signal length ``n``, ``sosfiltfilt`` -- odd-extension
    padding, forward/backward biquad cascades and their initial
    conditions included -- is a linear map from the ``n`` input samples
    to the ``n`` output samples. Filtering the identity matrix through
    the exact scipy path materialises that map as an ``(n, n)`` matrix
    ``R`` with ``filtfilt(x) == x @ R`` along the last axis (verified to
    ~1e-14 relative), which turns the per-sample scalar biquad loop into
    one BLAS matmul -- an order-of-magnitude faster at radar fast-time
    lengths. Only worthwhile for small ``n`` (cost grows as ``n``
    per sample); :func:`repro.dsp.filters.hand_bandpass` falls back to
    ``sosfiltfilt`` above a length threshold.

    ``dtype`` selects the stored operator precision: pass complex64 so
    single-precision inputs are not upcast by the matmul.
    """

    def build() -> np.ndarray:
        # scipy's Cython kernel requires writable coefficient buffers,
        # so hand it a (tiny) copy of the frozen SOS plan.
        sos = butterworth_bandpass_sos(order, low, high).copy()
        response = signal.sosfiltfilt(
            sos, np.eye(n), axis=-1, padlen=padlen
        )
        # Rows hold filtfilt(e_j), so x @ response applies the filter.
        return freeze(
            np.ascontiguousarray(response).astype(dtype, copy=False)
        )

    dtype = np.dtype(dtype)
    return PLAN_CACHE.get(
        "filtfilt_op",
        (int(order), float(low), float(high), int(n), int(padlen),
         dtype.str),
        build,
    )


def zoom_kernel(lo: float, hi: float, bins: int, n: int) -> np.ndarray:
    """Cached zoom-FFT DFT kernel ``(bins, n)`` for the frequency span
    ``[lo, hi]`` over ``n`` input samples. Read-only."""

    def build() -> np.ndarray:
        freqs = np.linspace(lo, hi, bins)
        return freeze(
            np.exp(-2j * np.pi * freqs[:, None] * np.arange(n)[None, :])
        )

    return PLAN_CACHE.get(
        "zoom_kernel", (float(lo), float(hi), int(bins), int(n)), build
    )
