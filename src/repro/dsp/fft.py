"""Range-FFT, Doppler-FFT and angle processing (paper Sec. III).

The angle stage generalises the paper's zoom-FFT: the spectrum is
evaluated on a refined grid of steering directions restricted to the
+/-30 degree sector where hands appear, with a refinement factor that
doubles the grid density relative to the plain FFT bin spacing (the
paper's factor-2 zoom-FFT). Because the IWR1443 virtual array is not a
simple 2-D lattice (an 8-element azimuth row plus an elevated 4-element
row), the spectrum is computed as a steering-vector DFT over the actual
element positions, which reduces exactly to the FFT on uniform arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.config import DspConfig, RadarConfig
from repro.dsp.plans import PLAN_CACHE, freeze, zoom_kernel
from repro.dsp.windows import get_window
from repro.errors import SignalProcessingError
from repro.radar.antenna import VirtualArray


def _window_dtype(dsp: DspConfig) -> np.dtype:
    """Window dtype that avoids upcasting the configured DSP precision."""
    return np.dtype(
        np.float32 if dsp.precision == "fast" else np.float64
    )


def _cast_spectrum(spectrum: np.ndarray, dsp: DspConfig) -> np.ndarray:
    """Hold the chain in complex64 under the fast dtype policy."""
    if dsp.precision == "fast":
        return spectrum.astype(np.complex64, copy=False)
    return spectrum


def range_fft(
    data: np.ndarray, radar: RadarConfig, dsp: DspConfig
) -> np.ndarray:
    """Windowed FFT along fast time, keeping the first ``range_bins`` bins.

    Input shape ``(..., samples)``; output ``(..., range_bins)``. Bin ``d``
    corresponds to range ``d * range_resolution``.
    """
    data = np.asarray(data)
    n = radar.samples_per_chirp
    if data.shape[-1] != n:
        raise SignalProcessingError(
            f"expected {n} fast-time samples, got {data.shape[-1]}"
        )
    if dsp.range_bins > n:
        raise SignalProcessingError(
            "range_bins cannot exceed samples_per_chirp"
        )
    window = get_window(dsp.range_window, n, dtype=_window_dtype(dsp))
    spectrum = np.fft.fft(data * window, axis=-1)
    return _cast_spectrum(spectrum[..., : dsp.range_bins], dsp)


def doppler_fft(
    data: np.ndarray, radar: RadarConfig, dsp: DspConfig, axis: int = -2
) -> np.ndarray:
    """Windowed FFT along slow time (chirp loops), centred on zero Doppler.

    The FFT output is fftshifted so the zero-velocity bin sits in the
    middle, then cropped to the central ``doppler_bins`` bins (hand
    motion is slow against the unambiguous velocity span).
    """
    data = np.asarray(data)
    loops = data.shape[axis]
    if loops != radar.chirp_loops:
        raise SignalProcessingError(
            f"expected {radar.chirp_loops} chirp loops on axis {axis}, "
            f"got {loops}"
        )
    if dsp.doppler_bins > loops:
        raise SignalProcessingError("doppler_bins cannot exceed chirp_loops")
    window_shape = [1] * data.ndim
    window_shape[axis] = loops
    window = get_window(
        dsp.doppler_window, loops, dtype=_window_dtype(dsp)
    ).reshape(window_shape)
    spectrum = np.fft.fftshift(np.fft.fft(data * window, axis=axis), axes=axis)
    centre = loops // 2
    lo = centre - dsp.doppler_bins // 2
    hi = lo + dsp.doppler_bins
    index = [slice(None)] * data.ndim
    index[axis] = slice(lo, hi)
    return _cast_spectrum(spectrum[tuple(index)], dsp)


def zoom_fft(
    data: np.ndarray, span: Tuple[float, float], bins: int, axis: int = -1
) -> np.ndarray:
    """Generic zoom-FFT: evaluate the DTFT of ``data`` on ``bins`` points
    of normalised frequency (cycles/sample) restricted to ``span``.

    Direct DFT-matrix evaluation -- exact and adequate at radar-cube sizes,
    and equivalent to modulate+decimate zoom-FFT implementations.
    """
    lo, hi = span
    if not -0.5 <= lo < hi <= 0.5:
        raise SignalProcessingError("span must lie within [-0.5, 0.5]")
    if bins < 1:
        raise SignalProcessingError("bins must be >= 1")
    data = np.asarray(data)
    data = np.moveaxis(data, axis, -1)
    n = data.shape[-1]
    kernel = zoom_kernel(lo, hi, bins, n)
    out = data @ kernel.T
    return np.moveaxis(out, -1, axis)


class AngleProcessor:
    """Azimuth/elevation spectra over the virtual array.

    Precomputes the steering matrix of a 2-D grid spanning the
    +/-``angle_span`` sector with the configured zoom refinement; the
    azimuth spectrum marginalises elevation and vice versa, capturing the
    array's real resolution asymmetry (8-element azimuth row vs a single
    elevated row).
    """

    def __init__(self, array: VirtualArray, dsp: DspConfig) -> None:
        self.array = array
        self.dsp = dsp
        az_eval = self._effective_bins(dsp.azimuth_bins, dsp.zoom_factor)
        el_eval = self._effective_bins(dsp.elevation_bins, dsp.zoom_factor)
        span = dsp.angle_span_rad
        self.azimuth_grid = np.linspace(-span, span, az_eval)
        self.elevation_grid = np.linspace(-span, span, el_eval)
        # The steering matrix only depends on array geometry and the
        # angle-grid config, so share it across AngleProcessor instances
        # (one per CubeBuilder, of which serving stacks create many).
        plan_key = (
            array.positions.tobytes(),
            az_eval,
            el_eval,
            float(span),
        )

        def build_steering() -> np.ndarray:
            az2d, el2d = np.meshgrid(
                self.azimuth_grid, self.elevation_grid, indexing="ij"
            )
            phases = array.steering_phases(az2d, el2d)  # (az, el, V)
            return freeze(
                np.exp(-1j * phases) / np.sqrt(array.num_virtual)
            )

        self._steering = PLAN_CACHE.get(
            "steering", plan_key, build_steering
        )
        self._steering_c64 = PLAN_CACHE.get(
            "steering",
            plan_key + ("complex64",),
            lambda: freeze(self._steering.astype(np.complex64)),
        )
        self._az_eval = az_eval
        self._el_eval = el_eval

    @property
    def azimuth_axis(self) -> np.ndarray:
        """Per-cube-bin azimuth angles (evaluated grid repeated to the
        configured bin count under the zoom ablation)."""
        return self._expand_axis(self.azimuth_grid, self.dsp.azimuth_bins)

    @property
    def elevation_axis(self) -> np.ndarray:
        """Per-cube-bin elevation angles."""
        return self._expand_axis(
            self.elevation_grid, self.dsp.elevation_bins
        )

    @staticmethod
    def _expand_axis(grid: np.ndarray, bins: int) -> np.ndarray:
        if len(grid) == bins:
            return grid.copy()
        return np.repeat(grid, bins // len(grid))

    @staticmethod
    def _effective_bins(bins: int, zoom_factor: int) -> int:
        """Grid density under the zoom refinement.

        ``zoom_factor`` 2 (the paper's setting) evaluates the full
        ``bins`` grid; factor 1 halves the evaluated density (plain FFT
        resolution) and the spectrum is later repeated to keep the cube
        size fixed -- this is what the zoom-FFT ablation compares.
        """
        evaluated = max(2, (bins * zoom_factor) // 2)
        return min(evaluated, bins)

    def spectra(self, data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Azimuth and elevation magnitude spectra of ``data``.

        ``data`` has the virtual-antenna axis *first*:
        shape ``(V, ...)``. Returns ``(azimuth, elevation)`` arrays of
        shapes ``(azimuth_bins, ...)`` and ``(elevation_bins, ...)``.
        """
        data = np.asarray(data)
        if data.shape[0] != self.array.num_virtual:
            raise SignalProcessingError(
                f"first axis must be {self.array.num_virtual} virtual "
                f"antennas, got {data.shape[0]}"
            )
        flat = data.reshape(data.shape[0], -1)
        # (az*el, V) @ (V, M) per column chunk; complex64 inputs use the
        # single-precision steering copy so the product stays complex64.
        single = flat.dtype == np.complex64
        steering = self._steering_c64 if single else self._steering
        smat = steering.reshape(-1, steering.shape[-1])
        az_eval, el_eval = self._az_eval, self._el_eval
        m = flat.shape[1]
        real_dtype = np.float32 if single else np.float64
        azimuth = np.empty((az_eval, m), dtype=real_dtype)
        elevation = np.empty((el_eval, m), dtype=real_dtype)
        # Chunk the beamformed (az*el, M) intermediate to ~1 MiB so it
        # stays cache-resident; one giant matmul is bandwidth-bound and
        # measurably slower than this blocked sweep.
        chunk = max(
            1,
            (1 << 20) // (az_eval * el_eval * flat.dtype.itemsize),
        )
        for start in range(0, m, chunk):
            block = flat[:, start : start + chunk]
            power = np.abs(smat @ block).reshape(
                az_eval, el_eval, block.shape[1]
            )
            azimuth[:, start : start + chunk] = power.mean(axis=1)
            elevation[:, start : start + chunk] = power.mean(axis=0)
        azimuth = self._upsample(azimuth, self.dsp.azimuth_bins)
        elevation = self._upsample(elevation, self.dsp.elevation_bins)
        tail = data.shape[1:]
        return (
            azimuth.reshape((self.dsp.azimuth_bins,) + tail),
            elevation.reshape((self.dsp.elevation_bins,) + tail),
        )

    @staticmethod
    def _upsample(spectrum: np.ndarray, bins: int) -> np.ndarray:
        """Nearest-neighbour repeat up to ``bins`` rows (zoom ablation)."""
        current = spectrum.shape[0]
        if current == bins:
            return spectrum
        if bins % current != 0:
            raise SignalProcessingError(
                "angle bins must be a multiple of the evaluated grid"
            )
        return np.repeat(spectrum, bins // current, axis=0)
