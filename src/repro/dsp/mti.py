"""Moving-target indication (MTI) static-clutter removal.

Furniture, walls and the radar's own leakage are static: their IF
contribution is identical chirp after chirp, while the hand's
micro-motion modulates the slow-time phase. Subtracting the slow-time
mean (or a first-order recursive estimate across frames) removes static
clutter before the Doppler FFT -- a standard radar pre-processing stage
that complements the paper's range-band filter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalProcessingError


def mti_highpass(data: np.ndarray, axis: int = -2) -> np.ndarray:
    """Remove the zero-Doppler (static) component along slow time.

    Subtracts the mean over the chirp-loop axis, equivalent to notching
    the DC Doppler bin. Default ``axis=-2`` matches the radar cube's
    ``(..., loops, samples)`` layout.
    """
    data = np.asarray(data)
    if data.ndim < 2:
        raise SignalProcessingError("MTI needs at least 2-D data")
    if data.shape[axis] < 2:
        raise SignalProcessingError(
            "MTI needs at least 2 chirps along the slow-time axis"
        )
    return data - data.mean(axis=axis, keepdims=True)


def two_pulse_canceller(data: np.ndarray, axis: int = -2) -> np.ndarray:
    """First-difference MTI filter along slow time.

    Output has one fewer chirp; static returns cancel exactly while
    moving returns pass with a sin-shaped Doppler response. Useful when
    the static clutter drifts slowly (so mean subtraction underperforms).
    """
    data = np.asarray(data)
    if data.ndim < 2:
        raise SignalProcessingError("MTI needs at least 2-D data")
    if data.shape[axis] < 2:
        raise SignalProcessingError(
            "two-pulse canceller needs >= 2 chirps"
        )
    upper = [slice(None)] * data.ndim
    lower = [slice(None)] * data.ndim
    upper[axis] = slice(1, None)
    lower[axis] = slice(None, -1)
    return data[tuple(upper)] - data[tuple(lower)]


class RecursiveClutterFilter:
    """Exponential-average clutter map subtracted frame by frame.

    Maintains ``clutter <- (1 - alpha) * clutter + alpha * frame`` and
    returns ``frame - clutter`` for each incoming raw frame, adapting to
    slow environmental change across a capture session (people settling,
    doors opening) without touching hand motion.
    """

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 < alpha < 1.0:
            raise SignalProcessingError("alpha must lie in (0, 1)")
        self.alpha = alpha
        self._clutter = None

    def reset(self) -> None:
        self._clutter = None

    def process(self, frame: np.ndarray) -> np.ndarray:
        """Filter one raw frame ``(antennas, loops, samples)``."""
        frame = np.asarray(frame)
        if self._clutter is None:
            # First frame: bootstrap the clutter map from the slow-time
            # mean so the hand's moving component survives.
            self._clutter = np.broadcast_to(
                frame.mean(axis=-2, keepdims=True), frame.shape
            ).copy()
        out = frame - self._clutter
        self._clutter = (
            (1.0 - self.alpha) * self._clutter + self.alpha * frame
        )
        return out
