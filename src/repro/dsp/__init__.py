"""mmWave signal pre-processing (paper Sec. III).

Raw IF frames pass through an 8th-order Butterworth bandpass that keeps
the hand's range band, then range-FFT, Doppler-FFT and angle processing
over the TDM-MIMO virtual array (zoom-FFT restricted to +/-30 degrees),
producing the 4-D Radar Cube ``RC in R^{F x V x D x A}`` the network
consumes.
"""

from repro.dsp.plans import (
    PLAN_CACHE,
    PlanCache,
    butterworth_bandpass_sos,
    freeze,
    zoom_kernel,
)
from repro.dsp.windows import get_window
from repro.dsp.filters import hand_bandpass, band_to_if_hz
from repro.dsp.fft import (
    range_fft,
    doppler_fft,
    AngleProcessor,
    zoom_fft,
)
from repro.dsp.radar_cube import (
    RadarCube,
    CubeBuilder,
    segment_cube,
)
from repro.dsp.cfar import (
    CfarConfig,
    ca_cfar,
    ca_cfar_reference,
    detect_peaks,
    locate_hand,
    adaptive_hand_band,
)
from repro.dsp.mti import (
    mti_highpass,
    two_pulse_canceller,
    RecursiveClutterFilter,
)
from repro.dsp.pointcloud import (
    PointCloud,
    extract_pointcloud,
    sequence_pointclouds,
)

__all__ = [
    "PLAN_CACHE",
    "PlanCache",
    "butterworth_bandpass_sos",
    "freeze",
    "zoom_kernel",
    "get_window",
    "hand_bandpass",
    "band_to_if_hz",
    "range_fft",
    "doppler_fft",
    "AngleProcessor",
    "zoom_fft",
    "RadarCube",
    "CubeBuilder",
    "segment_cube",
    "CfarConfig",
    "ca_cfar",
    "ca_cfar_reference",
    "detect_peaks",
    "locate_hand",
    "adaptive_hand_band",
    "mti_highpass",
    "two_pulse_canceller",
    "RecursiveClutterFilter",
    "PointCloud",
    "extract_pointcloud",
    "sequence_pointclouds",
]
