"""Window functions for the FFT stages.

Kept minimal and dependency-light: the radar DSP only needs a few
classical tapers, applied along fast-time (range) and slow-time (Doppler)
axes to control spectral leakage. Windows are served from the shared
:data:`~repro.dsp.plans.PLAN_CACHE` as read-only arrays so the FFT hot
path never recomputes a taper and no caller can corrupt the shared copy.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.plans import PLAN_CACHE, freeze
from repro.errors import SignalProcessingError

_WINDOWS = {}


def _register(name):
    def deco(fn):
        _WINDOWS[name] = fn
        return fn

    return deco


@_register("rect")
def _rect(n: int) -> np.ndarray:
    return np.ones(n)


@_register("hann")
def _hann(n: int) -> np.ndarray:
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * k / (n - 1))


@_register("hamming")
def _hamming(n: int) -> np.ndarray:
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * k / (n - 1))


@_register("blackman")
def _blackman(n: int) -> np.ndarray:
    if n == 1:
        return np.ones(1)
    k = np.arange(n) / (n - 1)
    return (
        0.42 - 0.5 * np.cos(2 * np.pi * k) + 0.08 * np.cos(4 * np.pi * k)
    )


def get_window(
    name: str, length: int, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Return the named window of the given length.

    Supported names: ``rect``, ``hann``, ``hamming``, ``blackman``.
    The result is a cached, **read-only** array shared between callers
    (one cache entry per ``(name, length, dtype)``); copy it before
    mutating. ``dtype=np.float32`` serves the fast-precision DSP path
    without upcasting its operands.
    """
    if length < 1:
        raise SignalProcessingError("window length must be >= 1")
    try:
        fn = _WINDOWS[name]
    except KeyError:
        raise SignalProcessingError(
            f"unknown window {name!r}; available: {sorted(_WINDOWS)}"
        ) from None
    dtype = np.dtype(dtype)
    return PLAN_CACHE.get(
        "window",
        (name, int(length), dtype.str),
        lambda: freeze(fn(length).astype(dtype, copy=False)),
    )
