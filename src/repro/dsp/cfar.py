"""CFAR detection and first-dominant-peak hand localisation.

The paper observes (Sec. III, Fig. 3) that the hand, body and furniture
appear as distinct peaks in the range spectrum and that "the hand is
always located in the first dominant peaks because the hand is usually
closest to the radar in gesture interactions". This module implements
that logic properly: a cell-averaging CFAR (constant false-alarm rate)
detector finds peaks against the local noise floor, and
:func:`locate_hand` picks the first dominant one, which drives the
adaptive variant of the hand bandpass filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SignalProcessingError


@dataclass(frozen=True)
class CfarConfig:
    """Cell-averaging CFAR parameters.

    ``guard_cells`` are excluded around the cell under test so the
    target's own energy does not inflate the noise estimate;
    ``training_cells`` on each side estimate the local noise floor;
    ``threshold_factor`` scales it into a detection threshold.
    """

    guard_cells: int = 2
    training_cells: int = 6
    threshold_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.guard_cells < 0:
            raise SignalProcessingError("guard_cells must be >= 0")
        if self.training_cells < 1:
            raise SignalProcessingError("training_cells must be >= 1")
        if self.threshold_factor <= 0:
            raise SignalProcessingError("threshold_factor must be > 0")


def _validate_cfar_profile(
    profile: np.ndarray, config: CfarConfig
) -> np.ndarray:
    profile = np.asarray(profile, dtype=float)
    if profile.ndim != 1:
        raise SignalProcessingError("ca_cfar expects a 1-D power profile")
    if np.any(profile < 0):
        raise SignalProcessingError("power profile must be non-negative")
    n = len(profile)
    if n < 2 * (config.guard_cells + config.training_cells) + 1:
        raise SignalProcessingError(
            f"profile of length {n} too short for "
            f"guard={config.guard_cells}, "
            f"training={config.training_cells}"
        )
    return profile


def ca_cfar(
    profile: np.ndarray, config: CfarConfig = CfarConfig()
) -> np.ndarray:
    """Cell-averaging CFAR detection mask over a 1-D power profile.

    Returns a boolean array marking cells whose power exceeds the local
    noise estimate times the threshold factor. Edge cells use the
    available one-sided training window.

    Vectorised with cumulative sums: the training-window sum on each
    side is a difference of two prefix sums with edge-clamped bounds,
    reproducing :func:`ca_cfar_reference` exactly (same clamping, same
    mean) without the per-cell Python loop.
    """
    profile = _validate_cfar_profile(profile, config)
    n = len(profile)
    guard = config.guard_cells
    train = config.training_cells
    idx = np.arange(n)
    # Same one-sided clamping as the reference loop.
    left_lo = np.maximum(0, idx - guard - train)
    left_hi = np.maximum(0, idx - guard)
    right_lo = np.minimum(n, idx + guard + 1)
    right_hi = np.minimum(n, idx + guard + train + 1)
    csum = np.concatenate([[0.0], np.cumsum(profile)])
    sums = (csum[left_hi] - csum[left_lo]) + (csum[right_hi] - csum[right_lo])
    counts = (left_hi - left_lo) + (right_hi - right_lo)
    detections = np.zeros(n, dtype=bool)
    valid = counts > 0
    noise = sums[valid] / counts[valid]
    detections[valid] = profile[valid] > config.threshold_factor * noise
    return detections


def ca_cfar_reference(
    profile: np.ndarray, config: CfarConfig = CfarConfig()
) -> np.ndarray:
    """Per-cell loop reference implementation of :func:`ca_cfar`.

    Kept for equivalence tests and benchmarking; the vectorised path
    must produce a bit-identical mask.
    """
    profile = _validate_cfar_profile(profile, config)
    n = len(profile)
    guard = config.guard_cells
    train = config.training_cells
    detections = np.zeros(n, dtype=bool)
    for i in range(n):
        left_lo = max(0, i - guard - train)
        left_hi = max(0, i - guard)
        right_lo = min(n, i + guard + 1)
        right_hi = min(n, i + guard + train + 1)
        noise_cells = np.concatenate(
            [profile[left_lo:left_hi], profile[right_lo:right_hi]]
        )
        if len(noise_cells) == 0:
            continue
        noise = noise_cells.mean()
        detections[i] = profile[i] > config.threshold_factor * noise
    return detections


def detect_peaks(
    profile: np.ndarray, config: CfarConfig = CfarConfig()
) -> List[int]:
    """CFAR detections reduced to local-maximum peak indices, ascending."""
    profile = np.asarray(profile, dtype=float)
    mask = ca_cfar(profile, config)
    peaks = []
    for i in np.nonzero(mask)[0]:
        left = profile[i - 1] if i > 0 else -np.inf
        right = profile[i + 1] if i < len(profile) - 1 else -np.inf
        if profile[i] >= left and profile[i] >= right:
            peaks.append(int(i))
    return peaks


def locate_hand(
    range_profile: np.ndarray,
    range_axis_m: np.ndarray,
    config: CfarConfig = CfarConfig(),
    min_range_m: float = 0.08,
) -> Optional[float]:
    """Range of the first dominant peak -- the hand (paper Sec. III).

    ``range_profile`` is a non-negative power profile over range bins;
    ``min_range_m`` skips leakage/occluder bins right at the radar.
    Returns ``None`` when nothing is detected.
    """
    range_profile = np.asarray(range_profile, dtype=float)
    range_axis_m = np.asarray(range_axis_m, dtype=float)
    if range_profile.shape != range_axis_m.shape:
        raise SignalProcessingError(
            "range profile and axis must have matching shapes"
        )
    peaks = detect_peaks(range_profile, config)
    candidates = [p for p in peaks if range_axis_m[p] >= min_range_m]
    if not candidates:
        return None
    return float(range_axis_m[candidates[0]])


def adaptive_hand_band(
    range_profile: np.ndarray,
    range_axis_m: np.ndarray,
    half_width_m: float = 0.15,
    config: CfarConfig = CfarConfig(),
    fallback: Tuple[float, float] = (0.08, 0.62),
) -> Tuple[float, float]:
    """Range band centred on the detected hand, for the bandpass filter.

    When CFAR finds no hand the configured ``fallback`` band is returned
    (the static interaction band).
    """
    if half_width_m <= 0:
        raise SignalProcessingError("half_width_m must be positive")
    centre = locate_hand(range_profile, range_axis_m, config)
    if centre is None:
        return fallback
    lo = max(centre - half_width_m, 0.02)
    hi = centre + half_width_m
    return (lo, hi)
