"""Radar Cube construction and segmentation (paper Secs. III-IV).

After pre-processing, the paper assembles a four-dimensional matrix
``RC in R^{F x V x D x A}`` -- frames x velocity bins x distance bins x
angle bins -- and feeds the network segments of ``st`` consecutive frames.
Azimuth and elevation spectra share the angle axis by concatenation
(``A = A_az + A_el``), as documented in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DspConfig, RadarConfig
from repro.dsp.fft import AngleProcessor, doppler_fft, range_fft
from repro.dsp.filters import hand_bandpass
from repro.errors import SignalProcessingError
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.radar.antenna import VirtualArray, iwr1443_array


@dataclass
class RadarCube:
    """The pre-processed radar cube plus its physical axes.

    ``values`` has shape ``(F, V, D, A)`` and holds log-compressed
    magnitudes; ``range_axis_m`` / ``velocity_axis_mps`` /
    ``azimuth_axis_rad`` / ``elevation_axis_rad`` give the physical
    coordinate of every bin.
    """

    values: np.ndarray
    range_axis_m: np.ndarray
    velocity_axis_mps: np.ndarray
    azimuth_axis_rad: np.ndarray
    elevation_axis_rad: np.ndarray

    def __post_init__(self) -> None:
        if self.values.ndim != 4:
            raise SignalProcessingError(
                f"radar cube must be 4-D (F, V, D, A), got "
                f"{self.values.shape}"
            )
        f, v, d, a = self.values.shape
        if len(self.velocity_axis_mps) != v:
            raise SignalProcessingError("velocity axis length mismatch")
        if len(self.range_axis_m) != d:
            raise SignalProcessingError("range axis length mismatch")
        if len(self.azimuth_axis_rad) + len(self.elevation_axis_rad) != a:
            raise SignalProcessingError("angle axis length mismatch")

    @property
    def num_frames(self) -> int:
        return self.values.shape[0]


class CubeBuilder:
    """Runs the full pre-processing chain on raw IF frames.

    filter -> range-FFT -> Doppler-FFT -> angle spectra -> log magnitude.

    The angle stage processes all frames in one batched beamforming
    tensordot (antennas first, every frame in the tail axes) instead of
    a per-frame Python loop; :meth:`build_reference` keeps the original
    frame-by-frame path for equivalence tests and benchmarking.
    """

    def __init__(
        self,
        radar: Optional[RadarConfig] = None,
        dsp: Optional[DspConfig] = None,
        array: Optional[VirtualArray] = None,
    ) -> None:
        self.radar = radar if radar is not None else RadarConfig()
        self.dsp = dsp if dsp is not None else DspConfig()
        self.array = array if array is not None else iwr1443_array(self.radar)
        self._angle = AngleProcessor(self.array, self.dsp)

    def build(self, raw_frames: np.ndarray) -> RadarCube:
        """Pre-process raw IF frames ``(F, V_ant, L, N)`` into a cube.

        Accepts a single frame ``(V_ant, L, N)`` as well.
        """
        cube, _ = self.build_timed(raw_frames)
        return cube

    def build_timed(
        self, raw_frames: np.ndarray
    ) -> Tuple[RadarCube, Dict[str, float]]:
        """Like :meth:`build`, also returning per-stage wall-clock times.

        The timing dict maps ``bandpass`` / ``range_fft`` /
        ``doppler_fft`` / ``angle`` to seconds; the serving layer feeds
        these into its ``preprocess_*`` histograms. Each stage is also
        traced as a ``dsp.<stage>`` span and observed in the global
        ``dsp.cube.<stage>_s`` histograms.
        """
        raw = self._validate_raw(raw_frames)
        timings: Dict[str, float] = {}
        with trace.span("dsp.cube.build", frames=raw.shape[0]):
            tic = time.perf_counter()
            with trace.span("dsp.bandpass"):
                filtered = hand_bandpass(raw, self.radar, self.dsp)
            timings["bandpass"] = time.perf_counter() - tic
            tic = time.perf_counter()
            with trace.span("dsp.range_fft"):
                # -> (F, V_ant, L, D)
                ranged = range_fft(filtered, self.radar, self.dsp)
            timings["range_fft"] = time.perf_counter() - tic
            tic = time.perf_counter()
            with trace.span("dsp.doppler_fft"):
                doppler = doppler_fft(ranged, self.radar, self.dsp, axis=2)
            timings["doppler_fft"] = time.perf_counter() - tic
            # -> (F, V_ant, Vdopp, D); angle processing wants antennas
            # first, and handles all frames at once through its tail axes.
            tic = time.perf_counter()
            with trace.span("dsp.angle"):
                azimuth, elevation = self._angle.spectra(
                    np.moveaxis(doppler, 1, 0)
                )
                # (A_az, F, Vd, D) and (A_el, F, Vd, D) -> (F, Vd, D, A)
                combined = np.concatenate([azimuth, elevation], axis=0)
                values = np.log1p(np.moveaxis(combined, 0, -1))
            timings["angle"] = time.perf_counter() - tic
        for stage, seconds in timings.items():
            obs_metrics.histogram(f"dsp.cube.{stage}_s").observe(seconds)
        return self._assemble(values), timings

    def build_reference(self, raw_frames: np.ndarray) -> RadarCube:
        """Frame-by-frame reference implementation of :meth:`build`.

        This is the pre-batching code path: scipy's sample-by-sample
        ``sosfiltfilt`` and one angle-spectra call per frame. Kept for
        equivalence tests (`build` must match it to <= 1e-9) and as the
        benchmark baseline.
        """
        raw = self._validate_raw(raw_frames)
        filtered = hand_bandpass(
            raw, self.radar, self.dsp, method="sosfiltfilt"
        )
        ranged = range_fft(filtered, self.radar, self.dsp)
        doppler = doppler_fft(ranged, self.radar, self.dsp, axis=2)
        frames = []
        for f in range(doppler.shape[0]):
            azimuth, elevation = self._angle.spectra(doppler[f])
            combined = np.concatenate([azimuth, elevation], axis=0)
            frames.append(np.moveaxis(combined, 0, -1))
        values = np.log1p(np.stack(frames))
        return self._assemble(values)

    def _validate_raw(self, raw_frames: np.ndarray) -> np.ndarray:
        raw = np.asarray(raw_frames)
        if raw.ndim == 3:
            raw = raw[None]
        if raw.ndim != 4:
            raise SignalProcessingError(
                "raw frames must have shape (F, antennas, loops, samples)"
            )
        if raw.shape[1] != self.array.num_virtual:
            raise SignalProcessingError(
                f"expected {self.array.num_virtual} virtual antennas, "
                f"got {raw.shape[1]}"
            )
        return raw

    def _assemble(self, values: np.ndarray) -> RadarCube:
        return RadarCube(
            values=values,
            range_axis_m=self.range_axis_m(),
            velocity_axis_mps=self.velocity_axis_mps(),
            azimuth_axis_rad=self._angle.azimuth_axis,
            elevation_axis_rad=self._angle.elevation_axis,
        )

    def range_axis_m(self) -> np.ndarray:
        """Physical range of every distance bin."""
        return np.arange(self.dsp.range_bins) * self.radar.range_resolution_m

    def velocity_axis_mps(self) -> np.ndarray:
        """Physical radial velocity of every Doppler bin."""
        loops = self.radar.chirp_loops
        centre = loops // 2
        lo = centre - self.dsp.doppler_bins // 2
        bins = np.arange(lo, lo + self.dsp.doppler_bins) - centre
        return bins * self.radar.velocity_resolution_mps


def segment_cube(
    values: np.ndarray, segment_frames: int, stride: Optional[int] = None
) -> List[np.ndarray]:
    """Split cube values ``(F, V, D, A)`` into ``(st, V, D, A)`` segments.

    ``stride`` defaults to ``segment_frames`` (non-overlapping). Trailing
    frames that do not fill a segment are dropped, mirroring the paper's
    fixed-length network input.
    """
    values = np.asarray(values)
    if values.ndim != 4:
        raise SignalProcessingError("expected a 4-D cube (F, V, D, A)")
    if segment_frames < 1:
        raise SignalProcessingError("segment_frames must be >= 1")
    if stride is None:
        stride = segment_frames
    if stride < 1:
        raise SignalProcessingError("stride must be >= 1")
    segments = []
    start = 0
    while start + segment_frames <= values.shape[0]:
        segments.append(values[start : start + segment_frames])
        start += stride
    return segments
