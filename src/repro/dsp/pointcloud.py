"""Radar point-cloud extraction from the 4-D radar cube.

Many mmWave sensing systems (e.g. RadHAR, mPose) convert the radar cube
into a sparse 3-D point cloud of detected reflectors. mmHand feeds the
dense cube to its network instead, but the point-cloud view is valuable
for inspection, debugging and alternative baselines: each detected cell
becomes a point with Cartesian position, radial velocity and intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.dsp.cfar import CfarConfig, ca_cfar
from repro.dsp.radar_cube import RadarCube
from repro.errors import SignalProcessingError


@dataclass
class PointCloud:
    """Detected radar points for one frame.

    Attributes
    ----------
    positions:
        (P, 3) Cartesian positions in the radar frame (x boresight).
    velocities:
        (P,) radial velocities in m/s (positive receding).
    intensities:
        (P,) log-magnitude intensities from the cube.
    """

    positions: np.ndarray
    velocities: np.ndarray
    intensities: np.ndarray

    def __post_init__(self) -> None:
        self.positions = np.atleast_2d(
            np.asarray(self.positions, dtype=float)
        )
        self.velocities = np.atleast_1d(
            np.asarray(self.velocities, dtype=float)
        )
        self.intensities = np.atleast_1d(
            np.asarray(self.intensities, dtype=float)
        )
        n = len(self.positions)
        if self.positions.shape != (n, 3):
            raise SignalProcessingError("positions must have shape (P, 3)")
        if self.velocities.shape != (n,) or self.intensities.shape != (n,):
            raise SignalProcessingError(
                "velocities/intensities must match positions"
            )

    def __len__(self) -> int:
        return len(self.positions)

    def centroid(self) -> np.ndarray:
        """Intensity-weighted centroid of the cloud."""
        if len(self) == 0:
            raise SignalProcessingError("empty point cloud has no centroid")
        weights = np.maximum(self.intensities, 1e-9)
        return (self.positions * weights[:, None]).sum(axis=0) / (
            weights.sum()
        )

    def top_k(self, k: int) -> "PointCloud":
        """The ``k`` strongest points (all points if fewer)."""
        if k < 1:
            raise SignalProcessingError("k must be >= 1")
        order = np.argsort(self.intensities)[::-1][:k]
        return PointCloud(
            positions=self.positions[order],
            velocities=self.velocities[order],
            intensities=self.intensities[order],
        )


def extract_pointcloud(
    cube: RadarCube,
    frame: int = 0,
    cfar: Optional[CfarConfig] = None,
    max_points: int = 64,
    min_intensity: float = 0.0,
) -> PointCloud:
    """Detect reflector points in one frame of a radar cube.

    CFAR runs along the range axis of the velocity-summed range-angle
    map; each detection contributes a point at the detected range, the
    azimuth/elevation of its strongest angle bins, and the Doppler of
    its strongest velocity bin.
    """
    if cfar is None:
        cfar = CfarConfig(guard_cells=1, training_cells=4,
                          threshold_factor=2.0)
    if not 0 <= frame < cube.num_frames:
        raise SignalProcessingError(
            f"frame {frame} out of range (cube has {cube.num_frames})"
        )
    values = cube.values[frame]  # (V, D, A)
    num_az = len(cube.azimuth_axis_rad)

    range_profile = values.sum(axis=(0, 2))
    detections = ca_cfar(range_profile, cfar)

    positions: List[np.ndarray] = []
    velocities: List[float] = []
    intensities: List[float] = []
    for d in np.nonzero(detections)[0]:
        cell = values[:, d, :]  # (V, A)
        intensity = float(cell.max())
        if intensity < min_intensity:
            continue
        v_bin = int(cell.max(axis=1).argmax())
        az_bin = int(cell[:, :num_az].max(axis=0).argmax())
        el_bin = int(cell[:, num_az:].max(axis=0).argmax())
        r = float(cube.range_axis_m[d])
        az = float(cube.azimuth_axis_rad[min(az_bin,
                                             len(cube.azimuth_axis_rad) - 1)])
        el = float(
            cube.elevation_axis_rad[
                min(el_bin, len(cube.elevation_axis_rad) - 1)
            ]
        )
        positions.append(
            np.array(
                [
                    r * np.cos(el) * np.cos(az),
                    r * np.cos(el) * np.sin(az),
                    r * np.sin(el),
                ]
            )
        )
        velocities.append(float(cube.velocity_axis_mps[v_bin]))
        intensities.append(intensity)

    if not positions:
        return PointCloud(
            positions=np.zeros((0, 3)),
            velocities=np.zeros(0),
            intensities=np.zeros(0),
        )
    cloud = PointCloud(
        positions=np.array(positions),
        velocities=np.array(velocities),
        intensities=np.array(intensities),
    )
    return cloud.top_k(max_points) if len(cloud) > max_points else cloud


def sequence_pointclouds(
    cube: RadarCube, **kwargs
) -> List[PointCloud]:
    """Point clouds for every frame of a cube."""
    return [
        extract_pointcloud(cube, frame=f, **kwargs)
        for f in range(cube.num_frames)
    ]
