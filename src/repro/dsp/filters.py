"""Hand-band isolation filter (paper Sec. III).

The hand is always the closest reflector during gesture interaction, so
it occupies the lowest dominant band of IF frequencies. The paper removes
environmental interference (body, furniture) by passing the raw IF signal
through an 8th-order Butterworth bandpass that keeps only the hand's
range band before any FFT.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import signal

from repro.config import SPEED_OF_LIGHT, DspConfig, RadarConfig
from repro.dsp.plans import butterworth_bandpass_sos, filtfilt_operator
from repro.errors import SignalProcessingError

_OPERATOR_MAX_SAMPLES = 256
"""Fast-time lengths up to this run the bandpass as one cached dense
operator (cost per sample grows with length); longer signals use
scipy's sample-by-sample ``sosfiltfilt``."""


def band_to_if_hz(
    radar: RadarConfig, band_m: Tuple[float, float]
) -> Tuple[float, float]:
    """Convert a range band (metres) into IF beat frequencies (Hz).

    From ``r = c f Tc / (2B)`` the IF frequency of range ``r`` is
    ``f = 2 B r / (c Tc)``.
    """
    lo_m, hi_m = band_m
    if not 0 <= lo_m < hi_m:
        raise SignalProcessingError("range band must satisfy 0 <= lo < hi")
    scale = 2.0 * radar.bandwidth_hz / (SPEED_OF_LIGHT * radar.chirp_duration_s)
    return lo_m * scale, hi_m * scale


def hand_bandpass(
    data: np.ndarray,
    radar: RadarConfig,
    dsp: DspConfig,
    method: str = "auto",
) -> np.ndarray:
    """Apply the 8th-order Butterworth bandpass along fast time.

    ``data`` is a complex IF cube whose *last* axis is fast-time samples;
    any leading axes (antennas, chirps, frames) are filtered independently.
    Zero-phase filtering (forward-backward) avoids group-delay range bias.

    ``method`` selects the implementation: ``"auto"`` (default) applies
    the cached dense filtfilt operator for short fast-time axes and
    falls back to scipy for long ones, ``"operator"`` / ``"sosfiltfilt"``
    force one path. All paths implement the same filter; the operator
    matches ``sosfiltfilt`` to ~1e-14 relative.
    """
    data = np.asarray(data)
    if data.shape[-1] != radar.samples_per_chirp:
        raise SignalProcessingError(
            "last axis must be fast-time samples "
            f"({radar.samples_per_chirp}), got {data.shape[-1]}"
        )
    if method not in ("auto", "operator", "sosfiltfilt"):
        raise SignalProcessingError(
            f"unknown bandpass method {method!r}"
        )
    lo_hz, hi_hz = band_to_if_hz(radar, dsp.hand_band_m)
    nyquist = radar.sample_rate_hz / 2.0
    lo = max(lo_hz / nyquist, 1e-4)
    hi = min(hi_hz / nyquist, 1.0 - 1e-4)
    if lo >= hi:
        raise SignalProcessingError(
            "hand band maps to an empty normalised frequency interval"
        )
    # scipy's N is the per-section order; a bandpass doubles it, so N=4
    # yields the paper's 8th-order filter. The SOS only depends on config
    # values, so it comes from the shared plan cache.
    order = max(dsp.butterworth_order // 2, 1)
    n = data.shape[-1]
    padlen = min(n - 1, 3 * (2 * order + 1))
    fast = dsp.precision == "fast"
    if method == "operator" or (
        method == "auto" and n <= _OPERATOR_MAX_SAMPLES
    ):
        if np.iscomplexobj(data):
            op_dtype = np.complex64 if fast else np.complex128
        else:
            op_dtype = np.float32 if fast else np.float64
        operator = filtfilt_operator(
            order, lo, hi, n, padlen, dtype=op_dtype
        )
        if fast:
            target = np.complex64 if np.iscomplexobj(data) else np.float32
            data = data.astype(target, copy=False)
        return data @ operator
    # Copy the frozen SOS plan: scipy's kernel needs writable buffers.
    sos = butterworth_bandpass_sos(order, lo, hi).copy()
    out = signal.sosfiltfilt(sos, data, axis=-1, padlen=padlen)
    if fast:
        # sosfiltfilt always computes in double; downcast once here so
        # every later stage runs in single precision.
        target = np.complex64 if np.iscomplexobj(out) else np.float32
        out = out.astype(target, copy=False)
    return out
