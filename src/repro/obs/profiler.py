"""Low-overhead sampling profiler (folded stacks / flamegraphs).

A :class:`SamplingProfiler` wakes a daemon thread ``hz`` times per
second, snapshots every other thread's python stack via
``sys._current_frames()``, and counts *folded stacks* -- the
semicolon-joined frame chain that ``flamegraph.pl`` and speedscope
consume directly. Because it only samples (no tracing hooks, no
``sys.setprofile``), the profiled code runs at full speed between
samples; the measured cost is the sampling thread's own CPU time, which
the profiler reports as an ``overhead_ratio`` against the profiled wall
time (see DESIGN.md for measured numbers -- well under 1% at the
default 97 Hz).

The state is a plain ``dict`` of folded-stack strings to sample counts,
so profiles are picklable: gateway workers run a profiler in-process and
ship :meth:`SamplingProfiler.to_dict` back over the control pipe, and
the dispatcher merges them (:func:`merge_profiles`) with a per-process
root frame (``worker-0;...``) into one combined flamegraph.

The default rate is 97 Hz, a prime, so the sampler cannot phase-lock
with periodic work scheduled at round frequencies.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

DEFAULT_HZ = 97.0


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    qualname = getattr(code, "co_qualname", code.co_name)
    return f"{module}.{qualname}"


class SamplingProfiler:
    """Periodic whole-process stack sampler with folded-stack export."""

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_depth: int = 128,
    ) -> None:
        if hz <= 0:
            raise ObservabilityError("profiler hz must be > 0")
        if max_depth < 1:
            raise ObservabilityError("profiler max_depth must be >= 1")
        self.hz = float(hz)
        self.max_depth = max_depth
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0
        self.sample_cost_s = 0.0
        self._started_at: Optional[float] = None
        self.elapsed_s = 0.0

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            raise ObservabilityError("profiler is already running")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._started_at is not None:
            self.elapsed_s += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        while not self._stop.is_set():
            t0 = time.perf_counter()
            self._sample(own_ident)
            self.sample_cost_s += time.perf_counter() - t0
            self._stop.wait(interval)

    def _sample(self, own_ident: int) -> None:
        names = {
            thread.ident: thread.name for thread in threading.enumerate()
        }
        for ident, frame in list(sys._current_frames().items()):
            if ident == own_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()
            root = names.get(ident, f"thread-{ident}")
            folded = ";".join([root] + stack)
            with self._lock:
                self._counts[folded] = self._counts.get(folded, 0) + 1
                self.samples += 1

    # -- results --------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def folded(self) -> str:
        """The profile in folded-stack format (one ``stack count`` per
        line), ready for ``flamegraph.pl`` or speedscope."""
        counts = self.counts()
        return "\n".join(
            f"{stack} {count}"
            for stack, count in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )

    def overhead_ratio(self) -> float:
        """Sampling CPU time as a fraction of profiled wall time."""
        elapsed = self.elapsed_s
        if self._started_at is not None:
            elapsed += time.perf_counter() - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.sample_cost_s / elapsed

    def stats(self) -> Dict[str, Any]:
        return {
            "hz": self.hz,
            "samples": self.samples,
            "distinct_stacks": len(self.counts()),
            "elapsed_s": self.elapsed_s,
            "sample_cost_s": self.sample_cost_s,
            "overhead_ratio": self.overhead_ratio(),
        }

    def top(self, limit: int = 15) -> List[Tuple[str, int]]:
        """Leaf-frame self-sample counts, heaviest first."""
        leaves: Dict[str, int] = {}
        for stack, count in self.counts().items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    def report(self, limit: int = 15) -> str:
        """Human-readable self-time table plus overhead accounting."""
        stats = self.stats()
        lines = [
            f"profile: {stats['samples']} samples @ {self.hz:g} Hz over "
            f"{stats['elapsed_s']:.2f}s "
            f"(overhead {100 * stats['overhead_ratio']:.2f}%)",
        ]
        total = max(1, stats["samples"])
        for leaf, count in self.top(limit):
            lines.append(f"  {100 * count / total:5.1f}%  {count:6d}  {leaf}")
        return "\n".join(lines)

    # -- shipping / merging --------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Picklable snapshot (shipped over the gateway control pipe)."""
        return {
            "counts": self.counts(),
            "samples": self.samples,
            "hz": self.hz,
            "elapsed_s": self.elapsed_s
            + (
                time.perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "sample_cost_s": self.sample_cost_s,
        }


def merge_profiles(parts: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-process profile dicts under per-process root frames.

    ``parts`` maps a lane name (``dispatcher``, ``worker-0``) to a
    :meth:`SamplingProfiler.to_dict` payload; the result is the same
    shape with every stack prefixed by its lane, so one flamegraph shows
    all processes side by side.
    """
    counts: Dict[str, int] = {}
    samples = 0
    elapsed = 0.0
    cost = 0.0
    hz = DEFAULT_HZ
    for lane, part in sorted(parts.items()):
        if not part:
            continue
        for stack, count in part.get("counts", {}).items():
            key = f"{lane};{stack}"
            counts[key] = counts.get(key, 0) + count
        samples += part.get("samples", 0)
        elapsed = max(elapsed, part.get("elapsed_s", 0.0))
        cost += part.get("sample_cost_s", 0.0)
        hz = part.get("hz", hz)
    return {
        "counts": counts,
        "samples": samples,
        "hz": hz,
        "elapsed_s": elapsed,
        "sample_cost_s": cost,
    }


def folded_from_dict(profile: Dict[str, Any]) -> str:
    """Render a profile dict (single or merged) as folded stacks."""
    counts = profile.get("counts", {})
    return "\n".join(
        f"{stack} {count}"
        for stack, count in sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
    )
