"""Hierarchical trace spans for the whole pipeline.

A span measures one named unit of work (``dsp.range_fft``,
``model.forward``, ``serving.batch``) with wall-clock start/duration,
the identity of its parent span on the same thread, and arbitrary
key/value fields. Spans nest through a thread-local stack, so
concurrent sessions and worker threads each get a coherent ancestry
without any coordination; finished spans land in one bounded,
process-wide buffer.

Two exporters cover the common workflows:

* :meth:`Tracer.export_jsonl` -- one JSON object per line, trivially
  greppable and diffable;
* :meth:`Tracer.export_chrome` -- the Chrome trace-event format, load
  the file in ``chrome://tracing`` (or https://ui.perfetto.dev) to see
  the nested timeline per thread.

The module-level functions operate on the process-global tracer so
instrumented library code only needs ``from repro.obs import trace``
and ``with trace.span("dsp.range_fft", frames=n): ...``. Tracing is
enabled by default; the per-span cost is two ``perf_counter`` calls and
one dict, and the buffer is bounded, so leaving it on in production is
deliberate.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError

_span_ids = itertools.count(1)


class Span:
    """One unit of traced work; created by :meth:`Tracer.span`."""

    __slots__ = (
        "name", "span_id", "parent_id", "correlation_id", "start_s",
        "end_s", "fields", "status", "error", "thread_id", "thread_name",
    )

    def __init__(
        self,
        name: str,
        parent_id: Optional[int],
        correlation_id: Optional[str],
        start_s: float,
        fields: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.correlation_id = correlation_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.fields = fields
        self.status = "ok"
        self.error: Optional[str] = None
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **fields: Any) -> None:
        """Attach extra fields to a live span."""
        self.fields.update(fields)

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
        }
        if self.correlation_id is not None:
            record["correlation_id"] = self.correlation_id
        if self.error is not None:
            record["error"] = self.error
        if self.fields:
            record["fields"] = dict(self.fields)
        return record


class Tracer:
    """Bounded collector of finished spans with thread-local nesting."""

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity < 1:
            raise ObservabilityError("tracer capacity must be >= 1")
        self.enabled = enabled
        self._finished: Deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    # -- thread-local context ------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost live span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def get_correlation(self) -> Optional[str]:
        return getattr(self._local, "correlation_id", None)

    def set_correlation(self, correlation_id: Optional[str]) -> None:
        """Set this thread's correlation id; inherited by new spans."""
        self._local.correlation_id = correlation_id

    @contextmanager
    def correlation(self, correlation_id: str) -> Iterator[None]:
        """Scope a correlation id over a block (restores the previous)."""
        previous = self.get_correlation()
        self.set_correlation(correlation_id)
        try:
            yield
        finally:
            self.set_correlation(previous)

    # -- span lifecycle -------------------------------------------------
    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Optional[Span]]:
        """Trace a block as one span; exception-safe and re-raising.

        Yields the live :class:`Span` (or ``None`` when tracing is
        disabled) so callers can :meth:`Span.set` result fields.
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name,
            parent.span_id if parent is not None else None,
            self.get_correlation(),
            time.perf_counter() - self._epoch,
            fields,
        )
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = type(exc).__name__
            raise
        finally:
            span.end_s = time.perf_counter() - self._epoch
            stack.pop()
            with self._lock:
                self._finished.append(span)

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def spans(self) -> List[Dict[str, Any]]:
        """Finished spans, oldest first, as plain dicts."""
        with self._lock:
            return [span.to_dict() for span in self._finished]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Temporarily disable tracing (benchmark baselines, tests)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate finished spans by name: count / total / mean / max."""
        totals: Dict[str, Dict[str, float]] = {}
        for record in self.spans():
            entry = totals.setdefault(
                record["name"],
                {"count": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0,
                 "errors": 0},
            )
            entry["count"] += 1
            entry["total_s"] += record["duration_s"]
            entry["max_s"] = max(entry["max_s"], record["duration_s"])
            if record["status"] != "ok":
                entry["errors"] += 1
        for entry in totals.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return totals

    # -- exporters ------------------------------------------------------
    def export_jsonl(self, path: str) -> str:
        """Write finished spans as JSON lines; returns ``path``."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            for record in self.spans():
                fh.write(json.dumps(record, default=str) + "\n")
        return path

    def export_chrome(self, path: str) -> str:
        """Write finished spans in Chrome trace-event format.

        Emits complete ("ph": "X") events with microsecond timestamps;
        nesting is reconstructed by the viewer from the per-thread
        ts/dur stacking. Load in ``chrome://tracing`` or Perfetto.
        """
        events = []
        for record in sorted(self.spans(), key=lambda r: r["start_s"]):
            args: Dict[str, Any] = {
                "span_id": record["span_id"],
                "parent_id": record["parent_id"],
                "status": record["status"],
            }
            if "correlation_id" in record:
                args["correlation_id"] = record["correlation_id"]
            if "error" in record:
                args["error"] = record["error"]
            args.update(record.get("fields", {}))
            events.append(
                {
                    "name": record["name"],
                    "cat": record["name"].split(".", 1)[0],
                    "ph": "X",
                    "ts": record["start_s"] * 1e6,
                    "dur": record["duration_s"] * 1e6,
                    "pid": os.getpid(),
                    "tid": record["thread_id"],
                    "args": args,
                }
            )
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(
                {"traceEvents": events, "displayTimeUnit": "ms"},
                fh, default=str,
            )
        return path


_GLOBAL = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer used by the instrumented library."""
    return _GLOBAL


def span(name: str, **fields: Any):
    """``with trace.span("dsp.range_fft", frames=n):`` on the global
    tracer."""
    return _GLOBAL.span(name, **fields)


def current() -> Optional[Span]:
    return _GLOBAL.current()


def correlation(correlation_id: str):
    return _GLOBAL.correlation(correlation_id)


def set_correlation(correlation_id: Optional[str]) -> None:
    _GLOBAL.set_correlation(correlation_id)


def get_correlation() -> Optional[str]:
    return _GLOBAL.get_correlation()


def export_chrome(path: str) -> str:
    return _GLOBAL.export_chrome(path)


def export_jsonl(path: str) -> str:
    return _GLOBAL.export_jsonl(path)


def clear() -> None:
    _GLOBAL.clear()


def summary() -> Dict[str, Dict[str, float]]:
    return _GLOBAL.summary()
