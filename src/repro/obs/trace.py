"""Hierarchical trace spans for the whole pipeline.

A span measures one named unit of work (``dsp.range_fft``,
``model.forward``, ``serving.batch``) with wall-clock start/duration,
the identity of its parent span on the same thread, and arbitrary
key/value fields. Spans nest through a thread-local stack, so
concurrent sessions and worker threads each get a coherent ancestry
without any coordination; finished spans land in one bounded,
process-wide buffer.

Two exporters cover the common workflows:

* :meth:`Tracer.export_jsonl` -- one JSON object per line, trivially
  greppable and diffable;
* :meth:`Tracer.export_chrome` -- the Chrome trace-event format, load
  the file in ``chrome://tracing`` (or https://ui.perfetto.dev) to see
  the nested timeline per thread.

Spans also propagate **across process boundaries**: every span carries a
``trace_id`` (the root span's id), :meth:`Tracer.remote_context` parents
new spans under a ``(trace_id, parent_span_id)`` pair received from
another process (the gateway ships it in the shm-ring slot header), and
:func:`export_chrome_merged` folds span records from many processes into
one Chrome trace with per-process lanes. Span ids are seeded from the
pid so ids minted in a dispatcher and its forked workers never collide,
and every exported record carries a wall-clock ``start_unix`` so lanes
from different processes align on a shared axis.

The module-level functions operate on the process-global tracer so
instrumented library code only needs ``from repro.obs import trace``
and ``with trace.span("dsp.range_fft", frames=n): ...``. Tracing is
enabled by default; the per-span cost is two ``perf_counter`` calls and
one dict, and the buffer is bounded, so leaving it on in production is
deliberate.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError

# Span ids must stay unique across every process whose spans merge into
# one trace (dispatcher + gateway workers). Seeding the counter with the
# pid in the high bits gives each process its own id space without any
# cross-process coordination; the seed is re-derived after fork.
_ids_lock = threading.Lock()
_ids_pid: Optional[int] = None
_span_ids = itertools.count(1)


def _new_span_id() -> int:
    global _ids_pid, _span_ids
    pid = os.getpid()
    if pid != _ids_pid:
        with _ids_lock:
            if pid != _ids_pid:
                _span_ids = itertools.count(((pid & 0x3FFFFF) << 40) | 1)
                _ids_pid = pid
    return next(_span_ids)


class TraceContext:
    """A ``(trace_id, span_id)`` pair that can cross a process boundary."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id


class Span:
    """One unit of traced work; created by :meth:`Tracer.span`."""

    __slots__ = (
        "name", "span_id", "trace_id", "parent_id", "correlation_id",
        "start_s", "end_s", "fields", "status", "error", "thread_id",
        "thread_name",
    )

    def __init__(
        self,
        name: str,
        parent_id: Optional[int],
        correlation_id: Optional[str],
        start_s: float,
        fields: Dict[str, Any],
        trace_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self.span_id = _new_span_id()
        # Root spans start a new trace: the trace id is their own id.
        self.trace_id = trace_id if trace_id else self.span_id
        self.parent_id = parent_id
        self.correlation_id = correlation_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.fields = fields
        self.status = "ok"
        self.error: Optional[str] = None
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **fields: Any) -> None:
        """Attach extra fields to a live span."""
        self.fields.update(fields)

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
        }
        if self.correlation_id is not None:
            record["correlation_id"] = self.correlation_id
        if self.error is not None:
            record["error"] = self.error
        if self.fields:
            record["fields"] = dict(self.fields)
        return record


class Tracer:
    """Bounded collector of finished spans with thread-local nesting."""

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity < 1:
            raise ObservabilityError("tracer capacity must be >= 1")
        self.enabled = enabled
        self._finished: Deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        # Span timestamps are perf_counter-relative to ``_epoch``;
        # ``_epoch_unix`` is the matching wall-clock instant so spans
        # from different processes can be merged on one absolute axis.
        self._epoch = time.perf_counter()
        self._epoch_unix = time.time()

    # -- thread-local context ------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost live span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def get_correlation(self) -> Optional[str]:
        return getattr(self._local, "correlation_id", None)

    def set_correlation(self, correlation_id: Optional[str]) -> None:
        """Set this thread's correlation id; inherited by new spans."""
        self._local.correlation_id = correlation_id

    @contextmanager
    def correlation(self, correlation_id: str) -> Iterator[None]:
        """Scope a correlation id over a block (restores the previous)."""
        previous = self.get_correlation()
        self.set_correlation(correlation_id)
        try:
            yield
        finally:
            self.set_correlation(previous)

    # -- cross-process context -----------------------------------------
    def current_context(self) -> Optional[TraceContext]:
        """The propagatable context of this thread's innermost span."""
        span = self.current()
        if span is not None:
            return TraceContext(span.trace_id, span.span_id)
        return getattr(self._local, "remote", None)

    @contextmanager
    def remote_context(
        self, trace_id: int, parent_span_id: int
    ) -> Iterator[None]:
        """Parent this thread's new root spans under a remote span.

        Used on the receiving side of a process boundary: the gateway
        worker scopes each frame's work under the ``(trace_id,
        parent_span_id)`` pair the dispatcher stamped into the ring slot
        header, so the worker's spans join the dispatcher's trace.
        A zero ``trace_id`` means "no context" and is a no-op scope.
        """
        if not trace_id:
            yield
            return
        previous = getattr(self._local, "remote", None)
        self._local.remote = TraceContext(trace_id, parent_span_id)
        try:
            yield
        finally:
            self._local.remote = previous

    # -- timestamp conversion ------------------------------------------
    def rel_from_unix(self, unix_ts: float) -> float:
        """A wall-clock timestamp as this tracer's relative seconds."""
        return unix_ts - self._epoch_unix

    def rel_from_perf(self, perf_ts: float) -> float:
        """A ``perf_counter`` timestamp as relative seconds."""
        return perf_ts - self._epoch

    def now_s(self) -> float:
        return time.perf_counter() - self._epoch

    # -- span lifecycle -------------------------------------------------
    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Optional[Span]]:
        """Trace a block as one span; exception-safe and re-raising.

        Yields the live :class:`Span` (or ``None`` when tracing is
        disabled) so callers can :meth:`Span.set` result fields.
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
            trace_id: Optional[int] = parent.trace_id
        else:
            remote = getattr(self._local, "remote", None)
            if remote is not None:
                parent_id = remote.span_id
                trace_id = remote.trace_id
            else:
                parent_id = None
                trace_id = None
        span = Span(
            name,
            parent_id,
            self.get_correlation(),
            time.perf_counter() - self._epoch,
            fields,
            trace_id=trace_id,
        )
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = type(exc).__name__
            raise
        finally:
            span.end_s = time.perf_counter() - self._epoch
            stack.pop()
            with self._lock:
                self._finished.append(span)

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        trace_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        correlation_id: Optional[str] = None,
        status: str = "ok",
        **fields: Any,
    ) -> Optional[Span]:
        """Inject an already-timed span straight into the buffer.

        For work whose boundaries were measured out-of-band (the gateway
        worker attributes a batched forward to each frame after the
        fact): timestamps are this tracer's relative seconds (see
        :meth:`rel_from_unix` / :meth:`rel_from_perf`), and the parent
        may live in another process.
        """
        if not self.enabled:
            return None
        span = Span(
            name, parent_id, correlation_id, start_s, fields,
            trace_id=trace_id,
        )
        span.end_s = end_s
        span.status = status
        with self._lock:
            self._finished.append(span)
        return span

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def _to_records(self, spans: List[Span]) -> List[Dict[str, Any]]:
        pid = os.getpid()
        records = []
        for span in spans:
            record = span.to_dict()
            record["pid"] = pid
            record["start_unix"] = self._epoch_unix + record["start_s"]
            records.append(record)
        return records

    def spans(self) -> List[Dict[str, Any]]:
        """Finished spans, oldest first, as plain dicts."""
        with self._lock:
            spans = list(self._finished)
        return self._to_records(spans)

    def drain(self) -> List[Dict[str, Any]]:
        """Pop every finished span as dicts (empties the buffer).

        Gateway workers drain on each stats request so repeated drains
        ship incremental batches over the control pipe.
        """
        with self._lock:
            spans = list(self._finished)
            self._finished.clear()
        return self._to_records(spans)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Temporarily disable tracing (benchmark baselines, tests)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate finished spans by name: count / total / mean / max."""
        totals: Dict[str, Dict[str, float]] = {}
        for record in self.spans():
            entry = totals.setdefault(
                record["name"],
                {"count": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0,
                 "errors": 0},
            )
            entry["count"] += 1
            entry["total_s"] += record["duration_s"]
            entry["max_s"] = max(entry["max_s"], record["duration_s"])
            if record["status"] != "ok":
                entry["errors"] += 1
        for entry in totals.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return totals

    # -- exporters ------------------------------------------------------
    def export_jsonl(self, path: str) -> str:
        """Write finished spans as JSON lines; returns ``path``."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            for record in self.spans():
                fh.write(json.dumps(record, default=str) + "\n")
        return path

    def export_chrome(self, path: str) -> str:
        """Write finished spans in Chrome trace-event format.

        Emits complete ("ph": "X") events with microsecond timestamps;
        nesting is reconstructed by the viewer from the per-thread
        ts/dur stacking. Load in ``chrome://tracing`` or Perfetto.
        """
        events = []
        for record in sorted(self.spans(), key=lambda r: r["start_s"]):
            args: Dict[str, Any] = {
                "span_id": record["span_id"],
                "parent_id": record["parent_id"],
                "status": record["status"],
            }
            if "correlation_id" in record:
                args["correlation_id"] = record["correlation_id"]
            if "error" in record:
                args["error"] = record["error"]
            args.update(record.get("fields", {}))
            events.append(
                {
                    "name": record["name"],
                    "cat": record["name"].split(".", 1)[0],
                    "ph": "X",
                    "ts": record["start_s"] * 1e6,
                    "dur": record["duration_s"] * 1e6,
                    "pid": os.getpid(),
                    "tid": record["thread_id"],
                    "args": args,
                }
            )
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(
                {"traceEvents": events, "displayTimeUnit": "ms"},
                fh, default=str,
            )
        return path


def chrome_events(
    records: Iterable[Dict[str, Any]],
    process_names: Optional[Dict[int, str]] = None,
) -> List[Dict[str, Any]]:
    """Span records (possibly from many processes) as Chrome events.

    Records are aligned on their wall-clock ``start_unix`` (falling back
    to ``start_s`` for legacy records), normalised so the earliest event
    sits at ts=0, and each distinct pid gets a ``process_name`` metadata
    event (a named lane in Perfetto); threads likewise get
    ``thread_name`` metadata.
    """
    records = sorted(
        records, key=lambda r: r.get("start_unix", r["start_s"])
    )
    if not records:
        return []
    base = min(r.get("start_unix", r["start_s"]) for r in records)
    events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, str] = {}
    seen_threads: Dict[Tuple[int, int], str] = {}
    for record in records:
        pid = record.get("pid", os.getpid())
        tid = record["thread_id"]
        if pid not in seen_pids:
            seen_pids[pid] = (process_names or {}).get(pid, f"pid-{pid}")
        thread_key = (pid, tid)
        if thread_key not in seen_threads:
            seen_threads[thread_key] = record.get("thread_name", str(tid))
        args: Dict[str, Any] = {
            "span_id": record["span_id"],
            "trace_id": record.get("trace_id"),
            "parent_id": record["parent_id"],
            "status": record["status"],
        }
        if "correlation_id" in record:
            args["correlation_id"] = record["correlation_id"]
        if "error" in record:
            args["error"] = record["error"]
        args.update(record.get("fields", {}))
        events.append(
            {
                "name": record["name"],
                "cat": record["name"].split(".", 1)[0],
                "ph": "X",
                "ts": (record.get("start_unix", record["start_s"]) - base)
                * 1e6,
                "dur": record["duration_s"] * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    metadata: List[Dict[str, Any]] = []
    for index, (pid, name) in enumerate(sorted(seen_pids.items())):
        metadata.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": name}}
        )
        metadata.append(
            {"name": "process_sort_index", "ph": "M", "pid": pid,
             "args": {"sort_index": index}}
        )
    for (pid, tid), name in sorted(seen_threads.items()):
        metadata.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": name}}
        )
    return metadata + events


def export_chrome_merged(
    path: str,
    records: Iterable[Dict[str, Any]],
    process_names: Optional[Dict[int, str]] = None,
) -> str:
    """Write span records from many processes as one Chrome trace."""
    events = chrome_events(records, process_names)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            fh, default=str,
        )
    return path


_GLOBAL = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer used by the instrumented library."""
    return _GLOBAL


def span(name: str, **fields: Any):
    """``with trace.span("dsp.range_fft", frames=n):`` on the global
    tracer."""
    return _GLOBAL.span(name, **fields)


def current() -> Optional[Span]:
    return _GLOBAL.current()


def correlation(correlation_id: str):
    return _GLOBAL.correlation(correlation_id)


def current_context() -> Optional[TraceContext]:
    return _GLOBAL.current_context()


def remote_context(trace_id: int, parent_span_id: int):
    return _GLOBAL.remote_context(trace_id, parent_span_id)


def record(name: str, start_s: float, end_s: float, **kwargs: Any):
    return _GLOBAL.record(name, start_s, end_s, **kwargs)


def drain() -> List[Dict[str, Any]]:
    return _GLOBAL.drain()


def set_correlation(correlation_id: Optional[str]) -> None:
    _GLOBAL.set_correlation(correlation_id)


def get_correlation() -> Optional[str]:
    return _GLOBAL.get_correlation()


def export_chrome(path: str) -> str:
    return _GLOBAL.export_chrome(path)


def export_jsonl(path: str) -> str:
    return _GLOBAL.export_jsonl(path)


def clear() -> None:
    _GLOBAL.clear()


def summary() -> Dict[str, Dict[str, float]]:
    return _GLOBAL.summary()
