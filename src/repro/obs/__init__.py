"""Observability for the whole pipeline: traces, metrics, logs.

``repro.obs`` is the dependency-free layer every other subsystem
reports through (the only imports are numpy and the error hierarchy):

* :mod:`repro.obs.trace` -- hierarchical trace spans
  (``with trace.span("dsp.range_fft", frames=n):``) with thread-safe
  context propagation and exporters to JSONL and the Chrome
  ``chrome://tracing`` format;
* :mod:`repro.obs.metrics` -- the unified
  :class:`~repro.obs.metrics.MetricsRegistry` (promoted out of
  ``repro.serving.metrics``, which re-exports it) with collectors,
  Prometheus text exposition and a process-global facade;
* :mod:`repro.obs.logging` -- structured logfmt/JSON logging with rate
  limiting and span/session correlation ids;
* :mod:`repro.obs.profiler` -- a sampling profiler
  (``sys._current_frames()`` on a timer thread) with folded-stack
  export and picklable, mergeable per-process profiles.

Span and metric names follow ``layer.component.unit``
(``dsp.cube.bandpass_s``, ``radar.synthesize.sequence``,
``train.epoch.loss``); see DESIGN.md "Observability" for the taxonomy.
"""

from repro.obs import logging, metrics, profiler, trace
from repro.obs.logging import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.profiler import SamplingProfiler, merge_profiles
from repro.obs.trace import Span, TraceContext, Tracer, get_tracer

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SamplingProfiler",
    "Span",
    "StructuredLogger",
    "TraceContext",
    "Tracer",
    "configure",
    "get_logger",
    "get_registry",
    "get_tracer",
    "logging",
    "merge_profiles",
    "metrics",
    "profiler",
    "trace",
]
