"""Unified metrics for every layer of the pipeline.

This module is the promoted home of what used to be
``repro.serving.metrics`` (that path remains a re-export shim): a
deliberately small, dependency-free registry in the spirit of Prometheus
client libraries -- counters (monotonic), gauges (set/sample), latency
histograms with streaming percentile summaries, and a bounded
structured event log. Everything is thread-safe.

Beyond the original serving registry it adds:

* **collectors** -- callbacks run at snapshot/exposition time that pull
  third-party state (the DSP plan cache, queue depths) into first-class
  instruments, so derived metrics are never stale;
* **Prometheus text exposition** (:meth:`MetricsRegistry.to_prometheus`)
  alongside the plain-dict :meth:`MetricsRegistry.snapshot`;
* a **process-global registry** (:func:`get_registry` and the
  module-level :func:`counter`/:func:`gauge`/:func:`histogram` facade)
  shared by the DSP, radar, model and training layers.

Metric names follow ``layer.component.unit`` (``dsp.plan_cache.hits``,
``train.epoch.loss``); the Prometheus renderer sanitises them to
``mmhand_layer_component_unit``. Serving keeps its historical bare
names (``poses``, ``latency_s``) for snapshot compatibility.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from repro.errors import ServingError


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ServingError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move both ways (queue depth, open sessions)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


# Default cumulative bucket bounds for the Prometheus exposition --
# latency-oriented (seconds), from half a millisecond to ten seconds;
# +Inf is implicit and added by the renderer.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Reservoir of observations with percentile summaries.

    Keeps the most recent ``capacity`` observations (sliding reservoir);
    for serving latencies this biases the percentiles toward current
    behaviour, which is what a live dashboard wants. Lifetime ``count``,
    ``sum`` and ``mean`` cover every observation ever made;
    ``window_mean`` is the mean of the retained window only. Alongside
    the reservoir, every observation lands in a fixed set of cumulative
    lifetime buckets (``bucket_counts``) so the Prometheus exposition
    can emit true ``le``-labelled histogram series.
    """

    def __init__(
        self,
        name: str,
        capacity: int = 4096,
        buckets: Optional[tuple] = None,
    ) -> None:
        if capacity < 1:
            raise ServingError("histogram capacity must be >= 1")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        # _bucket_counts[i] counts observations <= buckets[i]
        # (cumulative, lifetime); observations above the last bound only
        # land in the implicit +Inf bucket (== lifetime count).
        self._bucket_counts = [0] * len(self.buckets)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._total += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    for i in range(index, len(self.buckets)):
                        self._bucket_counts[i] += 1
                    break

    def bucket_counts(self) -> List[tuple]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, n)``."""
        with self._lock:
            pairs = list(zip(self.buckets, self._bucket_counts))
            pairs.append((float("inf"), self._count))
        return pairs

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Lifetime sum of every observed value."""
        with self._lock:
            return self._total

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained samples."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self._samples:
                return {
                    "count": self._count, "sum": 0.0, "mean": 0.0,
                    "window_mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
                }
            arr = np.asarray(self._samples)
            p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
            return {
                "count": self._count,
                "sum": self._total,
                "mean": self._total / self._count,
                "window_mean": float(arr.mean()),
                "p50": float(p50),
                "p95": float(p95),
                "p99": float(p99),
                "max": float(arr.max()),
            }


class EventLog:
    """Bounded structured event log.

    Events are plain dicts with a monotonically increasing sequence
    number and a relative timestamp; the log keeps the most recent
    ``capacity`` entries and counts how many it has evicted
    (:attr:`dropped`) so ring saturation is visible rather than silent.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServingError("event log capacity must be >= 1")
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._start = time.perf_counter()
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            event = {
                "seq": self._seq,
                "t_s": time.perf_counter() - self._start,
                "kind": kind,
                **fields,
            }
            self._seq += 1
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
            self._events.append(event)
            return event

    @property
    def emitted(self) -> int:
        """Lifetime count of events ever emitted."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted because the ring was full."""
        with self._lock:
            return self._dropped

    def tail(self, count: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            events = list(self._events)
        if count is None:
            return events
        return events[-count:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def _prometheus_name(name: str, prefix: str = "mmhand") -> str:
    """Sanitise a ``layer.component.unit`` name for Prometheus."""
    sanitised = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    sanitised = re.sub(r"_+", "_", sanitised).strip("_")
    return f"{prefix}_{sanitised}"


class MetricsRegistry:
    """Namespace of counters, gauges and histograms plus the event log.

    Instruments are created on first use so call sites never need to
    pre-declare them; :meth:`snapshot` renders everything to plain
    python values for ``server.stats()`` and JSON reports, and
    :meth:`to_prometheus` renders the text exposition format.
    Registered collectors are invoked before either rendering so
    derived instruments (plan-cache counters, queue depth) are fresh.
    """

    def __init__(self, histogram_capacity: int = 4096,
                 event_capacity: int = 1024) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._histogram_capacity = histogram_capacity
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._help: Dict[str, str] = {}
        self.events = EventLog(event_capacity)
        self._lock = threading.Lock()

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` string to an instrument by name."""
        with self._lock:
            self._help[name] = help_text

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(
                    name, self._histogram_capacity
                )
            return self._histograms[name]

    def register_collector(
        self, collect: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a callback that refreshes derived instruments.

        Collectors run (in registration order) at the start of
        :meth:`snapshot` and :meth:`to_prometheus`. Registering the
        same callable twice is a no-op.
        """
        with self._lock:
            if collect not in self._collectors:
                self._collectors.append(collect)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect(self)

    def snapshot(self) -> Dict[str, Any]:
        self._run_collectors()
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.summary() for n, h in histograms.items()},
            "events": len(self.events),
            "events_emitted": self.events.emitted,
            "events_dropped": self.events.dropped,
        }

    def _help_text(self, name: str, kind: str) -> str:
        with self._lock:
            text = self._help.get(name)
        return text or f"{kind} {name!r} (mmhand pipeline)"

    @staticmethod
    def _fmt_le(bound: float) -> str:
        if bound == float("inf"):
            return "+Inf"
        text = f"{bound:.10f}".rstrip("0").rstrip(".")
        return text or "0"

    def to_prometheus(self, prefix: str = "mmhand") -> str:
        """Render the registry in Prometheus text exposition format.

        Counters become ``<prefix>_<name>_total``, gauges
        ``<prefix>_<name>``, and histograms full Prometheus
        *histograms*: cumulative ``_bucket{le=...}`` series (lifetime
        counts, ``+Inf`` included) plus ``_sum``/``_count``, with the
        reservoir quantiles kept alongside as ``<metric>_quantiles``
        summary series for dashboards that want percentiles without
        server-side ``histogram_quantile``. Every metric gets a
        ``# HELP`` line (override with :meth:`describe`).
        """
        self._run_collectors()
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        lines: List[str] = []
        for name in sorted(counters):
            metric = _prometheus_name(name, prefix)
            if not metric.endswith("_total"):
                metric += "_total"
            lines.append(f"# HELP {metric} {self._help_text(name, 'counter')}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counters[name].value}")
        for name in sorted(gauges):
            metric = _prometheus_name(name, prefix)
            lines.append(f"# HELP {metric} {self._help_text(name, 'gauge')}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauges[name].value}")
        for name in sorted(histograms):
            metric = _prometheus_name(name, prefix)
            histogram = histograms[name]
            summary = histogram.summary()
            lines.append(
                f"# HELP {metric} {self._help_text(name, 'histogram')}"
            )
            lines.append(f"# TYPE {metric} histogram")
            for bound, count in histogram.bucket_counts():
                lines.append(
                    f'{metric}_bucket{{le="{self._fmt_le(bound)}"}} {count}'
                )
            lines.append(f"{metric}_sum {summary['sum']}")
            lines.append(f"{metric}_count {summary['count']}")
            quantile_metric = f"{metric}_quantiles"
            lines.append(
                f"# HELP {quantile_metric} reservoir quantiles of "
                f"{name!r} (sliding window)"
            )
            lines.append(f"# TYPE {quantile_metric} summary")
            for label, key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
                lines.append(
                    f'{quantile_metric}{{quantile="{label}"}} {summary[key]}'
                )
        events_metric = f"{prefix}_events_dropped_total"
        lines.append(
            f"# HELP {events_metric} events evicted from the bounded "
            "event log (ring saturation)"
        )
        lines.append(f"# TYPE {events_metric} counter")
        lines.append(f"{events_metric} {self.events.dropped}")
        emitted_metric = f"{prefix}_events_emitted_total"
        lines.append(
            f"# HELP {emitted_metric} events ever emitted into the "
            "event log"
        )
        lines.append(f"# TYPE {emitted_metric} counter")
        lines.append(f"{emitted_metric} {self.events.emitted}")
        return "\n".join(lines) + "\n"


# HELP strings for the network front end's instruments, attached by the
# server at startup so a Prometheus scrape of a serving process is
# self-describing (`mmhand_netfront_*`).
NETFRONT_METRIC_HELP = {
    "netfront.connections_opened":
        "TCP connections admitted past the admission gate",
    "netfront.connections_rejected":
        "TCP connections refused at admission (limits, lockout, "
        "health ladder, drain)",
    "netfront.connections_closed": "TCP connections torn down",
    "netfront.disconnects": "connections dropped by the peer mid-stream",
    "netfront.auth_failures": "HELLO frames with a bad token",
    "netfront.handshake_timeouts":
        "connections that missed the handshake deadline",
    "netfront.sessions_opened": "gateway sessions opened over the wire",
    "netfront.sessions_rejected":
        "OPEN requests refused (session limit or degraded pool)",
    "netfront.frames_in": "radar frames received on the wire",
    "netfront.frames_submitted": "frames forwarded into Gateway.submit",
    "netfront.frames_rejected":
        "frames refused (unknown session, drain, backpressure deadline)",
    "netfront.submit_deadlines":
        "frames that waited out the submit deadline on full rings",
    "netfront.poses_out": "pose results queued to clients",
    "netfront.poses_shed":
        "oldest poses shed from bounded outbound queues (slow consumer)",
    "netfront.poses_orphaned":
        "poses whose owning connection had already closed",
    "netfront.protocol_errors":
        "connections quarantined for malformed bytes (dead-lettered)",
    "netfront.idle_reaped": "connections reaped by the idle deadline",
    "netfront.read_deadline_closes":
        "connections closed for stalling mid-message (slowloris)",
    "netfront.write_deadline_closes":
        "connections closed because a socket write stalled",
    "netfront.bytes_in": "bytes read off client sockets",
    "netfront.bytes_out": "bytes written to client sockets",
    "netfront.connection_setup_s":
        "accept-to-welcome handshake latency (seconds)",
    "netfront.submit_wait_s":
        "time one frame waited for ring space before submit (seconds)",
}


def describe_netfront_metrics(registry: "MetricsRegistry") -> None:
    """Attach the ``netfront.*`` HELP strings to ``registry``."""
    for name, help_text in NETFRONT_METRIC_HELP.items():
        registry.describe(name, help_text)


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry shared by the pipeline layers."""
    return _GLOBAL


def counter(name: str) -> Counter:
    """``metrics.counter("dsp.plan_cache.hits")`` on the global registry."""
    return _GLOBAL.counter(name)


def gauge(name: str) -> Gauge:
    return _GLOBAL.gauge(name)


def histogram(name: str) -> Histogram:
    return _GLOBAL.histogram(name)


def emit(kind: str, **fields: Any) -> Dict[str, Any]:
    """Emit a structured event into the global registry's event log."""
    return _GLOBAL.events.emit(kind, **fields)
