"""Unified metrics for every layer of the pipeline.

This module is the promoted home of what used to be
``repro.serving.metrics`` (that path remains a re-export shim): a
deliberately small, dependency-free registry in the spirit of Prometheus
client libraries -- counters (monotonic), gauges (set/sample), latency
histograms with streaming percentile summaries, and a bounded
structured event log. Everything is thread-safe.

Beyond the original serving registry it adds:

* **collectors** -- callbacks run at snapshot/exposition time that pull
  third-party state (the DSP plan cache, queue depths) into first-class
  instruments, so derived metrics are never stale;
* **Prometheus text exposition** (:meth:`MetricsRegistry.to_prometheus`)
  alongside the plain-dict :meth:`MetricsRegistry.snapshot`;
* a **process-global registry** (:func:`get_registry` and the
  module-level :func:`counter`/:func:`gauge`/:func:`histogram` facade)
  shared by the DSP, radar, model and training layers.

Metric names follow ``layer.component.unit`` (``dsp.plan_cache.hits``,
``train.epoch.loss``); the Prometheus renderer sanitises them to
``mmhand_layer_component_unit``. Serving keeps its historical bare
names (``poses``, ``latency_s``) for snapshot compatibility.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from repro.errors import ServingError


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ServingError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move both ways (queue depth, open sessions)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Reservoir of observations with percentile summaries.

    Keeps the most recent ``capacity`` observations (sliding reservoir);
    for serving latencies this biases the percentiles toward current
    behaviour, which is what a live dashboard wants. Lifetime ``count``,
    ``sum`` and ``mean`` cover every observation ever made;
    ``window_mean`` is the mean of the retained window only.
    """

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ServingError("histogram capacity must be >= 1")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._total += float(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Lifetime sum of every observed value."""
        with self._lock:
            return self._total

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained samples."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self._samples:
                return {
                    "count": self._count, "sum": 0.0, "mean": 0.0,
                    "window_mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
                }
            arr = np.asarray(self._samples)
            p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
            return {
                "count": self._count,
                "sum": self._total,
                "mean": self._total / self._count,
                "window_mean": float(arr.mean()),
                "p50": float(p50),
                "p95": float(p95),
                "p99": float(p99),
                "max": float(arr.max()),
            }


class EventLog:
    """Bounded structured event log.

    Events are plain dicts with a monotonically increasing sequence
    number and a relative timestamp; the log keeps the most recent
    ``capacity`` entries.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServingError("event log capacity must be >= 1")
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._start = time.perf_counter()
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            event = {
                "seq": self._seq,
                "t_s": time.perf_counter() - self._start,
                "kind": kind,
                **fields,
            }
            self._seq += 1
            self._events.append(event)
            return event

    def tail(self, count: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            events = list(self._events)
        if count is None:
            return events
        return events[-count:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def _prometheus_name(name: str, prefix: str = "mmhand") -> str:
    """Sanitise a ``layer.component.unit`` name for Prometheus."""
    sanitised = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    sanitised = re.sub(r"_+", "_", sanitised).strip("_")
    return f"{prefix}_{sanitised}"


class MetricsRegistry:
    """Namespace of counters, gauges and histograms plus the event log.

    Instruments are created on first use so call sites never need to
    pre-declare them; :meth:`snapshot` renders everything to plain
    python values for ``server.stats()`` and JSON reports, and
    :meth:`to_prometheus` renders the text exposition format.
    Registered collectors are invoked before either rendering so
    derived instruments (plan-cache counters, queue depth) are fresh.
    """

    def __init__(self, histogram_capacity: int = 4096,
                 event_capacity: int = 1024) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._histogram_capacity = histogram_capacity
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self.events = EventLog(event_capacity)
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(
                    name, self._histogram_capacity
                )
            return self._histograms[name]

    def register_collector(
        self, collect: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a callback that refreshes derived instruments.

        Collectors run (in registration order) at the start of
        :meth:`snapshot` and :meth:`to_prometheus`. Registering the
        same callable twice is a no-op.
        """
        with self._lock:
            if collect not in self._collectors:
                self._collectors.append(collect)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect(self)

    def snapshot(self) -> Dict[str, Any]:
        self._run_collectors()
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.summary() for n, h in histograms.items()},
            "events": len(self.events),
        }

    def to_prometheus(self, prefix: str = "mmhand") -> str:
        """Render the registry in Prometheus text exposition format.

        Counters become ``<prefix>_<name>_total``, gauges
        ``<prefix>_<name>``, and histograms Prometheus *summaries*
        (quantile-labelled series plus ``_sum``/``_count``).
        """
        self._run_collectors()
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        lines: List[str] = []
        for name in sorted(counters):
            metric = _prometheus_name(name, prefix)
            if not metric.endswith("_total"):
                metric += "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counters[name].value}")
        for name in sorted(gauges):
            metric = _prometheus_name(name, prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauges[name].value}")
        for name in sorted(histograms):
            metric = _prometheus_name(name, prefix)
            summary = histograms[name].summary()
            lines.append(f"# TYPE {metric} summary")
            for label, key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
                lines.append(
                    f'{metric}{{quantile="{label}"}} {summary[key]}'
                )
            lines.append(f"{metric}_sum {summary['sum']}")
            lines.append(f"{metric}_count {summary['count']}")
        return "\n".join(lines) + "\n"


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry shared by the pipeline layers."""
    return _GLOBAL


def counter(name: str) -> Counter:
    """``metrics.counter("dsp.plan_cache.hits")`` on the global registry."""
    return _GLOBAL.counter(name)


def gauge(name: str) -> Gauge:
    return _GLOBAL.gauge(name)


def histogram(name: str) -> Histogram:
    return _GLOBAL.histogram(name)


def emit(kind: str, **fields: Any) -> Dict[str, Any]:
    """Emit a structured event into the global registry's event log."""
    return _GLOBAL.events.emit(kind, **fields)
