"""Structured logging: logfmt / JSON lines with trace correlation.

Replaces bare ``print`` calls in the CLI and serving report paths with
machine-parseable records. Each record carries a UTC timestamp, level,
logger name, an ``event`` label and arbitrary key/value fields; when a
trace span or correlation id is active on the emitting thread (see
:mod:`repro.obs.trace`) its ids are attached automatically, so a log
line can be joined against the span timeline it was emitted from.

Loggers are cheap named handles over one process-global configuration
(:func:`configure`): output format (``logfmt`` or ``json``), stream,
minimum level, and an optional token-bucket rate limit that keeps a
misbehaving hot loop from flooding the console -- suppressed records
are counted and reported on the next emitted line.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from datetime import datetime, timezone
from typing import Any, Dict, Optional, TextIO

from repro.errors import ObservabilityError
from repro.obs import trace

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _Config:
    """Process-global logging configuration (one per interpreter)."""

    def __init__(self) -> None:
        self.fmt = "logfmt"
        self.stream: Optional[TextIO] = None  # None -> sys.stderr at emit
        self.level = LEVELS["info"]
        self.rate_limit_hz: Optional[float] = None
        self.burst = 10


_CONFIG = _Config()
_LOGGERS: Dict[str, "StructuredLogger"] = {}
_REGISTRY_LOCK = threading.Lock()


def configure(
    fmt: Optional[str] = None,
    stream: Optional[TextIO] = None,
    level: Optional[str] = None,
    rate_limit_hz: Optional[float] = None,
    burst: Optional[int] = None,
) -> None:
    """Adjust the global logging configuration.

    Only the arguments passed are changed. ``fmt`` is ``"logfmt"`` or
    ``"json"``; ``rate_limit_hz`` of ``0``/``None`` disables limiting.
    """
    if fmt is not None:
        if fmt not in ("logfmt", "json"):
            raise ObservabilityError(
                f"log format must be 'logfmt' or 'json', got {fmt!r}"
            )
        _CONFIG.fmt = fmt
    if stream is not None:
        _CONFIG.stream = stream
    if level is not None:
        if level not in LEVELS:
            raise ObservabilityError(
                f"unknown log level {level!r}; choose from "
                f"{sorted(LEVELS)}"
            )
        _CONFIG.level = LEVELS[level]
    if rate_limit_hz is not None:
        _CONFIG.rate_limit_hz = rate_limit_hz or None
        with _REGISTRY_LOCK:
            for logger in _LOGGERS.values():
                logger._limiter.reset(_CONFIG.rate_limit_hz, _CONFIG.burst)
    if burst is not None:
        _CONFIG.burst = burst


class _TokenBucket:
    """Thread-safe token bucket; ``None`` rate means unlimited."""

    def __init__(self, rate_hz: Optional[float], burst: int) -> None:
        self._lock = threading.Lock()
        self.reset(rate_hz, burst)

    def reset(self, rate_hz: Optional[float], burst: int) -> None:
        with self._lock:
            self.rate_hz = rate_hz
            self.burst = max(1, burst)
            self._tokens = float(self.burst)
            self._last = time.monotonic()
            self.suppressed = 0

    def allow(self) -> bool:
        with self._lock:
            if self.rate_hz is None:
                return True
            now = time.monotonic()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._last) * self.rate_hz,
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self.suppressed += 1
            return False

    def drain_suppressed(self) -> int:
        with self._lock:
            count, self.suppressed = self.suppressed, 0
            return count


def _logfmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bool):
        return "true" if value else "false"
    text = str(value)
    if text == "" or any(c in text for c in ' "=\n'):
        return json.dumps(text)
    return text


class StructuredLogger:
    """Named emitter of structured records; get one via
    :func:`get_logger`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._limiter = _TokenBucket(_CONFIG.rate_limit_hz, _CONFIG.burst)
        self._lock = threading.Lock()

    def debug(self, event: str, **fields: Any) -> Optional[str]:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> Optional[str]:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> Optional[str]:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> Optional[str]:
        return self.log("error", event, **fields)

    def log(self, level: str, event: str, **fields: Any) -> Optional[str]:
        """Emit one record; returns the rendered line or ``None`` when
        filtered by level or rate limit."""
        if LEVELS.get(level, 0) < _CONFIG.level:
            return None
        if not self._limiter.allow():
            return None
        record: Dict[str, Any] = {
            "ts": datetime.now(timezone.utc).isoformat(
                timespec="milliseconds"
            ),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        correlation_id = trace.get_correlation()
        span = trace.current()
        if span is not None:
            record["span"] = span.name
            record["span_id"] = span.span_id
            if correlation_id is None:
                correlation_id = span.correlation_id
        if correlation_id is not None:
            record["corr_id"] = correlation_id
        suppressed = self._limiter.drain_suppressed()
        if suppressed:
            record["suppressed"] = suppressed
        record.update(fields)
        if _CONFIG.fmt == "json":
            line = json.dumps(record, default=str)
        else:
            line = " ".join(
                f"{key}={_logfmt_value(value)}"
                for key, value in record.items()
            )
        stream = _CONFIG.stream if _CONFIG.stream is not None else sys.stderr
        with self._lock:
            try:
                stream.write(line + "\n")
            except ValueError:
                # The configured stream was closed out from under us
                # (e.g. a redirected stdout torn down after `configure`).
                # Logging must never take the process down: drop back to
                # the live stderr and unpin the dead stream.
                _CONFIG.stream = None
                sys.stderr.write(line + "\n")
        return line


def get_logger(name: str) -> StructuredLogger:
    """Get (or create) the logger registered under ``name``."""
    with _REGISTRY_LOCK:
        if name not in _LOGGERS:
            _LOGGERS[name] = StructuredLogger(name)
        return _LOGGERS[name]
