"""Per-figure experiment runners (paper Sec. VI).

Each function reproduces one table or figure of the evaluation: it takes
trained cross-validation records (from
:func:`repro.core.training.kfold_by_user`) and/or a campaign generator
for condition-specific test data, and returns a structured result dict
the benchmark harness prints with :mod:`repro.eval.report`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.pipeline import MmHand
from repro.core.regressor import HandJointRegressor
from repro.data.collection import CampaignGenerator, CaptureOptions
from repro.errors import EvaluationError
from repro.eval.metrics import (
    error_cdf,
    group_metrics,
    mpjpe,
    pck,
    pck_curve,
    auc,
)
from repro.hand.joints import FINGER_JOINTS, PALM_JOINTS
from repro.hand.subjects import Subject
from repro.radar.clutter import BodyPosition


def _pooled(records: Sequence[dict]):
    """Stack predictions and labels across CV folds."""
    if not records:
        raise EvaluationError("no cross-validation records supplied")
    preds = np.concatenate([r["predictions"] for r in records])
    labels = np.concatenate([r["test"].labels for r in records])
    users = np.concatenate([r["test"].user_ids for r in records])
    metas = [m for r in records for m in r["test"].meta]
    return preds, labels, users, metas


# ----------------------------------------------------------------------
# Fig. 12 / 13: per-participant MPJPE and 3D-PCK
# ----------------------------------------------------------------------
def overall_performance(records: Sequence[dict]) -> Dict:
    """Per-user MPJPE/PCK plus averages and standard deviations."""
    preds, labels, users, _ = _pooled(records)
    user_ids = sorted(set(int(u) for u in users))
    per_user = {}
    for uid in user_ids:
        mask = users == uid
        per_user[uid] = {
            "mpjpe_mm": mpjpe(preds[mask], labels[mask]),
            "pck_percent": pck(preds[mask], labels[mask]),
        }
    mpjpes = np.array([v["mpjpe_mm"] for v in per_user.values()])
    pcks = np.array([v["pck_percent"] for v in per_user.values()])
    return {
        "per_user": per_user,
        "mean_mpjpe_mm": float(mpjpes.mean()),
        "std_mpjpe_mm": float(mpjpes.std()),
        "mean_pck_percent": float(pcks.mean()),
        "std_pck_percent": float(pcks.std()),
        "overall_mpjpe_mm": mpjpe(preds, labels),
        "overall_pck_percent": pck(preds, labels),
    }


# ----------------------------------------------------------------------
# Fig. 14: 3D-PCK vs threshold with palm/fingers/overall AUC
# ----------------------------------------------------------------------
def pck_threshold_curves(records: Sequence[dict]) -> Dict:
    preds, labels, _, _ = _pooled(records)
    thresholds = np.linspace(0.0, 60.0, 61)
    result = {"thresholds_mm": thresholds, "curves": {}, "auc": {}}
    for name, joints in (
        ("palm", list(PALM_JOINTS)),
        ("fingers", list(FINGER_JOINTS)),
        ("overall", None),
    ):
        t, curve = pck_curve(preds, labels, thresholds, joints=joints)
        result["curves"][name] = curve
        result["auc"][name] = auc(t, curve)
    return result


# ----------------------------------------------------------------------
# Fig. 15: CDF of MPJPE
# ----------------------------------------------------------------------
def mpjpe_cdf(records: Sequence[dict]) -> Dict:
    preds, labels, _, _ = _pooled(records)
    errors, fractions = error_cdf(preds, labels)
    within_30 = float(fractions[errors <= 30.0][-1] * 100.0) if np.any(
        errors <= 30.0
    ) else 0.0
    return {
        "errors_mm": errors,
        "fractions": fractions,
        "within_30mm_percent": within_30,
    }


# ----------------------------------------------------------------------
# Condition sweeps: shared machinery
# ----------------------------------------------------------------------
def evaluate_condition(
    regressor: HandJointRegressor,
    generator: CampaignGenerator,
    subjects: Sequence[Subject],
    options: CaptureOptions,
    segments_per_user: int = 24,
    seed: int = 1234,
) -> Dict:
    """Generate condition-specific test data and evaluate a trained model.

    Used by the distance/angle/body/glove/object/environment/obstacle
    experiments: the paper trains on the baseline condition and tests on
    data collected under the new condition.
    """
    dataset = generator.generate(
        subjects=subjects,
        options=options,
        segments_per_user=segments_per_user,
        seed=seed,
        rotate_environments=False,
    )
    preds = regressor.predict(dataset.segments)
    groups = group_metrics(preds, dataset.labels)
    return {
        "dataset": dataset,
        "predictions": preds,
        "mpjpe_mm": groups["overall"].mpjpe_mm,
        "pck_percent": groups["overall"].pck_percent,
        "palm_mpjpe_mm": groups["palm"].mpjpe_mm,
        "palm_pck_percent": groups["palm"].pck_percent,
        "fingers_mpjpe_mm": groups["fingers"].mpjpe_mm,
        "fingers_pck_percent": groups["fingers"].pck_percent,
    }


# ----------------------------------------------------------------------
# Fig. 16 / 17: distance sweep
# ----------------------------------------------------------------------
def distance_sweep(
    regressor: HandJointRegressor,
    generator: CampaignGenerator,
    subjects: Sequence[Subject],
    distances_m: Optional[Sequence[float]] = None,
    segments_per_user: int = 12,
    seed: int = 100,
) -> Dict:
    """MPJPE/PCK vs hand-radar distance (paper sweeps 20-80 cm)."""
    if distances_m is None:
        distances_m = np.arange(0.20, 0.81, 0.05)
    rows = []
    for i, distance in enumerate(distances_m):
        options = CaptureOptions(
            environment="lab", distance_m=float(distance)
        )
        result = evaluate_condition(
            regressor, generator, subjects, options,
            segments_per_user=segments_per_user, seed=seed + i,
        )
        rows.append(
            {
                "distance_m": float(distance),
                "mpjpe_mm": result["mpjpe_mm"],
                "pck_percent": result["pck_percent"],
                "palm_mpjpe_mm": result["palm_mpjpe_mm"],
                "fingers_mpjpe_mm": result["fingers_mpjpe_mm"],
                "palm_pck_percent": result["palm_pck_percent"],
                "fingers_pck_percent": result["fingers_pck_percent"],
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Fig. 19: angle sweep
# ----------------------------------------------------------------------
def angle_sweep(
    regressor: HandJointRegressor,
    generator: CampaignGenerator,
    subjects: Sequence[Subject],
    angle_bins_deg: Optional[Sequence[float]] = None,
    distance_m: float = 0.40,
    segments_per_user: int = 12,
    seed: int = 200,
) -> Dict:
    """MPJPE/PCK vs hand angle (paper: -45 to 45 degrees, 15-degree bins,
    hand at 40 cm)."""
    if angle_bins_deg is None:
        angle_bins_deg = (-37.5, -22.5, -7.5, 7.5, 22.5, 37.5)
    rows = []
    for i, angle in enumerate(angle_bins_deg):
        options = CaptureOptions(
            environment="lab", distance_m=distance_m,
            angle_deg=float(angle),
        )
        result = evaluate_condition(
            regressor, generator, subjects, options,
            segments_per_user=segments_per_user, seed=seed + i,
        )
        rows.append(
            {
                "angle_deg": float(angle),
                "mpjpe_mm": result["mpjpe_mm"],
                "pck_percent": result["pck_percent"],
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Fig. 20 / 21: impact of human body position
# ----------------------------------------------------------------------
def body_position_experiment(
    regressor: HandJointRegressor,
    generator: CampaignGenerator,
    subjects: Sequence[Subject],
    segments_per_user: int = 16,
    seed: int = 300,
) -> Dict:
    """Type 1 (body behind hand) vs type 2 (body beside radar), per user."""
    results = {}
    for name, position in (
        ("type1_front", BodyPosition.FRONT),
        ("type2_side", BodyPosition.SIDE),
    ):
        options = CaptureOptions(
            environment="lab", body_position=position
        )
        per_user = {}
        for subject in subjects:
            result = evaluate_condition(
                regressor, generator, [subject], options,
                segments_per_user=segments_per_user,
                seed=seed + subject.user_id,
            )
            per_user[subject.user_id] = {
                "mpjpe_mm": result["mpjpe_mm"],
                "pck_percent": result["pck_percent"],
            }
        mpjpes = [v["mpjpe_mm"] for v in per_user.values()]
        pcks = [v["pck_percent"] for v in per_user.values()]
        results[name] = {
            "per_user": per_user,
            "mpjpe_mm": float(np.mean(mpjpes)),
            "pck_percent": float(np.mean(pcks)),
        }
    return results


# ----------------------------------------------------------------------
# Sec. VI-G: gloves
# ----------------------------------------------------------------------
def glove_experiment(
    regressor: HandJointRegressor,
    generator: CampaignGenerator,
    subjects: Sequence[Subject],
    segments_per_user: int = 16,
    seed: int = 400,
) -> Dict:
    """Zero-shot test on silk and cotton gloves (test-only data)."""
    results = {}
    all_preds, all_labels = [], []
    for glove in ("silk", "cotton"):
        options = CaptureOptions(environment="lab", glove=glove)
        result = evaluate_condition(
            regressor, generator, subjects, options,
            segments_per_user=segments_per_user, seed=seed,
        )
        results[glove] = {
            "mpjpe_mm": result["mpjpe_mm"],
            "pck_percent": result["pck_percent"],
        }
        all_preds.append(result["predictions"])
        all_labels.append(result["dataset"].labels)
    preds = np.concatenate(all_preds)
    labels = np.concatenate(all_labels)
    results["overall"] = {
        "mpjpe_mm": mpjpe(preds, labels),
        "pck_percent": pck(preds, labels),
    }
    return results


# ----------------------------------------------------------------------
# Sec. VI-H: handheld objects
# ----------------------------------------------------------------------
def handheld_experiment(
    regressor: HandJointRegressor,
    generator: CampaignGenerator,
    subjects: Sequence[Subject],
    segments_per_user: int = 12,
    seed: int = 500,
) -> Dict:
    """Per-object MPJPE/PCK for the paper's four handheld objects."""
    results = {}
    for obj in ("table_tennis_ball", "headphone_case", "pen", "power_bank"):
        options = CaptureOptions(environment="lab", handheld=obj)
        result = evaluate_condition(
            regressor, generator, subjects, options,
            segments_per_user=segments_per_user, seed=seed,
        )
        results[obj] = {
            "mpjpe_mm": result["mpjpe_mm"],
            "pck_percent": result["pck_percent"],
            "fingers_mpjpe_mm": result["fingers_mpjpe_mm"],
        }
    return results


# ----------------------------------------------------------------------
# Fig. 24: environments
# ----------------------------------------------------------------------
def environment_experiment(records: Sequence[dict]) -> Dict:
    """Metrics split by capture environment, from the CV test data."""
    preds, labels, _, metas = _pooled(records)
    environments = sorted({m.environment for m in metas})
    results = {}
    for env in environments:
        mask = np.array([m.environment == env for m in metas])
        if not np.any(mask):
            continue
        results[env] = {
            "mpjpe_mm": mpjpe(preds[mask], labels[mask]),
            "pck_percent": pck(preds[mask], labels[mask]),
        }
    results["overall"] = {
        "mpjpe_mm": mpjpe(preds, labels),
        "pck_percent": pck(preds, labels),
    }
    return results


# ----------------------------------------------------------------------
# Fig. 25: obstacles
# ----------------------------------------------------------------------
def obstacle_experiment(
    regressor: HandJointRegressor,
    generator: CampaignGenerator,
    subjects: Sequence[Subject],
    segments_per_user: int = 12,
    seed: int = 600,
) -> Dict:
    """A4 paper / cloth / wooden board in the line of sight."""
    results = {}
    for occluder in ("a4_paper", "cloth", "wood_board"):
        options = CaptureOptions(environment="lab", occluder=occluder)
        result = evaluate_condition(
            regressor, generator, subjects, options,
            segments_per_user=segments_per_user, seed=seed,
        )
        results[occluder] = {
            "mpjpe_mm": result["mpjpe_mm"],
            "pck_percent": result["pck_percent"],
        }
    return results


# ----------------------------------------------------------------------
# Fig. 26: time consumption
# ----------------------------------------------------------------------
def timing_experiment(
    pipeline: MmHand, segments: np.ndarray, repeats: int = 1
) -> Dict:
    """Per-segment skeleton/mesh/overall time CDFs."""
    skeleton_times: List[float] = []
    mesh_times: List[float] = []
    for _ in range(repeats):
        skeletons, skel_t = pipeline.estimate_skeletons(segments)
        _, mesh_t = pipeline.reconstruct_meshes(skeletons)
        skeleton_times.extend(skel_t)
        mesh_times.extend(mesh_t)
    skeleton_ms = np.array(skeleton_times) * 1000.0
    mesh_ms = np.array(mesh_times) * 1000.0
    overall_ms = skeleton_ms + mesh_ms
    return {
        "skeleton_ms": skeleton_ms,
        "mesh_ms": mesh_ms,
        "overall_ms": overall_ms,
        "mean_skeleton_ms": float(skeleton_ms.mean()),
        "mean_mesh_ms": float(mesh_ms.mean()),
        "mean_overall_ms": float(overall_ms.mean()),
        "p90_overall_ms": float(np.percentile(overall_ms, 90)),
    }
