"""Evaluation: metrics (MPJPE, 3D-PCK, AUC, CDF), per-figure experiment
runners, and text rendering of the paper's tables and figures.
"""

from repro.eval.metrics import (
    per_joint_errors,
    mpjpe,
    pck,
    pck_curve,
    auc,
    error_cdf,
    JointGroupMetrics,
    group_metrics,
)
from repro.eval.report import render_table, render_series, format_mm
from repro.eval.extended import (
    pa_mpjpe,
    bone_length_error,
    per_joint_error_table,
    localisation_vs_pose_error,
    procrustes_align,
)
from repro.eval.significance import (
    ComparisonResult,
    paired_bootstrap,
    paired_permutation_test,
)
from repro.eval import experiments

__all__ = [
    "pa_mpjpe",
    "bone_length_error",
    "per_joint_error_table",
    "localisation_vs_pose_error",
    "procrustes_align",
    "ComparisonResult",
    "paired_bootstrap",
    "paired_permutation_test",
    "per_joint_errors",
    "mpjpe",
    "pck",
    "pck_curve",
    "auc",
    "error_cdf",
    "JointGroupMetrics",
    "group_metrics",
    "render_table",
    "render_series",
    "format_mm",
    "experiments",
]
