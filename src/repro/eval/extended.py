"""Extended evaluation metrics beyond the paper's three.

These are standard in the hand-pose literature and useful for deeper
error analysis of the reproduction:

* PA-MPJPE -- MPJPE after Procrustes alignment (rotation + translation,
  optionally scale), isolating pose-shape error from global placement
  error (the radar's absolute-localisation error).
* Bone-length error -- how well predictions preserve the rigid phalange
  lengths, which the kinematic loss is meant to enforce.
* Per-joint error table -- errors broken down by joint name.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.hand.joints import JOINT_NAMES, NUM_JOINTS, PHALANGES
from repro.eval.metrics import per_joint_errors


def procrustes_align(
    source: np.ndarray, target: np.ndarray, allow_scale: bool = False
) -> np.ndarray:
    """Rigidly align ``source`` (21, 3) onto ``target`` (21, 3).

    Classical orthogonal Procrustes: centre both point sets, find the
    rotation (via SVD) minimising the squared distance, optionally a
    uniform scale, and return the aligned source points.
    """
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != (NUM_JOINTS, 3) or target.shape != (NUM_JOINTS, 3):
        raise EvaluationError("procrustes_align expects (21, 3) arrays")
    mu_s = source.mean(axis=0)
    mu_t = target.mean(axis=0)
    s_c = source - mu_s
    t_c = target - mu_t
    h = s_c.T @ t_c
    u, sigma, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, d])
    rotation = vt.T @ correction @ u.T
    if allow_scale:
        denom = (s_c**2).sum()
        if denom < 1e-12:
            raise EvaluationError("degenerate source for scaled alignment")
        scale = (sigma * np.diag(correction)).sum() / denom
    else:
        scale = 1.0
    return scale * s_c @ rotation.T + mu_t


def pa_mpjpe(
    predictions: np.ndarray,
    ground_truth: np.ndarray,
    allow_scale: bool = False,
) -> float:
    """Procrustes-aligned MPJPE in millimetres."""
    pred = np.asarray(predictions, dtype=float)
    gt = np.asarray(ground_truth, dtype=float)
    if pred.ndim == 2:
        pred = pred[None]
        gt = gt[None]
    if pred.shape != gt.shape or pred.shape[1:] != (NUM_JOINTS, 3):
        raise EvaluationError(
            f"expected matching (N, 21, 3) arrays, got {pred.shape} vs "
            f"{gt.shape}"
        )
    errors = []
    for p, g in zip(pred, gt):
        aligned = procrustes_align(p, g, allow_scale=allow_scale)
        errors.append(np.linalg.norm(aligned - g, axis=1).mean())
    return float(np.mean(errors) * 1000.0)


def bone_lengths(joints: np.ndarray) -> np.ndarray:
    """Lengths of the 20 phalanges, shape (N, 20), in metres."""
    joints = np.asarray(joints, dtype=float)
    if joints.ndim == 2:
        joints = joints[None]
    if joints.shape[1:] != (NUM_JOINTS, 3):
        raise EvaluationError(
            f"expected (N, 21, 3) joints, got {joints.shape}"
        )
    return np.stack(
        [
            np.linalg.norm(joints[:, c] - joints[:, p], axis=1)
            for p, c in PHALANGES
        ],
        axis=1,
    )


def bone_length_error(
    predictions: np.ndarray, ground_truth: np.ndarray
) -> float:
    """Mean absolute phalange-length error in millimetres.

    Low values mean predictions respect the hand's segmented rigidity,
    the property the kinematic loss (paper Eq. 9) encourages.
    """
    pred_lengths = bone_lengths(predictions)
    gt_lengths = bone_lengths(ground_truth)
    return float(np.abs(pred_lengths - gt_lengths).mean() * 1000.0)


def per_joint_error_table(
    predictions: np.ndarray, ground_truth: np.ndarray
) -> Dict[str, float]:
    """Mean error per named joint (mm), ordered as JOINT_NAMES."""
    errors = per_joint_errors(predictions, ground_truth).mean(axis=0)
    return {name: float(err) for name, err in zip(JOINT_NAMES, errors)}


def localisation_vs_pose_error(
    predictions: np.ndarray, ground_truth: np.ndarray
) -> Tuple[float, float]:
    """Split MPJPE into global localisation and residual pose error (mm).

    The first value is the mean wrist/centroid displacement (how well the
    radar locates the hand in space); the second is PA-MPJPE (how well
    the articulated pose is recovered once placement is factored out).
    """
    pred = np.asarray(predictions, dtype=float)
    gt = np.asarray(ground_truth, dtype=float)
    if pred.ndim == 2:
        pred = pred[None]
        gt = gt[None]
    centroid_error = float(
        np.linalg.norm(
            pred.mean(axis=1) - gt.mean(axis=1), axis=1
        ).mean() * 1000.0
    )
    return centroid_error, pa_mpjpe(pred, gt)
