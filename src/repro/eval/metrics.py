"""Hand-pose evaluation metrics (paper Sec. VI-A).

* MPJPE: mean per-joint position error, the Euclidean distance between
  predicted and ground-truth joints (Eq. 12), reported in millimetres.
* 3D-PCK: percentage of correct keypoints under a distance threshold
  (Eq. 13); the paper reports PCK at a 40 mm threshold.
* AUC: area under the 3D-PCK curve over thresholds 0-60 mm, normalised
  by the threshold span.
* CDF: cumulative distribution of per-joint errors (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.hand.joints import FINGER_JOINTS, NUM_JOINTS, PALM_JOINTS

#: The paper's default PCK threshold (mm) and AUC integration range.
DEFAULT_PCK_THRESHOLD_MM = 40.0
DEFAULT_AUC_RANGE_MM = (0.0, 60.0)


def per_joint_errors(
    predictions: np.ndarray, ground_truth: np.ndarray
) -> np.ndarray:
    """Euclidean error of every joint in millimetres, shape (N, 21)."""
    pred = np.asarray(predictions, dtype=float)
    gt = np.asarray(ground_truth, dtype=float)
    if pred.ndim == 2:
        pred = pred[None]
    if gt.ndim == 2:
        gt = gt[None]
    if pred.shape != gt.shape or pred.shape[1:] != (NUM_JOINTS, 3):
        raise EvaluationError(
            f"expected matching (N, 21, 3) arrays, got {pred.shape} vs "
            f"{gt.shape}"
        )
    return np.linalg.norm(pred - gt, axis=2) * 1000.0


def mpjpe(
    predictions: np.ndarray,
    ground_truth: np.ndarray,
    joints: Optional[Sequence[int]] = None,
) -> float:
    """Mean per-joint position error in millimetres (Eq. 12).

    ``joints`` restricts the average to a joint subset (palm/fingers).
    """
    errors = per_joint_errors(predictions, ground_truth)
    if joints is not None:
        errors = errors[:, list(joints)]
    return float(errors.mean())


def pck(
    predictions: np.ndarray,
    ground_truth: np.ndarray,
    threshold_mm: float = DEFAULT_PCK_THRESHOLD_MM,
    joints: Optional[Sequence[int]] = None,
) -> float:
    """Percentage of correct keypoints under ``threshold_mm`` (Eq. 13)."""
    if threshold_mm <= 0:
        raise EvaluationError("threshold_mm must be positive")
    errors = per_joint_errors(predictions, ground_truth)
    if joints is not None:
        errors = errors[:, list(joints)]
    return float((errors < threshold_mm).mean() * 100.0)


def pck_curve(
    predictions: np.ndarray,
    ground_truth: np.ndarray,
    thresholds_mm: Optional[np.ndarray] = None,
    joints: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """3D-PCK over a threshold sweep; returns (thresholds, pck_percent)."""
    if thresholds_mm is None:
        thresholds_mm = np.linspace(*DEFAULT_AUC_RANGE_MM, 61)
    thresholds_mm = np.asarray(thresholds_mm, dtype=float)
    if thresholds_mm.ndim != 1 or len(thresholds_mm) < 2:
        raise EvaluationError("need a 1-D threshold sweep of length >= 2")
    errors = per_joint_errors(predictions, ground_truth)
    if joints is not None:
        errors = errors[:, list(joints)]
    flat = errors.reshape(-1)
    curve = np.array(
        [(flat < t).mean() * 100.0 for t in thresholds_mm]
    )
    return thresholds_mm, curve


def auc(thresholds_mm: np.ndarray, curve_percent: np.ndarray) -> float:
    """Normalised area under a 3D-PCK curve (0-1)."""
    thresholds_mm = np.asarray(thresholds_mm, dtype=float)
    curve = np.asarray(curve_percent, dtype=float) / 100.0
    if thresholds_mm.shape != curve.shape:
        raise EvaluationError("thresholds and curve must align")
    span = thresholds_mm[-1] - thresholds_mm[0]
    if span <= 0:
        raise EvaluationError("thresholds must increase")
    return float(np.trapezoid(curve, thresholds_mm) / span)


def error_cdf(
    predictions: np.ndarray, ground_truth: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of all per-joint errors; returns (error_mm, fraction)."""
    errors = np.sort(per_joint_errors(predictions, ground_truth).reshape(-1))
    fractions = np.arange(1, len(errors) + 1) / len(errors)
    return errors, fractions


@dataclass(frozen=True)
class JointGroupMetrics:
    """MPJPE/PCK/AUC for one joint group (palm, fingers, or overall)."""

    name: str
    mpjpe_mm: float
    pck_percent: float
    auc: float


def group_metrics(
    predictions: np.ndarray,
    ground_truth: np.ndarray,
    threshold_mm: float = DEFAULT_PCK_THRESHOLD_MM,
) -> Dict[str, JointGroupMetrics]:
    """Palm / fingers / overall metrics, as the paper splits them.

    Palm joints are the wrist plus the five finger roots; finger joints
    the remaining PIP/DIP/TIP chain joints.
    """
    groups = {
        "palm": list(PALM_JOINTS),
        "fingers": list(FINGER_JOINTS),
        "overall": None,
    }
    results = {}
    for name, joints in groups.items():
        thresholds, curve = pck_curve(
            predictions, ground_truth, joints=joints
        )
        results[name] = JointGroupMetrics(
            name=name,
            mpjpe_mm=mpjpe(predictions, ground_truth, joints=joints),
            pck_percent=pck(
                predictions, ground_truth, threshold_mm, joints=joints
            ),
            auc=auc(thresholds, curve),
        )
    return results
