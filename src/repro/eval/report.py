"""Plain-text rendering of result tables and figure series.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the output uniform and readable in
terminal logs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import EvaluationError


def format_mm(value: float) -> str:
    """Millimetre values with one decimal, as the paper prints them."""
    return f"{value:.1f}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise EvaluationError(
                f"row width {len(row)} does not match header width "
                f"{len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    series: dict,
    x_label: str,
    y_label: str,
    title: Optional[str] = None,
    fmt: str = "{:.1f}",
) -> str:
    """Figure data as a table: one x column, one column per series."""
    x = list(x)
    for name, values in series.items():
        if len(values) != len(x):
            raise EvaluationError(
                f"series {name!r} length {len(values)} does not match x "
                f"length {len(x)}"
            )
    headers = [x_label] + [f"{name} ({y_label})" for name in series]
    rows = []
    for i, xv in enumerate(x):
        row = [fmt.format(xv)] + [
            fmt.format(values[i]) for values in series.values()
        ]
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_cdf_summary(
    errors_mm: np.ndarray,
    fractions: np.ndarray,
    probe_mm: Sequence[float] = (10, 20, 30, 40, 50),
    title: Optional[str] = None,
) -> str:
    """Summarise a CDF at a few probe error values (paper Fig. 15)."""
    errors_mm = np.asarray(errors_mm)
    fractions = np.asarray(fractions)
    rows = []
    for p in probe_mm:
        frac = float(fractions[errors_mm <= p][-1]) if np.any(
            errors_mm <= p
        ) else 0.0
        rows.append([f"{p:.0f}", f"{frac * 100:.1f}"])
    return render_table(["error (mm)", "CDF (%)"], rows, title=title)
