"""Statistical significance utilities for metric comparisons.

When two systems' MPJPEs differ by a millimetre on a finite test set,
is that real? These helpers answer with paired bootstrap resampling and
a paired permutation test over per-sample errors -- standard practice
for pose-estimation comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.eval.metrics import per_joint_errors


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing system A against system B (lower = better)."""

    mean_a_mm: float
    mean_b_mm: float
    difference_mm: float
    ci_low_mm: float
    ci_high_mm: float
    p_value: float

    @property
    def significant(self) -> bool:
        """True when the 95% CI of (A - B) excludes zero."""
        return self.ci_low_mm > 0 or self.ci_high_mm < 0


def _per_sample_errors(
    predictions: np.ndarray, ground_truth: np.ndarray
) -> np.ndarray:
    """Per-sample MPJPE in mm, shape (N,)."""
    return per_joint_errors(predictions, ground_truth).mean(axis=1)


def paired_bootstrap(
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
    ground_truth: np.ndarray,
    num_resamples: int = 2000,
    seed: int = 0,
    confidence: float = 0.95,
) -> ComparisonResult:
    """Paired bootstrap comparison of two systems on the same test set.

    Resamples test indices with replacement and recomputes the MPJPE
    difference A - B; reports the mean difference, its confidence
    interval, and a two-sided bootstrap p-value for "no difference".
    """
    if num_resamples < 100:
        raise EvaluationError("use at least 100 bootstrap resamples")
    if not 0.5 < confidence < 1.0:
        raise EvaluationError("confidence must lie in (0.5, 1)")
    errors_a = _per_sample_errors(predictions_a, ground_truth)
    errors_b = _per_sample_errors(predictions_b, ground_truth)
    if errors_a.shape != errors_b.shape:
        raise EvaluationError("prediction sets must share the test set")
    n = len(errors_a)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, n, size=(num_resamples, n))
    diffs = errors_a[indices].mean(axis=1) - errors_b[indices].mean(axis=1)
    alpha = 1.0 - confidence
    ci_low, ci_high = np.quantile(diffs, [alpha / 2, 1 - alpha / 2])
    # Two-sided bootstrap p-value: how often the resampled difference
    # crosses zero relative to its observed sign.
    observed = errors_a.mean() - errors_b.mean()
    if observed >= 0:
        tail = float((diffs <= 0).mean())
    else:
        tail = float((diffs >= 0).mean())
    p_value = min(1.0, 2.0 * tail)
    return ComparisonResult(
        mean_a_mm=float(errors_a.mean()),
        mean_b_mm=float(errors_b.mean()),
        difference_mm=float(observed),
        ci_low_mm=float(ci_low),
        ci_high_mm=float(ci_high),
        p_value=p_value,
    )


def paired_permutation_test(
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
    ground_truth: np.ndarray,
    num_permutations: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Paired sign-flip permutation test on per-sample error differences.

    Returns ``(observed_difference_mm, p_value)`` for the null hypothesis
    that the two systems' errors are exchangeable.
    """
    if num_permutations < 100:
        raise EvaluationError("use at least 100 permutations")
    errors_a = _per_sample_errors(predictions_a, ground_truth)
    errors_b = _per_sample_errors(predictions_b, ground_truth)
    if errors_a.shape != errors_b.shape:
        raise EvaluationError("prediction sets must share the test set")
    deltas = errors_a - errors_b
    observed = float(deltas.mean())
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(num_permutations, len(deltas)))
    permuted = (signs * deltas).mean(axis=1)
    p_value = float(
        (np.abs(permuted) >= abs(observed)).mean()
    )
    return observed, max(p_value, 1.0 / num_permutations)
