"""Model weight and compiled-plan (de)serialization.

Two artifact families live here:

* :func:`save_state` / :func:`load_state` -- a module's parameters and
  buffers as a flat ``.npz`` archive (training checkpoints, weights);
* :func:`save_plan` / :func:`load_plan` / :func:`verify_plan` -- a
  *compiled forward plan* as a versioned two-file artifact:
  ``<prefix>.json`` holds the layout (op list with declarative attrs,
  register count, activation ranges, static memory plans, embedded
  configs, content hashes) and ``<prefix>.npz`` holds the folded weight
  arrays namespaced ``op<id>.<name>``. Loading rebuilds a detached
  :class:`~repro.nn.inference.CompiledModel` -- no module tree, no
  retracing, no refolding -- which is exactly what gateway workers want
  at spawn. :func:`verify_plan` is the paired standalone parity check:
  it reconstructs the live eager model from the embedded config and
  compares outputs on a seeded batch.

Layout versioning: ``PLAN_LAYOUT_VERSION`` bumps on any breaking change
to the JSON schema, the npz namespacing, or op ``export_state``
contents; loaders reject artifacts from other layout versions rather
than guessing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import SerializationError
from repro.nn.inference import (
    OP_TYPES,
    CompiledModel,
    ForwardPlan,
    MemoryPlan,
)
from repro.nn.layers import Module
from repro.obs import metrics as obs_metrics

PLAN_FORMAT = "mmhand-forward-plan"
PLAN_LAYOUT_VERSION = 1


def save_state(module: Module, path: Union[str, os.PathLike]) -> None:
    """Write ``module``'s parameters and buffers to ``path`` (npz)."""
    state = module.state_dict()
    if not state:
        raise SerializationError("module has no parameters to save")
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(module: Module, path: Union[str, os.PathLike]) -> None:
    """Restore parameters and buffers saved by :func:`save_state`."""
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    if not os.path.exists(path):
        raise SerializationError(f"no saved state at {path}")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)


# ----------------------------------------------------------------------
# Compiled-plan artifacts
# ----------------------------------------------------------------------
def _plan_paths(prefix: Union[str, os.PathLike]) -> Tuple[str, str]:
    prefix = os.fspath(prefix)
    for suffix in (".json", ".npz"):
        if prefix.endswith(suffix):
            prefix = prefix[: -len(suffix)]
    return prefix + ".json", prefix + ".npz"


def _config_hash(config: Dict[str, Any]) -> str:
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _weights_digest(arrays: Dict[str, np.ndarray]) -> str:
    digest = hashlib.sha256()
    for name in sorted(arrays):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return digest.hexdigest()


def regressor_config_meta(regressor, seed: Optional[int] = None,
                          weights_path: Optional[str] = None
                          ) -> Dict[str, Any]:
    """The embedded-config dict for a :class:`HandJointRegressor` plan.

    ``seed`` must reproduce the regressor's weights together with
    ``weights_path`` (if the model was trained, pass the saved state;
    :func:`verify_plan` rebuilds the eager reference from exactly
    these fields).
    """
    return {
        "model_type": type(regressor).__name__,
        "dsp": dataclasses.asdict(regressor.dsp),
        "model": dataclasses.asdict(regressor.model_config),
        "seed": int(seed) if seed is not None else 0,
        "weights_path": (
            os.path.abspath(weights_path) if weights_path else None
        ),
    }


def save_plan(
    compiled: CompiledModel,
    prefix: Union[str, os.PathLike],
    config: Optional[Dict[str, Any]] = None,
) -> Tuple[str, str]:
    """Serialize ``compiled`` to ``<prefix>.json`` + ``<prefix>.npz``.

    Captures the full execution state: the op list (declarative attrs
    and folded float32 weights -- quantized variants are derived
    deterministically at load time), calibrated activation ranges, and
    every static memory plan computed so far. ``config`` (see
    :func:`regressor_config_meta`) is embedded verbatim so
    :func:`verify_plan` and gateway workers can validate compatibility.
    Returns the two paths written.
    """
    compiled._refresh()
    json_path, npz_path = _plan_paths(prefix)
    metas = []
    arrays: Dict[str, np.ndarray] = {}
    for op in compiled.plan.ops:
        meta, op_arrays = op.export_state()
        metas.append(meta)
        for name, arr in op_arrays.items():
            arrays[f"op{op.op_id}.{name}"] = arr
    config = config or {}
    meta = {
        "format": PLAN_FORMAT,
        "layout_version": PLAN_LAYOUT_VERSION,
        "num_regs": compiled.plan.num_regs,
        "out_reg": compiled.plan.out_reg,
        "ops": metas,
        "act_ranges": {
            str(reg): float(amax)
            for reg, amax in compiled.act_ranges.items()
        },
        "memory_plans": [
            mplan.to_meta()
            for mplan in compiled._memory_plans.values()
        ],
        "config": config,
        "config_hash": _config_hash(config),
        "weights_digest": _weights_digest(arrays),
    }
    directory = os.path.dirname(json_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(npz_path, **arrays)
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
    return json_path, npz_path


def load_plan(
    prefix: Union[str, os.PathLike],
    with_meta: bool = False,
):
    """Rebuild a detached :class:`CompiledModel` from a plan artifact.

    The restored model has no source module: it never refolds, executes
    straight from the serialized folded weights, and reuses the
    artifact's memory plans and activation ranges (so int8 works
    without recalibration). Raises
    :class:`~repro.errors.SerializationError` on missing files, wrong
    format/layout version, or a weights-digest mismatch (tampered or
    truncated npz).
    """
    json_path, npz_path = _plan_paths(prefix)
    for path in (json_path, npz_path):
        if not os.path.exists(path):
            raise SerializationError(f"no plan artifact at {path}")
    with open(json_path, "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("format") != PLAN_FORMAT:
        raise SerializationError(
            f"{json_path} is not a {PLAN_FORMAT} artifact"
        )
    if meta.get("layout_version") != PLAN_LAYOUT_VERSION:
        raise SerializationError(
            f"plan layout version {meta.get('layout_version')} is not "
            f"supported (expected {PLAN_LAYOUT_VERSION})"
        )
    with np.load(npz_path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    if _weights_digest(arrays) != meta.get("weights_digest"):
        raise SerializationError(
            f"{npz_path} does not match its recorded weights digest; "
            "the artifact is corrupt or was modified"
        )
    ops = []
    for op_meta in meta["ops"]:
        op_cls = OP_TYPES.get(op_meta["type"])
        if op_cls is None:
            raise SerializationError(
                f"unknown plan op type {op_meta['type']!r}"
            )
        namespace = f"op{op_meta['op_id']}."
        op_arrays = {
            name[len(namespace):]: arr
            for name, arr in arrays.items()
            if name.startswith(namespace)
        }
        ops.append(op_cls.restore(op_meta, op_arrays))
    plan = ForwardPlan(ops, int(meta["num_regs"]), int(meta["out_reg"]))
    compiled = CompiledModel.from_plan(plan)
    compiled.act_ranges = {
        int(reg): float(amax)
        for reg, amax in meta.get("act_ranges", {}).items()
    }
    for mplan_meta in meta.get("memory_plans", []):
        compiled.seed_memory_plan(MemoryPlan.from_meta(mplan_meta))
    obs_metrics.counter("model.plan.artifact_loads").increment()
    if with_meta:
        return compiled, meta
    return compiled


def attach_plan(module: Module, compiled: CompiledModel) -> None:
    """Install ``compiled`` as ``module``'s cached inference plan.

    ``module.compiled()`` then returns the artifact-backed plan without
    ever tracing or folding -- the gateway-worker fast path.
    """
    object.__setattr__(module, "_compiled_plan", compiled)
    object.__setattr__(module, "_compile_failed", False)


def plan_matches_config(meta: Dict[str, Any], dsp, model) -> bool:
    """Whether an artifact's embedded configs equal the live ones.

    Both sides are normalised through JSON so tuple-valued config
    fields compare equal to the lists they deserialise back as.
    """

    def _jsonable(value: Any) -> Any:
        return json.loads(json.dumps(value, default=str))

    config = meta.get("config", {})
    return (
        _jsonable(config.get("dsp")) == _jsonable(dataclasses.asdict(dsp))
        and _jsonable(config.get("model"))
        == _jsonable(dataclasses.asdict(model))
    )


def verify_plan(
    prefix: Union[str, os.PathLike],
    batch: int = 4,
    tolerance: float = 1e-5,
    f16_budget_mm: float = 1.0,
    int8_budget_mm: float = 5.0,
) -> Dict[str, Any]:
    """Standalone parity check: artifact vs the live eager model.

    Reconstructs the eager :class:`HandJointRegressor` from the
    artifact's embedded config (``dsp`` / ``model`` / ``seed`` /
    ``weights_path``), runs both it and the restored plan on a seeded
    batch, and reports divergence. Quantized modes are checked against
    their joint-mm budgets when the artifact carries calibration
    ranges; those checks run on seeded capture-campaign segments (the
    distribution the ranges were calibrated on -- white noise would be
    out of distribution for the int8 fake-quant clipping).
    ``report["passed"]`` is the overall verdict; the CLI maps it to
    the exit code.
    """
    from repro.config import DspConfig, ModelConfig
    from repro.core.regressor import HandJointRegressor

    compiled, meta = load_plan(prefix, with_meta=True)
    config = meta.get("config", {})
    if not config.get("dsp") or not config.get("model"):
        raise SerializationError(
            "plan artifact has no embedded config; re-export it with "
            "config metadata to verify"
        )
    dsp = DspConfig(**config["dsp"])
    model = ModelConfig(**config["model"])
    regressor = HandJointRegressor(dsp, model, seed=config.get("seed", 0))
    weights_path = config.get("weights_path")
    if weights_path:
        load_state(regressor, weights_path)
    regressor.eval()
    rng = np.random.default_rng(config.get("seed", 0))
    segments = rng.normal(
        size=(
            batch, dsp.segment_frames, dsp.doppler_bins,
            dsp.range_bins, dsp.angle_bins_total,
        )
    ).astype(np.float32)
    eager = regressor.predict(segments, use_compiled=False)
    attach_plan(regressor, compiled)
    loaded = regressor.predict(segments, use_compiled=True)
    max_abs_diff = float(np.max(np.abs(loaded - eager)))
    report: Dict[str, Any] = {
        "artifact": os.fspath(prefix),
        "batch": batch,
        "ops": len(compiled.plan.ops),
        "config_hash": meta.get("config_hash"),
        "memory_plans": len(meta.get("memory_plans", [])),
        "max_abs_diff": max_abs_diff,
        "tolerance": tolerance,
        "float32_ok": max_abs_diff <= tolerance,
    }
    checks = [report["float32_ok"]]
    if compiled.act_ranges:
        from repro.perf.model_bench import calibration_segments

        quant_segments = calibration_segments(
            dsp, count=batch, seed=config.get("seed", 0)
        )
        quant_eager = regressor.predict(
            quant_segments, use_compiled=False
        )
        quant_f32 = regressor.predict(quant_segments, use_compiled=True)
        f16 = regressor.predict(quant_segments, precision="float16")
        f16_mm = float(np.max(np.abs(f16 - quant_f32))) * 1000.0
        report["float16_max_diff_mm"] = f16_mm
        report["float16_budget_mm"] = f16_budget_mm
        report["float16_ok"] = f16_mm <= f16_budget_mm
        int8 = regressor.predict(quant_segments, precision="int8")
        int8_mm = float(
            np.mean(np.linalg.norm(int8 - quant_eager, axis=-1))
        ) * 1000.0
        report["int8_mean_joint_err_mm"] = int8_mm
        report["int8_budget_mm"] = int8_budget_mm
        report["int8_ok"] = int8_mm <= int8_budget_mm
        checks += [report["float16_ok"], report["int8_ok"]]
    report["passed"] = all(checks)
    return report
