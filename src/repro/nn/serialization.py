"""Model weight (de)serialization as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import SerializationError
from repro.nn.layers import Module


def save_state(module: Module, path: Union[str, os.PathLike]) -> None:
    """Write ``module``'s parameters and buffers to ``path`` (npz)."""
    state = module.state_dict()
    if not state:
        raise SerializationError("module has no parameters to save")
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(module: Module, path: Union[str, os.PathLike]) -> None:
    """Restore parameters and buffers saved by :func:`save_state`."""
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    if not os.path.exists(path):
        raise SerializationError(f"no saved state at {path}")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
