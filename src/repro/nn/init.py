"""Weight initialisers.

Deterministic given a generator: every layer takes an ``rng`` so whole
models are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def kaiming_uniform(
    rng: np.random.Generator, shape, fan_in: int
) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU networks."""
    if fan_in < 1:
        raise ModelError("fan_in must be >= 1")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(
    rng: np.random.Generator, shape, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for saturating activations."""
    if fan_in < 1 or fan_out < 1:
        raise ModelError("fan_in and fan_out must be >= 1")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
