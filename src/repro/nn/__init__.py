"""From-scratch numpy deep-learning framework.

The paper trains its network in a GPU framework; none is available
offline, so this package implements the needed subset on numpy: a
reverse-mode autograd :class:`Tensor`, conv / deconv / pooling / linear /
normalisation layers, LSTM, the attention blocks, Adam with cosine decay,
and weight serialization. Shapes follow the PyTorch conventions
(``NCHW`` for images) to keep the model code readable.
"""

from repro.nn.tensor import Tensor, concat, stack, no_grad
from repro.nn import functional
from repro.nn.layers import (
    Module,
    Linear,
    Conv2d,
    ConvTranspose2d,
    BatchNorm2d,
    LayerNorm,
    ReLU,
    Sigmoid,
    Tanh,
    Sequential,
    Dropout,
)
from repro.nn.rnn import LSTM
from repro.nn.attention import (
    FrameAttention,
    VelocityChannelAttention,
    SpatialAttention,
)
from repro.nn.optim import SGD, Adam, CosineSchedule
from repro.nn.loss import mse_loss, l2_joint_loss
from repro.nn.serialization import save_state, load_state
from repro.nn.inference import (
    BufferArena,
    CompiledModel,
    ForwardPlan,
    PlanBuilder,
    compile_model,
)

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "no_grad",
    "functional",
    "Module",
    "Linear",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "Dropout",
    "LSTM",
    "FrameAttention",
    "VelocityChannelAttention",
    "SpatialAttention",
    "SGD",
    "Adam",
    "CosineSchedule",
    "mse_loss",
    "l2_joint_loss",
    "save_state",
    "load_state",
    "BufferArena",
    "CompiledModel",
    "ForwardPlan",
    "PlanBuilder",
    "compile_model",
]
