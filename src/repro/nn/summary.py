"""Model inspection: parameter counts and per-module summaries."""

from __future__ import annotations

from typing import List, Tuple

from repro.nn.layers import Module


def count_parameters(module: Module) -> int:
    """Total number of trainable scalar parameters."""
    return int(sum(p.data.size for p in module.parameters()))


def parameter_breakdown(module: Module) -> List[Tuple[str, int]]:
    """(name, size) for every registered parameter, insertion order."""
    return [
        (name, int(p.data.size)) for name, p in module.named_parameters()
    ]


def summarize_module(module: Module, top: int = 12) -> str:
    """Readable summary: totals plus the largest parameter tensors.

    Useful for verifying a configuration stays within a compute budget
    and for documenting trained models.
    """
    breakdown = parameter_breakdown(module)
    total = sum(size for _, size in breakdown)
    lines = [
        f"{type(module).__name__}: {len(breakdown)} parameter tensors, "
        f"{total:,} scalars "
        f"({total * 4 / 1024 / 1024:.2f} MiB at float32)"
    ]
    largest = sorted(breakdown, key=lambda kv: -kv[1])[:top]
    width = max((len(name) for name, _ in largest), default=4)
    for name, size in largest:
        share = 100.0 * size / total if total else 0.0
        lines.append(f"  {name.ljust(width)}  {size:>10,}  {share:5.1f}%")
    if len(breakdown) > top:
        rest = total - sum(size for _, size in largest)
        lines.append(
            f"  (+{len(breakdown) - top} more tensors, {rest:,} scalars)"
        )
    return "\n".join(lines)
