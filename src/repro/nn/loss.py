"""Basic losses on autograd tensors.

The task-specific combined loss (3-D joint loss + kinematic loss) lives
in :mod:`repro.core.losses`; this module provides the generic pieces.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.nn.tensor import Tensor


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    target = Tensor._coerce(target)
    if prediction.shape != target.shape:
        raise ModelError(
            f"mse_loss shape mismatch: {prediction.shape} vs {target.shape}"
        )
    diff = prediction - target
    return (diff * diff).mean()


def cross_entropy_loss(logits: Tensor, target_indices) -> Tensor:
    """Mean cross entropy between logits (B, C) and integer targets (B,).

    Used by classification heads (e.g. learned gesture recognition on
    top of skeleton descriptors).
    """
    import numpy as np

    from repro.nn.functional import log_softmax

    targets = np.asarray(target_indices, dtype=int)
    if logits.ndim != 2:
        raise ModelError("cross_entropy_loss expects (B, C) logits")
    if targets.shape != (logits.shape[0],):
        raise ModelError("targets must have shape (B,)")
    if targets.min() < 0 or targets.max() >= logits.shape[1]:
        raise ModelError("target indices out of range")
    log_probs = log_softmax(logits, axis=-1)
    one_hot = np.zeros(logits.shape, dtype=np.float32)
    one_hot[np.arange(len(targets)), targets] = 1.0
    return -(log_probs * Tensor(one_hot)).sum() * (1.0 / len(targets))


def l2_joint_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Sum of per-joint Euclidean distances (paper's L3D, Eq. 8).

    ``prediction`` and ``target`` have shape (B, J, 3); the result is the
    mean over the batch of the per-sample sum of joint distances.
    """
    target = Tensor._coerce(target)
    if prediction.ndim != 3 or prediction.shape[-1] != 3:
        raise ModelError(
            f"l2_joint_loss expects (B, J, 3), got {prediction.shape}"
        )
    if prediction.shape != target.shape:
        raise ModelError(
            f"l2_joint_loss shape mismatch: {prediction.shape} vs "
            f"{target.shape}"
        )
    diff = prediction - target
    sq = (diff * diff).sum(axis=-1)
    dist = (sq + 1e-12) ** 0.5
    return dist.sum(axis=-1).mean()
