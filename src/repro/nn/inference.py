"""Compiled autograd-free inference plans.

:func:`compile_model` traces a :class:`~repro.nn.layers.Module` into a
flat :class:`ForwardPlan` of raw-ndarray ops -- no per-op ``Tensor``
allocation, no parent tuples, no backward closures. The compiler applies
the classic serving-side optimisations:

* **Conv+BN folding** -- an eval-mode ``BatchNorm2d`` following a
  ``Conv2d`` / ``ConvTranspose2d`` collapses into the conv's weights and
  bias (``W' = W * gamma/sqrt(var+eps)``, ``b' = (b-mean)*scale+beta``);
* **ReLU/sigmoid fusion** -- activations run in place on the GEMM output
  instead of allocating a fresh array per op;
* **pre-flattened weights** -- conv kernels are stored as contiguous
  ``(O, C*kh*kw)`` GEMM operands and linear/LSTM weights pre-transposed;
* **buffer arenas** -- every op reuses per-plan scratch (im2col columns,
  padded inputs, GEMM outputs) keyed by op id, so steady-state serving
  with a stable batch shape does near-zero allocation;
* **parallel batch sharding** -- :meth:`CompiledModel.run` optionally
  splits a large fused batch across a thread pool, one buffer arena per
  shard (rows are independent in eval mode, so outputs are unchanged).

Folded weights are memoized against the sum of the source parameters'
:attr:`~repro.nn.tensor.Tensor.version` counters (bumped by optimizer
steps and ``load_state_dict``), so a live trainer and a serving plan can
share one module: the next compiled call after a weight update refolds.

Composite modules (the mmSpaceNet residual blocks, the regressor, ...)
participate by defining ``compile_plan(self, builder, reg) -> reg``;
anything the compiler cannot handle raises
:class:`~repro.errors.InferenceCompileError` and callers fall back to
the eager forward under :func:`~repro.nn.tensor.no_grad`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InferenceCompileError, ModelError
from repro.nn.attention import (
    FrameAttention,
    SpatialAttention,
    VelocityChannelAttention,
)
from repro.nn.functional import _im2col
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.rnn import LSTM
from repro.obs import metrics as obs_metrics
from repro.obs import trace


def _sigmoid_inplace(x: np.ndarray) -> np.ndarray:
    """``1 / (1 + exp(-x))`` computed in place (eager's exact formula)."""
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += 1.0
    np.reciprocal(x, out=x)
    return x


class BufferArena:
    """Per-execution scratch buffers keyed by ``(op id, tag)``.

    A buffer is reallocated only when its requested shape or dtype
    changes, so a serving loop with a stable batch shape reuses every
    intermediate. ``zero=True`` buffers are zero-filled once at
    allocation; ops relying on it only ever write the same positions
    (padding interiors, upsample lattices), so the zeros persist.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def get(
        self, key: Tuple, shape: Tuple[int, ...], dtype,
        zero: bool = False,
    ) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = (
                np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
            )
            self._buffers[key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


# ----------------------------------------------------------------------
# Plan ops
# ----------------------------------------------------------------------
class PlanOp:
    """One flat step of a forward plan: read ``src`` regs, write ``dst``."""

    name = "op"

    def __init__(self, op_id: int, src: int, dst: int) -> None:
        self.op_id = op_id
        self.src = src
        self.dst = dst

    def refold(self) -> None:
        """Recompute folded weights from the live source parameters."""

    def run(self, regs: List, arena: BufferArena) -> None:
        raise NotImplementedError


def _conv_gemm(
    x: np.ndarray,
    w_flat: np.ndarray,
    bias_col: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    arena: BufferArena,
    key: Tuple,
    relu: bool = False,
    sigmoid: bool = False,
) -> np.ndarray:
    """Shared conv kernel: pad -> im2col -> GEMM -> epilogue -> NCHW.

    Every intermediate lives in the arena under ``key``-derived slots;
    the returned ``(N, O, out_h, out_w)`` array is an arena buffer too
    (valid until this op runs again in the same arena).
    """
    n, c, h, w = x.shape
    if padding:
        ph, pw = h + 2 * padding, w + 2 * padding
        padded = arena.get(key + ("pad",), (n, c, ph, pw), x.dtype,
                           zero=True)
        padded[:, :, padding:padding + h, padding:padding + w] = x
        x, h, w = padded, ph, pw
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    o = w_flat.shape[0]
    m = n * out_h * out_w
    dtype = np.result_type(x.dtype, w_flat.dtype)
    cols = arena.get(key + ("cols",), (c * kh * kw, m), x.dtype)
    _im2col(x, kh, kw, stride, out=cols)
    out_flat = arena.get(key + ("gemm",), (o, m), dtype)
    np.matmul(w_flat, cols, out=out_flat)
    if bias_col is not None:
        out_flat += bias_col
    if relu:
        np.maximum(out_flat, 0.0, out=out_flat)
    if sigmoid:
        _sigmoid_inplace(out_flat)
    out = arena.get(key + ("out",), (n, o, out_h, out_w), dtype)
    np.copyto(
        out, out_flat.reshape(o, n, out_h, out_w).transpose(1, 0, 2, 3)
    )
    return out


def _fold_conv(
    conv: Conv2d, bn: Optional[BatchNorm2d]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pre-flattened GEMM weight and bias column, with BN folded in."""
    w = conv.weight.data
    o = w.shape[0]
    b = (
        conv.bias.data
        if conv.bias is not None
        else np.zeros(o, dtype=w.dtype)
    )
    if bn is not None:
        scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
        w = w * scale[:, None, None, None]
        b = (b - bn.running_mean) * scale + bn.beta.data
    w_flat = np.ascontiguousarray(w.reshape(o, -1))
    return w_flat, np.ascontiguousarray(b.reshape(o, 1))


class ConvOp(PlanOp):
    """Conv2d with pre-flattened weights, folded BN, fused activation."""

    name = "conv2d"

    def __init__(
        self,
        op_id: int,
        src: int,
        dst: int,
        conv: Conv2d,
        bn: Optional[BatchNorm2d] = None,
        relu: bool = False,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.conv = conv
        self.bn = bn
        self.relu = relu
        self.kh, self.kw = conv.weight.data.shape[2:]
        self.refold()

    def refold(self) -> None:
        self.w_flat, self.bias_col = _fold_conv(self.conv, self.bn)

    def run(self, regs: List, arena: BufferArena) -> None:
        regs[self.dst] = _conv_gemm(
            regs[self.src], self.w_flat, self.bias_col, self.kh, self.kw,
            self.conv.stride, self.conv.padding, arena, (self.op_id,),
            relu=self.relu,
        )


class UpsampleZerosOp(PlanOp):
    """Zero-stuffing upsample (the expand half of ConvTranspose2d)."""

    name = "upsample_zeros"

    def __init__(self, op_id: int, src: int, dst: int, stride: int) -> None:
        super().__init__(op_id, src, dst)
        self.stride = stride

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        n, c, h, w = x.shape
        s = self.stride
        out = arena.get(
            (self.op_id, "out"), (n, c, h * s, w * s), x.dtype, zero=True
        )
        out[:, :, ::s, ::s] = x
        regs[self.dst] = out


class BatchNormOp(PlanOp):
    """Standalone eval-mode BatchNorm2d (only when no conv precedes it)."""

    name = "batch_norm2d"

    def __init__(
        self, op_id: int, src: int, dst: int, bn: BatchNorm2d,
        relu: bool = False,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.bn = bn
        self.relu = relu
        self.refold()

    def refold(self) -> None:
        bn = self.bn
        inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
        self.scale = (bn.gamma.data * inv_std).reshape(1, -1, 1, 1)
        self.shift = (
            bn.beta.data - bn.running_mean * bn.gamma.data * inv_std
        ).reshape(1, -1, 1, 1)

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        dtype = np.result_type(x.dtype, self.scale.dtype)
        out = arena.get((self.op_id, "out"), x.shape, dtype)
        np.multiply(x, self.scale, out=out)
        out += self.shift
        if self.relu:
            np.maximum(out, 0.0, out=out)
        regs[self.dst] = out


class ActivationOp(PlanOp):
    """Standalone relu / sigmoid / tanh when fusion was not possible."""

    name = "activation"

    def __init__(self, op_id: int, src: int, dst: int, kind: str) -> None:
        super().__init__(op_id, src, dst)
        self.kind = kind

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        out = arena.get((self.op_id, "out"), x.shape, x.dtype)
        if self.kind == "relu":
            np.maximum(x, 0.0, out=out)
        elif self.kind == "sigmoid":
            np.copyto(out, x)
            _sigmoid_inplace(out)
        else:  # tanh
            np.tanh(x, out=out)
        regs[self.dst] = out


class AddReluOp(PlanOp):
    """``relu(a + b)`` -- the residual merge of the hourglass blocks."""

    name = "add_relu"

    def __init__(self, op_id: int, src: int, other: int, dst: int) -> None:
        super().__init__(op_id, src, dst)
        self.other = other

    def run(self, regs: List, arena: BufferArena) -> None:
        a, b = regs[self.src], regs[self.other]
        out = arena.get(
            (self.op_id, "out"), a.shape, np.result_type(a.dtype, b.dtype)
        )
        np.add(a, b, out=out)
        np.maximum(out, 0.0, out=out)
        regs[self.dst] = out


class LinearOp(PlanOp):
    """GEMM with pre-transposed weight and fused activation epilogue."""

    name = "linear"

    def __init__(
        self, op_id: int, src: int, dst: int, linear: Linear,
        relu: bool = False,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.linear = linear
        self.relu = relu
        self.refold()

    def refold(self) -> None:
        self.w_t = np.ascontiguousarray(self.linear.weight.data.T)
        self.bias = (
            self.linear.bias.data if self.linear.bias is not None else None
        )

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        dtype = np.result_type(x.dtype, self.w_t.dtype)
        out = arena.get(
            (self.op_id, "out"), (x.shape[0], self.w_t.shape[1]), dtype
        )
        np.matmul(x, self.w_t, out=out)
        if self.bias is not None:
            out += self.bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        regs[self.dst] = out


class ReshapeOp(PlanOp):
    """View reshape; ``shape_fn`` maps the input shape to the new one."""

    name = "reshape"

    def __init__(
        self, op_id: int, src: int, dst: int,
        shape_fn: Callable[[Tuple[int, ...]], Tuple[int, ...]],
    ) -> None:
        super().__init__(op_id, src, dst)
        self.shape_fn = shape_fn

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        regs[self.dst] = x.reshape(self.shape_fn(x.shape))


class CheckShapeOp(PlanOp):
    """Input validation matching the eager module's error messages."""

    name = "check_shape"

    def __init__(
        self, op_id: int, src: int,
        check_fn: Callable[[Tuple[int, ...]], None],
    ) -> None:
        super().__init__(op_id, src, src)
        self.check_fn = check_fn

    def run(self, regs: List, arena: BufferArena) -> None:
        self.check_fn(regs[self.src].shape)


class FrameAttentionOp(PlanOp):
    """Eq. 2-3: per-frame weights from TGAP+TGMP through two tiny convs."""

    name = "frame_attention"

    def __init__(
        self, op_id: int, src: int, dst: int, module: FrameAttention
    ) -> None:
        super().__init__(op_id, src, dst)
        self.module = module
        self.refold()

    def refold(self) -> None:
        self.w1, self.b1 = _fold_conv(self.module.conv1, None)
        self.w2, self.b2 = _fold_conv(self.module.conv2, None)

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        b, st = x.shape[:2]
        pooled = x.mean(axis=(2, 3, 4)) + x.max(axis=(2, 3, 4))  # (B, st)
        seq = pooled.reshape(b, 1, 1, st)
        hidden = _conv_gemm(
            seq, self.w1, self.b1, 3, 3, 1, 1, arena,
            (self.op_id, "c1"), relu=True,
        )
        weights = _conv_gemm(
            hidden, self.w2, self.b2, 3, 3, 1, 1, arena,
            (self.op_id, "c2"), sigmoid=True,
        )
        out = arena.get((self.op_id, "out"), x.shape, x.dtype)
        np.multiply(x, weights.reshape(b, st, 1, 1, 1), out=out)
        regs[self.dst] = out


class VelocityChannelAttentionOp(PlanOp):
    """Eq. 4-5: per-channel weights from GAP||GMP through one FC."""

    name = "velocity_channel_attention"

    def __init__(
        self, op_id: int, src: int, dst: int,
        module: VelocityChannelAttention,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.module = module
        self.refold()

    def refold(self) -> None:
        self.w_t = np.ascontiguousarray(self.module.fc.weight.data.T)
        self.bias = self.module.fc.bias.data

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        n, c = x.shape[:2]
        dtype = np.result_type(x.dtype, self.w_t.dtype)
        features = arena.get((self.op_id, "feat"), (n, 2 * c), x.dtype)
        np.mean(x, axis=(2, 3), out=features[:, :c])
        np.max(x, axis=(2, 3), out=features[:, c:])
        weights = arena.get(
            (self.op_id, "w"), (n, self.w_t.shape[1]), dtype
        )
        np.matmul(features, self.w_t, out=weights)
        weights += self.bias
        _sigmoid_inplace(weights)
        out = arena.get((self.op_id, "out"), x.shape, dtype)
        np.multiply(x, weights.reshape(n, c, 1, 1), out=out)
        regs[self.dst] = out


class SpatialAttentionOp(PlanOp):
    """Eq. 6-7: range-angle weights from channel mean/max maps."""

    name = "spatial_attention"

    def __init__(
        self, op_id: int, src: int, dst: int, module: SpatialAttention
    ) -> None:
        super().__init__(op_id, src, dst)
        self.module = module
        self.refold()

    def refold(self) -> None:
        self.w_flat, self.bias_col = _fold_conv(self.module.conv, None)
        k = self.module.conv.weight.data.shape[2]
        self.kernel = k
        self.padding = self.module.conv.padding

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        n, _, d, a = x.shape
        maps = arena.get((self.op_id, "maps"), (n, 2, d, a), x.dtype)
        np.mean(x, axis=1, out=maps[:, 0])
        np.max(x, axis=1, out=maps[:, 1])
        weights = _conv_gemm(
            maps, self.w_flat, self.bias_col, self.kernel, self.kernel,
            1, self.padding, arena, (self.op_id, "conv"), sigmoid=True,
        )
        out = arena.get(
            (self.op_id, "out"), x.shape,
            np.result_type(x.dtype, weights.dtype),
        )
        np.multiply(x, weights, out=out)
        regs[self.dst] = out


class LSTMOp(PlanOp):
    """Single-layer LSTM returning the final hidden state ``(B, H)``.

    The input projection for *all* timesteps runs as one GEMM up front
    (``(B*T, in) @ (in, 4H)``); the recurrence then only pays the small
    ``(B, H) @ (H, 4H)`` GEMM and in-place gate math per step.
    """

    name = "lstm"

    def __init__(
        self, op_id: int, src: int, dst: int, lstm: LSTM
    ) -> None:
        super().__init__(op_id, src, dst)
        self.lstm = lstm
        self.refold()

    def refold(self) -> None:
        self.w_ih_t = np.ascontiguousarray(self.lstm.w_ih.data.T)
        self.w_hh_t = np.ascontiguousarray(self.lstm.w_hh.data.T)
        self.bias = self.lstm.bias.data

    def run(self, regs: List, arena: BufferArena) -> None:
        x = regs[self.src]
        b, steps, _ = x.shape
        h_dim = self.lstm.hidden_size
        gates_dim = 4 * h_dim
        dtype = np.result_type(x.dtype, self.w_ih_t.dtype)
        key = (self.op_id,)
        xw = arena.get(key + ("xw",), (b * steps, gates_dim), dtype)
        np.matmul(x.reshape(b * steps, -1), self.w_ih_t, out=xw)
        xw3 = xw.reshape(b, steps, gates_dim)
        h = arena.get(key + ("h",), (b, h_dim), dtype)
        c = arena.get(key + ("c",), (b, h_dim), dtype)
        h.fill(0.0)
        c.fill(0.0)
        gates = arena.get(key + ("gates",), (b, gates_dim), dtype)
        tmp = arena.get(key + ("tmp",), (b, h_dim), dtype)
        for t in range(steps):
            np.matmul(h, self.w_hh_t, out=gates)
            gates += xw3[:, t]
            gates += self.bias
            i_gate = _sigmoid_inplace(gates[:, 0:h_dim])
            f_gate = _sigmoid_inplace(gates[:, h_dim:2 * h_dim])
            g_gate = np.tanh(
                gates[:, 2 * h_dim:3 * h_dim],
                out=gates[:, 2 * h_dim:3 * h_dim],
            )
            o_gate = _sigmoid_inplace(gates[:, 3 * h_dim:4 * h_dim])
            np.multiply(f_gate, c, out=c)
            np.multiply(i_gate, g_gate, out=tmp)
            c += tmp
            np.tanh(c, out=tmp)
            np.multiply(o_gate, tmp, out=h)
        regs[self.dst] = h


# ----------------------------------------------------------------------
# Plan builder / compiler
# ----------------------------------------------------------------------
class PlanBuilder:
    """Accumulates the flat op list while the module tree is walked.

    Composite modules call back into the builder from their
    ``compile_plan(builder, reg)`` hooks; the emit helpers return the
    output register index of the op they appended.
    """

    def __init__(self) -> None:
        self.ops: List[PlanOp] = []
        self.num_regs = 1  # register 0 is the plan input

    def _new_reg(self) -> int:
        reg = self.num_regs
        self.num_regs += 1
        return reg

    def _emit(self, make_op) -> int:
        dst = self._new_reg()
        self.ops.append(make_op(len(self.ops), dst))
        return dst

    # -- emit helpers ---------------------------------------------------
    def conv(
        self, reg: int, conv: Conv2d, bn: Optional[BatchNorm2d] = None,
        relu: bool = False,
    ) -> int:
        return self._emit(lambda i, d: ConvOp(i, reg, d, conv, bn, relu))

    def upsample_zeros(self, reg: int, stride: int) -> int:
        if stride == 1:
            return reg
        return self._emit(lambda i, d: UpsampleZerosOp(i, reg, d, stride))

    def batch_norm(
        self, reg: int, bn: BatchNorm2d, relu: bool = False
    ) -> int:
        return self._emit(lambda i, d: BatchNormOp(i, reg, d, bn, relu))

    def activation(self, reg: int, kind: str) -> int:
        return self._emit(lambda i, d: ActivationOp(i, reg, d, kind))

    def add_relu(self, reg: int, other: int) -> int:
        return self._emit(lambda i, d: AddReluOp(i, reg, other, d))

    def linear(self, reg: int, linear: Linear, relu: bool = False) -> int:
        return self._emit(lambda i, d: LinearOp(i, reg, d, linear, relu))

    def reshape(self, reg: int, shape_fn) -> int:
        return self._emit(lambda i, d: ReshapeOp(i, reg, d, shape_fn))

    def check_shape(self, reg: int, check_fn) -> int:
        self.ops.append(CheckShapeOp(len(self.ops), reg, check_fn))
        return reg

    def lstm(self, reg: int, lstm: LSTM) -> int:
        return self._emit(lambda i, d: LSTMOp(i, reg, d, lstm))

    # -- module walk ----------------------------------------------------
    def module(self, reg: int, module: Module) -> int:
        """Compile one module (dispatch by type / ``compile_plan`` hook)."""
        hook = getattr(module, "compile_plan", None)
        if hook is not None:
            return hook(self, reg)
        if isinstance(module, Sequential):
            return self.sequential(reg, module)
        if isinstance(module, Conv2d):
            return self.conv(reg, module)
        if isinstance(module, ConvTranspose2d):
            return self.conv(
                self.upsample_zeros(reg, module.stride), module.conv
            )
        if isinstance(module, BatchNorm2d):
            return self.batch_norm(reg, module)
        if isinstance(module, Linear):
            return self.linear(reg, module)
        if isinstance(module, ReLU):
            return self.activation(reg, "relu")
        if isinstance(module, Sigmoid):
            return self.activation(reg, "sigmoid")
        if isinstance(module, Tanh):
            return self.activation(reg, "tanh")
        if isinstance(module, Dropout):
            return reg  # identity in eval mode
        if isinstance(module, FrameAttention):
            return self._emit(
                lambda i, d: FrameAttentionOp(i, reg, d, module)
            )
        if isinstance(module, VelocityChannelAttention):
            return self._emit(
                lambda i, d: VelocityChannelAttentionOp(i, reg, d, module)
            )
        if isinstance(module, SpatialAttention):
            return self._emit(
                lambda i, d: SpatialAttentionOp(i, reg, d, module)
            )
        raise InferenceCompileError(
            f"cannot compile module of type {type(module).__name__}; "
            "define compile_plan(builder, reg) on it or run eagerly"
        )

    def sequential(self, reg: int, seq: Sequential) -> int:
        """Compile a Sequential, fusing Conv->BN->ReLU / Linear->ReLU."""
        layers = list(seq.layers)
        i = 0
        while i < len(layers):
            layer = layers[i]
            if isinstance(layer, (Conv2d, ConvTranspose2d)):
                bn = None
                j = i + 1
                if j < len(layers) and isinstance(layers[j], BatchNorm2d):
                    bn = layers[j]
                    j += 1
                relu = j < len(layers) and isinstance(layers[j], ReLU)
                if relu:
                    j += 1
                if isinstance(layer, ConvTranspose2d):
                    reg = self.upsample_zeros(reg, layer.stride)
                    conv = layer.conv
                else:
                    conv = layer
                reg = self.conv(reg, conv, bn=bn, relu=relu)
                i = j
            elif isinstance(layer, Linear):
                relu = i + 1 < len(layers) and isinstance(
                    layers[i + 1], ReLU
                )
                reg = self.linear(reg, layer, relu=relu)
                i += 2 if relu else 1
            elif isinstance(layer, BatchNorm2d):
                relu = i + 1 < len(layers) and isinstance(
                    layers[i + 1], ReLU
                )
                reg = self.batch_norm(reg, layer, relu=relu)
                i += 2 if relu else 1
            else:
                reg = self.module(reg, layer)
                i += 1
        return reg


class ForwardPlan:
    """The flat op list plus its register-file size and output slot."""

    def __init__(
        self, ops: List[PlanOp], num_regs: int, out_reg: int
    ) -> None:
        self.ops = ops
        self.num_regs = num_regs
        self.out_reg = out_reg

    def execute(self, x: np.ndarray, arena: BufferArena) -> np.ndarray:
        regs: List[Optional[np.ndarray]] = [None] * self.num_regs
        regs[0] = x
        for op in self.ops:
            op.run(regs, arena)
        return regs[self.out_reg]

    def refold(self) -> None:
        for op in self.ops:
            op.refold()


class CompiledModel:
    """A module compiled to a :class:`ForwardPlan`, ready to serve.

    ``run`` takes and returns plain ndarrays. The folded weights are
    revalidated against the source parameters' version counters on
    every call; a bumped version (optimizer step, ``load_state_dict``)
    triggers a cheap refold, so training and serving coexist on one
    module. With ``shards > 1`` the batch is split across a persistent
    thread pool, one :class:`BufferArena` per shard -- eval-mode rows
    are independent, so the fused output is unchanged.
    """

    def __init__(self, module: Module, plan: ForwardPlan) -> None:
        self.module = module
        self.plan = plan
        self._params = [p for _, p in module.named_parameters()]
        self._version = self._param_version()
        self._arena = BufferArena()
        self._shard_arenas: List[BufferArena] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _param_version(self) -> int:
        return sum(getattr(p, "_version", 0) for p in self._params)

    def _refresh(self) -> None:
        version = self._param_version()
        if version == self._version:
            return
        with self._lock:
            if version != self._version:
                self.plan.refold()
                self._version = version
                obs_metrics.counter("model.plan.refolds").increment()

    def _shard_slots(self, shards: int):
        with self._lock:
            while len(self._shard_arenas) < shards:
                self._shard_arenas.append(BufferArena())
            if (
                self._executor is None
                or self._executor._max_workers < shards
            ):
                if self._executor is not None:
                    self._executor.shutdown(wait=False)
                self._executor = ThreadPoolExecutor(
                    max_workers=shards,
                    thread_name_prefix="repro-infer",
                )
            return self._executor, self._shard_arenas

    def run(
        self, x: np.ndarray, shards: Optional[int] = None
    ) -> np.ndarray:
        """Execute the plan on ``x``; returns a fresh output array."""
        x = np.asarray(x)
        self._refresh()
        obs_metrics.counter("model.plan.executes").increment()
        with trace.span(
            "model.forward.compiled", batch=int(x.shape[0]),
            ops=len(self.plan.ops), shards=int(shards or 1),
        ):
            if not shards or shards <= 1 or x.shape[0] < 2 * shards:
                # The arena buffers (including the output register) are
                # reused by the next call, so hand back a copy.
                return self.plan.execute(x, self._arena).copy()
            executor, arenas = self._shard_slots(shards)
            chunks = np.array_split(x, shards)
            futures = [
                executor.submit(self.plan.execute, chunk, arenas[i])
                for i, chunk in enumerate(chunks)
            ]
            # Concatenate copies the shard outputs out of their arenas.
            return np.concatenate([f.result() for f in futures], axis=0)

    __call__ = run

    def stats(self) -> Dict[str, Any]:
        """Plan shape and arena footprint for observability surfaces."""
        return {
            "ops": len(self.plan.ops),
            "params": len(self._params),
            "param_version": self._version,
            "arena_buffers": len(self._arena),
            "arena_bytes": self._arena.nbytes,
            "shard_arenas": len(self._shard_arenas),
        }


def compile_model(module: Module) -> CompiledModel:
    """Compile ``module`` into an autograd-free :class:`CompiledModel`.

    The plan always has eval semantics: batch norm uses running
    statistics and dropout is the identity, exactly like the eager
    forward after ``module.eval()``. Raises
    :class:`~repro.errors.InferenceCompileError` when the module tree
    contains something the compiler does not understand.
    """
    builder = PlanBuilder()
    try:
        out_reg = builder.module(0, module)
    except InferenceCompileError:
        raise
    except ModelError as exc:  # structural assumptions violated
        raise InferenceCompileError(str(exc)) from exc
    plan = ForwardPlan(builder.ops, builder.num_regs, out_reg)
    obs_metrics.counter("model.plan.compiles").increment()
    return CompiledModel(module, plan)
