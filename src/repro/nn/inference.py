"""Compiled autograd-free inference plans.

:func:`compile_model` traces a :class:`~repro.nn.layers.Module` into a
flat :class:`ForwardPlan` of raw-ndarray ops -- no per-op ``Tensor``
allocation, no parent tuples, no backward closures. The compiler applies
the classic serving-side optimisations:

* **Conv+BN folding** -- an eval-mode ``BatchNorm2d`` following a
  ``Conv2d`` / ``ConvTranspose2d`` collapses into the conv's weights and
  bias (``W' = W * gamma/sqrt(var+eps)``, ``b' = (b-mean)*scale+beta``);
* **ReLU/sigmoid fusion** -- activations run in place on the GEMM output
  instead of allocating a fresh array per op;
* **pre-flattened weights** -- conv kernels are stored as contiguous
  ``(O, C*kh*kw)`` GEMM operands and linear/LSTM weights pre-transposed;
* **static memory planning** -- a probe execution records every scratch
  request, a liveness pass computes each buffer's ``[first, last]`` op
  interval, and greedy interval-graph coloring packs the buffers into a
  small set of reused slabs (:class:`MemoryPlan` / :class:`PlannedArena`),
  typically a large cut versus the one-buffer-per-request
  :class:`BufferArena`;
* **quantized execution modes** -- ``precision="float16"`` rounds GEMM
  weights and outputs through the float16 grid; ``precision="int8"``
  runs symmetric per-channel weight quantization with per-tensor
  activation fake-quant from calibrated ranges
  (:meth:`CompiledModel.calibrate`), accumulating in float32 in the
  im2col-GEMM epilogue. Attention ops (sigmoid-gated, numerically
  touchy) always run float32;
* **parallel batch sharding** -- :meth:`CompiledModel.run` optionally
  splits a large fused batch across a thread pool, one planned arena per
  shard (rows are independent in eval mode, so outputs are unchanged).

Folded weights are memoized against the sum of the source parameters'
:attr:`~repro.nn.tensor.Tensor.version` counters (bumped by optimizer
steps and ``load_state_dict``), so a live trainer and a serving plan can
share one module: the next compiled call after a weight update refolds
(and drops any cached quantized weight variants).

Plans are also *portable*: every op exposes ``export_state`` /
``restore`` so :mod:`repro.nn.serialization` can write a compiled plan
(ops, folded weights, quant ranges, memory plans) to a versioned on-disk
artifact and rebuild a detached :class:`CompiledModel` in another
process without retracing or refolding.

Composite modules (the mmSpaceNet residual blocks, the regressor, ...)
participate by defining ``compile_plan(self, builder, reg) -> reg``;
anything the compiler cannot handle raises
:class:`~repro.errors.InferenceCompileError` and callers fall back to
the eager forward under :func:`~repro.nn.tensor.no_grad`.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    InferenceCompileError,
    ModelError,
    QuantizationError,
    SerializationError,
)
from repro.nn.attention import (
    FrameAttention,
    SpatialAttention,
    VelocityChannelAttention,
)
from repro.nn.functional import _im2col
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.rnn import LSTM
from repro.obs import metrics as obs_metrics
from repro.obs import trace

PRECISIONS = ("float32", "float16", "int8")
"""Execution modes accepted by :meth:`CompiledModel.run`."""


def _sigmoid_inplace(x: np.ndarray) -> np.ndarray:
    """``1 / (1 + exp(-x))`` computed in place (eager's exact formula)."""
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += 1.0
    np.reciprocal(x, out=x)
    return x


class BufferArena:
    """Per-execution scratch buffers keyed by ``(op id, tag)``.

    A buffer is reallocated only when its requested shape or dtype
    changes, so a serving loop with a stable batch shape reuses every
    intermediate. ``zero=True`` buffers are zero-filled once at
    allocation; ops relying on it only ever write the same positions
    (padding interiors, upsample lattices), so the zeros persist.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def get(
        self, key: Tuple, shape: Tuple[int, ...], dtype,
        zero: bool = False,
    ) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = (
                np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
            )
            self._buffers[key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


class ExecContext:
    """Execution-time state handed to every op: scratch + precision."""

    __slots__ = ("arena", "precision", "scales")

    def __init__(
        self,
        arena,
        precision: str = "float32",
        scales: Optional[Dict[int, float]] = None,
    ) -> None:
        self.arena = arena
        self.precision = precision
        self.scales = scales


# ----------------------------------------------------------------------
# Quantization helpers
# ----------------------------------------------------------------------
def _quantize_weight_f16(w: np.ndarray) -> np.ndarray:
    """Round a weight through the float16 grid (compute stays float32)."""
    return np.ascontiguousarray(w.astype(np.float16).astype(w.dtype))


def _quantize_weight_int8(w: np.ndarray, channel_axis: int) -> np.ndarray:
    """Symmetric per-channel int8 quantization of a 2-D GEMM weight.

    Returns the *dequantized* float copy (``round(w/s) * s`` clipped to
    [-127, 127] steps): numpy has no int8 BLAS, so the GEMM itself runs
    in float32 -- this is the "float32 accumulate" epilogue, with the
    weight error exactly that of real int8 storage.
    """
    reduce_axis = 1 - channel_axis
    amax = np.max(np.abs(w), axis=reduce_axis, keepdims=True)
    scale = amax / 127.0
    scale[scale == 0.0] = 1.0
    w_q = np.clip(np.rint(w / scale), -127.0, 127.0)
    return np.ascontiguousarray((w_q * scale).astype(w.dtype))


def _fake_quant_input(
    x: np.ndarray, reg: int, ctx: ExecContext, key: Tuple
) -> np.ndarray:
    """Per-tensor symmetric int8 fake-quant of an activation.

    Uses the calibrated absolute-max range for ``reg``; registers the
    calibration never saw (or saw as all-zero) pass through unquantized.
    The result lives in an arena scratch buffer under ``key + ("q",)``.
    """
    scales = ctx.scales
    if scales is None:
        return x
    amax = scales.get(reg)
    if amax is None or amax <= 0.0:
        return x
    scale = amax / 127.0
    buf = ctx.arena.get(key + ("q",), x.shape, x.dtype)
    np.multiply(x, 1.0 / scale, out=buf)
    np.rint(buf, out=buf)
    np.clip(buf, -127.0, 127.0, out=buf)
    buf *= scale
    return buf


def _round_f16_inplace(
    out: np.ndarray, arena, key: Tuple
) -> np.ndarray:
    """Round ``out`` through the float16 grid using an arena temp."""
    tmp = arena.get(key + ("f16",), out.shape, np.float16)
    np.copyto(tmp, out)
    np.copyto(out, tmp)
    return out


def _reshape_fn_from_spec(spec) -> Callable:
    """Rebuild a reshape's shape function from its declarative spec."""
    kind, args = spec[0], tuple(spec[1:])
    if kind == "promote4":
        return lambda s: (1, *s) if len(s) == 4 else tuple(s)
    if kind == "merge01":
        return lambda s: (s[0] * s[1], *s[2:])
    if kind == "tail":
        return lambda s: (s[0], *args)
    if kind == "split0":
        return lambda s: (s[0] // args[0], *args)
    raise SerializationError(f"unknown reshape spec {list(spec)!r}")


def _check_fn_from_spec(spec: Dict[str, Any]) -> Callable:
    """Rebuild a shape-check function from its declarative spec."""
    ndim = spec.get("ndim")
    eq = [tuple(pair) for pair in spec.get("eq", [])]
    div = [tuple(pair) for pair in spec.get("div", [])]

    def check(shape: Tuple[int, ...]) -> None:
        if ndim is not None and len(shape) != ndim:
            raise ModelError(
                f"plan expects a rank-{ndim} input, got {shape}"
            )
        for axis, want in eq:
            if shape[axis] != want:
                raise ModelError(
                    f"plan expects shape[{axis}] == {want}, got {shape}"
                )
        for axis, factor in div:
            if shape[axis] % factor:
                raise ModelError(
                    f"plan expects shape[{axis}] divisible by {factor}, "
                    f"got {shape}"
                )

    return check


# ----------------------------------------------------------------------
# Plan ops
# ----------------------------------------------------------------------
class PlanOp:
    """One flat step of a forward plan: read ``src`` regs, write ``dst``.

    Ops are *portable*: ``export_state`` emits the scalar attrs named in
    ``export_attrs`` plus the folded-weight arrays named in
    ``export_arrays``, and ``restore`` rebuilds a detached op from them.
    Detached ops hold no live module references, so ``refold`` is a
    no-op and the op never tracks parameter versions.
    """

    name = "op"
    export_attrs: Tuple[str, ...] = ()
    export_arrays: Tuple[str, ...] = ()

    def __init__(self, op_id: int, src: int, dst: int) -> None:
        self.op_id = op_id
        self.src = src
        self.dst = dst
        self._detached = False
        self._modes: Dict[str, Any] = {}

    def reads(self) -> Tuple[int, ...]:
        """Registers this op reads (used by the liveness analysis)."""
        return (self.src,)

    def refold(self) -> None:
        """Recompute folded weights from the live source parameters."""

    def run(self, regs: List, ctx: ExecContext) -> None:
        raise NotImplementedError

    # -- portability ----------------------------------------------------
    def export_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        self._check_exportable()
        meta: Dict[str, Any] = {
            "type": self.name,
            "op_id": self.op_id,
            "src": self.src,
            "dst": self.dst,
        }
        for attr in self.export_attrs:
            meta[attr] = getattr(self, attr)
        arrays = {}
        for attr in self.export_arrays:
            val = getattr(self, attr)
            if val is not None:
                arrays[attr] = val
        return meta, arrays

    def _check_exportable(self) -> None:
        """Hook for ops that need extra state to be serializable."""

    @classmethod
    def restore(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "PlanOp":
        op = cls.__new__(cls)
        op.op_id = int(meta["op_id"])
        op.src = int(meta["src"])
        op.dst = int(meta["dst"])
        op._detached = True
        op._modes = {}
        for attr in cls.export_attrs:
            setattr(op, attr, meta[attr])
        for attr in cls.export_arrays:
            setattr(op, attr, arrays.get(attr))
        op._finish_restore(meta)
        return op

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        """Hook to null module refs / rebuild derived callables."""


def _conv_gemm(
    x: np.ndarray,
    w_flat: np.ndarray,
    bias_col: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    arena,
    key: Tuple,
    relu: bool = False,
    sigmoid: bool = False,
    f16: bool = False,
) -> np.ndarray:
    """Shared conv kernel: pad -> im2col -> GEMM -> epilogue -> NCHW.

    Every intermediate lives in the arena under ``key``-derived slots;
    the returned ``(N, O, out_h, out_w)`` array is an arena buffer too
    (valid until this op runs again in the same arena). ``f16=True``
    rounds the post-activation GEMM output through the float16 grid.
    """
    n, c, h, w = x.shape
    if padding:
        ph, pw = h + 2 * padding, w + 2 * padding
        padded = arena.get(key + ("pad",), (n, c, ph, pw), x.dtype,
                           zero=True)
        padded[:, :, padding:padding + h, padding:padding + w] = x
        x, h, w = padded, ph, pw
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    o = w_flat.shape[0]
    m = n * out_h * out_w
    dtype = np.result_type(x.dtype, w_flat.dtype)
    cols = arena.get(key + ("cols",), (c * kh * kw, m), x.dtype)
    _im2col(x, kh, kw, stride, out=cols)
    out_flat = arena.get(key + ("gemm",), (o, m), dtype)
    np.matmul(w_flat, cols, out=out_flat)
    if bias_col is not None:
        out_flat += bias_col
    if relu:
        np.maximum(out_flat, 0.0, out=out_flat)
    if sigmoid:
        _sigmoid_inplace(out_flat)
    if f16:
        _round_f16_inplace(out_flat, arena, key)
    out = arena.get(key + ("out",), (n, o, out_h, out_w), dtype)
    np.copyto(
        out, out_flat.reshape(o, n, out_h, out_w).transpose(1, 0, 2, 3)
    )
    return out


def _fold_conv(
    conv: Conv2d, bn: Optional[BatchNorm2d]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pre-flattened GEMM weight and bias column, with BN folded in."""
    w = conv.weight.data
    o = w.shape[0]
    b = (
        conv.bias.data
        if conv.bias is not None
        else np.zeros(o, dtype=w.dtype)
    )
    if bn is not None:
        scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
        w = w * scale[:, None, None, None]
        b = (b - bn.running_mean) * scale + bn.beta.data
    w_flat = np.ascontiguousarray(w.reshape(o, -1))
    return w_flat, np.ascontiguousarray(b.reshape(o, 1))


class ConvOp(PlanOp):
    """Conv2d with pre-flattened weights, folded BN, fused activation."""

    name = "conv2d"
    export_attrs = ("kh", "kw", "stride", "padding", "relu")
    export_arrays = ("w_flat", "bias_col")

    def __init__(
        self,
        op_id: int,
        src: int,
        dst: int,
        conv: Conv2d,
        bn: Optional[BatchNorm2d] = None,
        relu: bool = False,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.conv = conv
        self.bn = bn
        self.relu = relu
        self.kh, self.kw = conv.weight.data.shape[2:]
        self.stride = conv.stride
        self.padding = conv.padding
        self.refold()

    def refold(self) -> None:
        if self._detached:
            return
        self.w_flat, self.bias_col = _fold_conv(self.conv, self.bn)
        self._modes = {}

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.conv = None
        self.bn = None

    def _weights(self, precision: str) -> np.ndarray:
        if precision == "float32":
            return self.w_flat
        cached = self._modes.get(precision)
        if cached is None:
            if precision == "float16":
                cached = _quantize_weight_f16(self.w_flat)
            else:
                cached = _quantize_weight_int8(self.w_flat, channel_axis=0)
            self._modes[precision] = cached
        return cached

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        key = (self.op_id,)
        if ctx.precision == "int8":
            x = _fake_quant_input(x, self.src, ctx, key)
        regs[self.dst] = _conv_gemm(
            x, self._weights(ctx.precision), self.bias_col, self.kh,
            self.kw, self.stride, self.padding, ctx.arena, key,
            relu=self.relu, f16=ctx.precision == "float16",
        )


class UpsampleZerosOp(PlanOp):
    """Zero-stuffing upsample (the expand half of ConvTranspose2d)."""

    name = "upsample_zeros"
    export_attrs = ("stride",)

    def __init__(self, op_id: int, src: int, dst: int, stride: int) -> None:
        super().__init__(op_id, src, dst)
        self.stride = stride

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        n, c, h, w = x.shape
        s = self.stride
        out = ctx.arena.get(
            (self.op_id, "out"), (n, c, h * s, w * s), x.dtype, zero=True
        )
        out[:, :, ::s, ::s] = x
        regs[self.dst] = out


class BatchNormOp(PlanOp):
    """Standalone eval-mode BatchNorm2d (only when no conv precedes it)."""

    name = "batch_norm2d"
    export_attrs = ("relu",)
    export_arrays = ("scale", "shift")

    def __init__(
        self, op_id: int, src: int, dst: int, bn: BatchNorm2d,
        relu: bool = False,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.bn = bn
        self.relu = relu
        self.refold()

    def refold(self) -> None:
        if self._detached:
            return
        bn = self.bn
        inv_std = 1.0 / np.sqrt(bn.running_var + bn.eps)
        self.scale = (bn.gamma.data * inv_std).reshape(1, -1, 1, 1)
        self.shift = (
            bn.beta.data - bn.running_mean * bn.gamma.data * inv_std
        ).reshape(1, -1, 1, 1)

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.bn = None

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        dtype = np.result_type(x.dtype, self.scale.dtype)
        out = ctx.arena.get((self.op_id, "out"), x.shape, dtype)
        np.multiply(x, self.scale, out=out)
        out += self.shift
        if self.relu:
            np.maximum(out, 0.0, out=out)
        regs[self.dst] = out


class ActivationOp(PlanOp):
    """Standalone relu / sigmoid / tanh when fusion was not possible."""

    name = "activation"
    export_attrs = ("kind",)

    def __init__(self, op_id: int, src: int, dst: int, kind: str) -> None:
        super().__init__(op_id, src, dst)
        self.kind = kind

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        out = ctx.arena.get((self.op_id, "out"), x.shape, x.dtype)
        if self.kind == "relu":
            np.maximum(x, 0.0, out=out)
        elif self.kind == "sigmoid":
            np.copyto(out, x)
            _sigmoid_inplace(out)
        else:  # tanh
            np.tanh(x, out=out)
        regs[self.dst] = out


class AddReluOp(PlanOp):
    """``relu(a + b)`` -- the residual merge of the hourglass blocks."""

    name = "add_relu"
    export_attrs = ("other",)

    def __init__(self, op_id: int, src: int, other: int, dst: int) -> None:
        super().__init__(op_id, src, dst)
        self.other = other

    def reads(self) -> Tuple[int, ...]:
        return (self.src, self.other)

    def run(self, regs: List, ctx: ExecContext) -> None:
        a, b = regs[self.src], regs[self.other]
        out = ctx.arena.get(
            (self.op_id, "out"), a.shape, np.result_type(a.dtype, b.dtype)
        )
        np.add(a, b, out=out)
        np.maximum(out, 0.0, out=out)
        regs[self.dst] = out


class LinearOp(PlanOp):
    """GEMM with pre-transposed weight and fused activation epilogue."""

    name = "linear"
    export_attrs = ("relu",)
    export_arrays = ("w_t", "bias")

    def __init__(
        self, op_id: int, src: int, dst: int, linear: Linear,
        relu: bool = False,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.linear = linear
        self.relu = relu
        self.refold()

    def refold(self) -> None:
        if self._detached:
            return
        self.w_t = np.ascontiguousarray(self.linear.weight.data.T)
        self.bias = (
            self.linear.bias.data if self.linear.bias is not None else None
        )
        self._modes = {}

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.linear = None

    def _weights(self, precision: str) -> np.ndarray:
        if precision == "float32":
            return self.w_t
        cached = self._modes.get(precision)
        if cached is None:
            if precision == "float16":
                cached = _quantize_weight_f16(self.w_t)
            else:
                # w_t is (in, out): columns are output channels.
                cached = _quantize_weight_int8(self.w_t, channel_axis=1)
            self._modes[precision] = cached
        return cached

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        key = (self.op_id,)
        if ctx.precision == "int8":
            x = _fake_quant_input(x, self.src, ctx, key)
        w_t = self._weights(ctx.precision)
        dtype = np.result_type(x.dtype, w_t.dtype)
        out = ctx.arena.get(
            key + ("out",), (x.shape[0], w_t.shape[1]), dtype
        )
        np.matmul(x, w_t, out=out)
        if self.bias is not None:
            out += self.bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        if ctx.precision == "float16":
            _round_f16_inplace(out, ctx.arena, key)
        regs[self.dst] = out


class ReshapeOp(PlanOp):
    """View reshape; ``shape_fn`` maps the input shape to the new one.

    ``spec`` is the declarative form (e.g. ``("merge01",)``) used when
    the plan is exported; detached restores rebuild ``shape_fn`` from it.
    """

    name = "reshape"
    export_attrs = ("spec",)

    def __init__(
        self, op_id: int, src: int, dst: int,
        shape_fn: Callable[[Tuple[int, ...]], Tuple[int, ...]],
        spec: Optional[Tuple] = None,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.shape_fn = shape_fn
        self.spec = tuple(spec) if spec is not None else None

    def _check_exportable(self) -> None:
        if self.spec is None:
            raise SerializationError(
                f"reshape op {self.op_id} has no declarative spec and "
                "cannot be exported"
            )

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.spec = tuple(self.spec)
        self.shape_fn = _reshape_fn_from_spec(self.spec)

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        regs[self.dst] = x.reshape(self.shape_fn(x.shape))


class CheckShapeOp(PlanOp):
    """Input validation matching the eager module's error messages.

    ``spec`` is the declarative constraint set (``ndim`` / ``eq`` /
    ``div``) exported with the plan; restored plans validate with a
    generic message rebuilt from it.
    """

    name = "check_shape"
    export_attrs = ("spec",)

    def __init__(
        self, op_id: int, src: int,
        check_fn: Callable[[Tuple[int, ...]], None],
        spec: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(op_id, src, src)
        self.check_fn = check_fn
        self.spec = spec

    def _check_exportable(self) -> None:
        if self.spec is None:
            raise SerializationError(
                f"check_shape op {self.op_id} has no declarative spec "
                "and cannot be exported"
            )

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.check_fn = _check_fn_from_spec(self.spec)

    def run(self, regs: List, ctx: ExecContext) -> None:
        self.check_fn(regs[self.src].shape)


class FrameAttentionOp(PlanOp):
    """Eq. 2-3: per-frame weights from TGAP+TGMP through two tiny convs.

    Always runs float32: the sigmoid gate amplifies quantization error
    multiplicatively across the whole segment.
    """

    name = "frame_attention"
    export_arrays = ("w1", "b1", "w2", "b2")

    def __init__(
        self, op_id: int, src: int, dst: int, module: FrameAttention
    ) -> None:
        super().__init__(op_id, src, dst)
        self.module = module
        self.refold()

    def refold(self) -> None:
        if self._detached:
            return
        self.w1, self.b1 = _fold_conv(self.module.conv1, None)
        self.w2, self.b2 = _fold_conv(self.module.conv2, None)

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.module = None

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        b, st = x.shape[:2]
        pooled = x.mean(axis=(2, 3, 4)) + x.max(axis=(2, 3, 4))  # (B, st)
        seq = pooled.reshape(b, 1, 1, st)
        hidden = _conv_gemm(
            seq, self.w1, self.b1, 3, 3, 1, 1, ctx.arena,
            (self.op_id, "c1"), relu=True,
        )
        weights = _conv_gemm(
            hidden, self.w2, self.b2, 3, 3, 1, 1, ctx.arena,
            (self.op_id, "c2"), sigmoid=True,
        )
        out = ctx.arena.get((self.op_id, "out"), x.shape, x.dtype)
        np.multiply(x, weights.reshape(b, st, 1, 1, 1), out=out)
        regs[self.dst] = out


class VelocityChannelAttentionOp(PlanOp):
    """Eq. 4-5: per-channel weights from GAP||GMP through one FC.

    Always runs float32 (see :class:`FrameAttentionOp`).
    """

    name = "velocity_channel_attention"
    export_arrays = ("w_t", "bias")

    def __init__(
        self, op_id: int, src: int, dst: int,
        module: VelocityChannelAttention,
    ) -> None:
        super().__init__(op_id, src, dst)
        self.module = module
        self.refold()

    def refold(self) -> None:
        if self._detached:
            return
        self.w_t = np.ascontiguousarray(self.module.fc.weight.data.T)
        self.bias = self.module.fc.bias.data

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.module = None

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        n, c = x.shape[:2]
        dtype = np.result_type(x.dtype, self.w_t.dtype)
        features = ctx.arena.get((self.op_id, "feat"), (n, 2 * c), x.dtype)
        np.mean(x, axis=(2, 3), out=features[:, :c])
        np.max(x, axis=(2, 3), out=features[:, c:])
        weights = ctx.arena.get(
            (self.op_id, "w"), (n, self.w_t.shape[1]), dtype
        )
        np.matmul(features, self.w_t, out=weights)
        weights += self.bias
        _sigmoid_inplace(weights)
        out = ctx.arena.get((self.op_id, "out"), x.shape, dtype)
        np.multiply(x, weights.reshape(n, c, 1, 1), out=out)
        regs[self.dst] = out


class SpatialAttentionOp(PlanOp):
    """Eq. 6-7: range-angle weights from channel mean/max maps.

    Always runs float32 (see :class:`FrameAttentionOp`).
    """

    name = "spatial_attention"
    export_attrs = ("kernel", "padding")
    export_arrays = ("w_flat", "bias_col")

    def __init__(
        self, op_id: int, src: int, dst: int, module: SpatialAttention
    ) -> None:
        super().__init__(op_id, src, dst)
        self.module = module
        self.refold()

    def refold(self) -> None:
        if self._detached:
            return
        self.w_flat, self.bias_col = _fold_conv(self.module.conv, None)
        k = self.module.conv.weight.data.shape[2]
        self.kernel = k
        self.padding = self.module.conv.padding

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.module = None

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        n, _, d, a = x.shape
        maps = ctx.arena.get((self.op_id, "maps"), (n, 2, d, a), x.dtype)
        np.mean(x, axis=1, out=maps[:, 0])
        np.max(x, axis=1, out=maps[:, 1])
        weights = _conv_gemm(
            maps, self.w_flat, self.bias_col, self.kernel, self.kernel,
            1, self.padding, ctx.arena, (self.op_id, "conv"), sigmoid=True,
        )
        out = ctx.arena.get(
            (self.op_id, "out"), x.shape,
            np.result_type(x.dtype, weights.dtype),
        )
        np.multiply(x, weights, out=out)
        regs[self.dst] = out


class LSTMOp(PlanOp):
    """Single-layer LSTM returning the final hidden state ``(B, H)``.

    The input projection for *all* timesteps runs as one GEMM up front
    (``(B*T, in) @ (in, 4H)``); the recurrence then only pays the small
    ``(B, H) @ (H, 4H)`` GEMM and in-place gate math per step. Quantized
    modes apply to the big input projection only -- the recurrence stays
    float32 so gate errors do not compound across timesteps.
    """

    name = "lstm"
    export_attrs = ("hidden_size",)
    export_arrays = ("w_ih_t", "w_hh_t", "bias")

    def __init__(
        self, op_id: int, src: int, dst: int, lstm: LSTM
    ) -> None:
        super().__init__(op_id, src, dst)
        self.lstm = lstm
        self.hidden_size = lstm.hidden_size
        self.refold()

    def refold(self) -> None:
        if self._detached:
            return
        self.w_ih_t = np.ascontiguousarray(self.lstm.w_ih.data.T)
        self.w_hh_t = np.ascontiguousarray(self.lstm.w_hh.data.T)
        self.bias = self.lstm.bias.data
        self._modes = {}

    def _finish_restore(self, meta: Dict[str, Any]) -> None:
        self.lstm = None
        self.hidden_size = int(self.hidden_size)

    def _input_weights(self, precision: str) -> np.ndarray:
        if precision == "float32":
            return self.w_ih_t
        cached = self._modes.get(precision)
        if cached is None:
            if precision == "float16":
                cached = _quantize_weight_f16(self.w_ih_t)
            else:
                cached = _quantize_weight_int8(self.w_ih_t, channel_axis=1)
            self._modes[precision] = cached
        return cached

    def run(self, regs: List, ctx: ExecContext) -> None:
        x = regs[self.src]
        key = (self.op_id,)
        if ctx.precision == "int8":
            x = _fake_quant_input(x, self.src, ctx, key)
        b, steps, _ = x.shape
        h_dim = self.hidden_size
        gates_dim = 4 * h_dim
        w_ih_t = self._input_weights(ctx.precision)
        dtype = np.result_type(x.dtype, w_ih_t.dtype)
        arena = ctx.arena
        xw = arena.get(key + ("xw",), (b * steps, gates_dim), dtype)
        np.matmul(x.reshape(b * steps, -1), w_ih_t, out=xw)
        xw3 = xw.reshape(b, steps, gates_dim)
        h = arena.get(key + ("h",), (b, h_dim), dtype)
        c = arena.get(key + ("c",), (b, h_dim), dtype)
        h.fill(0.0)
        c.fill(0.0)
        gates = arena.get(key + ("gates",), (b, gates_dim), dtype)
        tmp = arena.get(key + ("tmp",), (b, h_dim), dtype)
        for t in range(steps):
            np.matmul(h, self.w_hh_t, out=gates)
            gates += xw3[:, t]
            gates += self.bias
            i_gate = _sigmoid_inplace(gates[:, 0:h_dim])
            f_gate = _sigmoid_inplace(gates[:, h_dim:2 * h_dim])
            g_gate = np.tanh(
                gates[:, 2 * h_dim:3 * h_dim],
                out=gates[:, 2 * h_dim:3 * h_dim],
            )
            o_gate = _sigmoid_inplace(gates[:, 3 * h_dim:4 * h_dim])
            np.multiply(f_gate, c, out=c)
            np.multiply(i_gate, g_gate, out=tmp)
            c += tmp
            np.tanh(c, out=tmp)
            np.multiply(o_gate, tmp, out=h)
        if ctx.precision == "float16":
            _round_f16_inplace(h, arena, key + ("h",))
        regs[self.dst] = h


OP_TYPES: Dict[str, type] = {
    cls.name: cls
    for cls in (
        ConvOp,
        UpsampleZerosOp,
        BatchNormOp,
        ActivationOp,
        AddReluOp,
        LinearOp,
        ReshapeOp,
        CheckShapeOp,
        FrameAttentionOp,
        VelocityChannelAttentionOp,
        SpatialAttentionOp,
        LSTMOp,
    )
}
"""Registry used by :mod:`repro.nn.serialization` to restore plan ops."""


# ----------------------------------------------------------------------
# Static memory planning
# ----------------------------------------------------------------------
class _BufRecord:
    """One scratch request observed during a probe execution."""

    __slots__ = ("key", "shape", "dtype", "zero", "start", "end",
                 "nbytes", "array")

    def __init__(self, key, shape, dtype, zero, start, array) -> None:
        self.key = key
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.zero = zero
        self.start = start
        self.end = start
        self.nbytes = array.nbytes
        self.array = array


class _RecordingArena:
    """Arena stand-in that logs every request during the probe run."""

    def __init__(self) -> None:
        self.records: List[_BufRecord] = []
        self.op_index = 0

    def get(
        self, key: Tuple, shape: Tuple[int, ...], dtype,
        zero: bool = False,
    ) -> np.ndarray:
        arr = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        self.records.append(
            _BufRecord(key, shape, dtype, zero, self.op_index, arr)
        )
        return arr


def _root_base(arr: np.ndarray) -> np.ndarray:
    """Walk the view chain back to the owning allocation."""
    while isinstance(arr.base, np.ndarray):
        arr = arr.base
    return arr


class MemoryPlan:
    """Static buffer assignment for one ``(shape, dtype, precision)``.

    ``slot_sizes`` are the byte sizes of the shared slabs;
    ``assignments`` maps each arena key to ``(slot, shape, dtype,
    zero)``. ``arena_bytes`` is what the one-buffer-per-request
    :class:`BufferArena` would have allocated for the same run, so
    ``planned_bytes / arena_bytes`` is the packing ratio.
    """

    def __init__(
        self,
        signature: Tuple,
        slot_sizes: List[int],
        assignments: Dict[Tuple, Tuple[int, Tuple[int, ...], str, bool]],
        arena_bytes: int,
    ) -> None:
        self.signature = signature
        self.slot_sizes = slot_sizes
        self.assignments = assignments
        self.arena_bytes = arena_bytes

    @property
    def planned_bytes(self) -> int:
        return sum(self.slot_sizes)

    def to_meta(self) -> Dict[str, Any]:
        """JSON-able form for the on-disk plan artifact."""
        return {
            "signature": [
                list(self.signature[0]), self.signature[1],
                self.signature[2],
            ],
            "slot_sizes": list(self.slot_sizes),
            "arena_bytes": int(self.arena_bytes),
            "assignments": [
                {
                    "key": list(key),
                    "slot": slot,
                    "shape": list(shape),
                    "dtype": dtype,
                    "zero": zero,
                }
                for key, (slot, shape, dtype, zero)
                in self.assignments.items()
            ],
        }

    @classmethod
    def from_meta(cls, meta: Dict[str, Any]) -> "MemoryPlan":
        sig = meta["signature"]
        assignments = {
            tuple(entry["key"]): (
                int(entry["slot"]),
                tuple(entry["shape"]),
                entry["dtype"],
                bool(entry["zero"]),
            )
            for entry in meta["assignments"]
        }
        return cls(
            (tuple(sig[0]), sig[1], sig[2]),
            [int(s) for s in meta["slot_sizes"]],
            assignments,
            int(meta["arena_bytes"]),
        )


def _color_buffers(
    records: List[_BufRecord], signature: Tuple
) -> MemoryPlan:
    """Greedy interval-graph coloring of buffer lifetimes into slabs.

    Buffers are processed in interval-start order (largest first on
    ties); each takes the tightest-fitting free slab, or grows the
    largest free one, or opens a new slab. A slab freed by a buffer last
    used at op ``end`` becomes reusable at op ``end + 1``, so a buffer
    read at op ``j`` never shares with one written at op ``j``.
    """
    slots: List[List[int]] = []  # [size, free_at]
    assignments: Dict[Tuple, Tuple[int, Tuple[int, ...], str, bool]] = {}
    for rec in sorted(records, key=lambda r: (r.start, -r.nbytes)):
        candidates = [
            (size, idx) for idx, (size, free_at) in enumerate(slots)
            if free_at <= rec.start
        ]
        fits = [c for c in candidates if c[0] >= rec.nbytes]
        if fits:
            idx = min(fits)[1]
        elif candidates:
            idx = max(candidates)[1]
        else:
            slots.append([0, 0])
            idx = len(slots) - 1
        slots[idx][0] = max(slots[idx][0], rec.nbytes)
        slots[idx][1] = rec.end + 1
        assignments[rec.key] = (
            idx, rec.shape, str(rec.dtype), rec.zero
        )
    return MemoryPlan(
        signature,
        [size for size, _ in slots],
        assignments,
        arena_bytes=sum(r.nbytes for r in records),
    )


class PlannedArena:
    """Executes a :class:`MemoryPlan`: pre-built views over shared slabs.

    ``zero=True`` buffers are re-zeroed on *every* acquisition -- unlike
    :class:`BufferArena` the underlying slab is shared, so zeros from a
    previous op do not persist. Requests the plan has never seen (shape
    drift, new op) fall back to a private :class:`BufferArena` instead
    of corrupting a slab.
    """

    def __init__(self, plan: MemoryPlan) -> None:
        self.plan = plan
        self._slabs = [
            np.empty(size, dtype=np.uint8) for size in plan.slot_sizes
        ]
        self._views: Dict[Tuple, Tuple[np.ndarray, bool]] = {}
        for key, (slot, shape, dtype, zero) in plan.assignments.items():
            view = np.ndarray(shape, dtype=dtype,
                              buffer=self._slabs[slot])
            self._views[key] = (view, zero)
        self._overflow: Optional[BufferArena] = None

    def get(
        self, key: Tuple, shape: Tuple[int, ...], dtype,
        zero: bool = False,
    ) -> np.ndarray:
        entry = self._views.get(key)
        if entry is not None:
            view, planned_zero = entry
            if view.shape == tuple(shape) and view.dtype == dtype:
                if zero:
                    view.fill(0)
                return view
        if self._overflow is None:
            self._overflow = BufferArena()
        return self._overflow.get(key, shape, dtype, zero)

    @property
    def nbytes(self) -> int:
        total = sum(slab.nbytes for slab in self._slabs)
        if self._overflow is not None:
            total += self._overflow.nbytes
        return total


# ----------------------------------------------------------------------
# Plan builder / compiler
# ----------------------------------------------------------------------
class PlanBuilder:
    """Accumulates the flat op list while the module tree is walked.

    Composite modules call back into the builder from their
    ``compile_plan(builder, reg)`` hooks; the emit helpers return the
    output register index of the op they appended.
    """

    def __init__(self) -> None:
        self.ops: List[PlanOp] = []
        self.num_regs = 1  # register 0 is the plan input

    def _new_reg(self) -> int:
        reg = self.num_regs
        self.num_regs += 1
        return reg

    def _emit(self, make_op) -> int:
        dst = self._new_reg()
        self.ops.append(make_op(len(self.ops), dst))
        return dst

    # -- emit helpers ---------------------------------------------------
    def conv(
        self, reg: int, conv: Conv2d, bn: Optional[BatchNorm2d] = None,
        relu: bool = False,
    ) -> int:
        return self._emit(lambda i, d: ConvOp(i, reg, d, conv, bn, relu))

    def upsample_zeros(self, reg: int, stride: int) -> int:
        if stride == 1:
            return reg
        return self._emit(lambda i, d: UpsampleZerosOp(i, reg, d, stride))

    def batch_norm(
        self, reg: int, bn: BatchNorm2d, relu: bool = False
    ) -> int:
        return self._emit(lambda i, d: BatchNormOp(i, reg, d, bn, relu))

    def activation(self, reg: int, kind: str) -> int:
        return self._emit(lambda i, d: ActivationOp(i, reg, d, kind))

    def add_relu(self, reg: int, other: int) -> int:
        return self._emit(lambda i, d: AddReluOp(i, reg, other, d))

    def linear(self, reg: int, linear: Linear, relu: bool = False) -> int:
        return self._emit(lambda i, d: LinearOp(i, reg, d, linear, relu))

    def reshape(self, reg: int, shape_fn, spec=None) -> int:
        return self._emit(
            lambda i, d: ReshapeOp(i, reg, d, shape_fn, spec=spec)
        )

    def check_shape(self, reg: int, check_fn, spec=None) -> int:
        self.ops.append(
            CheckShapeOp(len(self.ops), reg, check_fn, spec=spec)
        )
        return reg

    def lstm(self, reg: int, lstm: LSTM) -> int:
        return self._emit(lambda i, d: LSTMOp(i, reg, d, lstm))

    # -- module walk ----------------------------------------------------
    def module(self, reg: int, module: Module) -> int:
        """Compile one module (dispatch by type / ``compile_plan`` hook)."""
        hook = getattr(module, "compile_plan", None)
        if hook is not None:
            return hook(self, reg)
        if isinstance(module, Sequential):
            return self.sequential(reg, module)
        if isinstance(module, Conv2d):
            return self.conv(reg, module)
        if isinstance(module, ConvTranspose2d):
            return self.conv(
                self.upsample_zeros(reg, module.stride), module.conv
            )
        if isinstance(module, BatchNorm2d):
            return self.batch_norm(reg, module)
        if isinstance(module, Linear):
            return self.linear(reg, module)
        if isinstance(module, ReLU):
            return self.activation(reg, "relu")
        if isinstance(module, Sigmoid):
            return self.activation(reg, "sigmoid")
        if isinstance(module, Tanh):
            return self.activation(reg, "tanh")
        if isinstance(module, Dropout):
            return reg  # identity in eval mode
        if isinstance(module, FrameAttention):
            return self._emit(
                lambda i, d: FrameAttentionOp(i, reg, d, module)
            )
        if isinstance(module, VelocityChannelAttention):
            return self._emit(
                lambda i, d: VelocityChannelAttentionOp(i, reg, d, module)
            )
        if isinstance(module, SpatialAttention):
            return self._emit(
                lambda i, d: SpatialAttentionOp(i, reg, d, module)
            )
        raise InferenceCompileError(
            f"cannot compile module of type {type(module).__name__}; "
            "define compile_plan(builder, reg) on it or run eagerly"
        )

    def sequential(self, reg: int, seq: Sequential) -> int:
        """Compile a Sequential, fusing Conv->BN->ReLU / Linear->ReLU."""
        layers = list(seq.layers)
        i = 0
        while i < len(layers):
            layer = layers[i]
            if isinstance(layer, (Conv2d, ConvTranspose2d)):
                bn = None
                j = i + 1
                if j < len(layers) and isinstance(layers[j], BatchNorm2d):
                    bn = layers[j]
                    j += 1
                relu = j < len(layers) and isinstance(layers[j], ReLU)
                if relu:
                    j += 1
                if isinstance(layer, ConvTranspose2d):
                    reg = self.upsample_zeros(reg, layer.stride)
                    conv = layer.conv
                else:
                    conv = layer
                reg = self.conv(reg, conv, bn=bn, relu=relu)
                i = j
            elif isinstance(layer, Linear):
                relu = i + 1 < len(layers) and isinstance(
                    layers[i + 1], ReLU
                )
                reg = self.linear(reg, layer, relu=relu)
                i += 2 if relu else 1
            elif isinstance(layer, BatchNorm2d):
                relu = i + 1 < len(layers) and isinstance(
                    layers[i + 1], ReLU
                )
                reg = self.batch_norm(reg, layer, relu=relu)
                i += 2 if relu else 1
            else:
                reg = self.module(reg, layer)
                i += 1
        return reg


class ForwardPlan:
    """The flat op list plus its register-file size and output slot."""

    def __init__(
        self, ops: List[PlanOp], num_regs: int, out_reg: int
    ) -> None:
        self.ops = ops
        self.num_regs = num_regs
        self.out_reg = out_reg

    def execute(
        self, x: np.ndarray, ctx,
        profile: Optional[Dict[int, float]] = None,
    ) -> np.ndarray:
        """Run the op list; ``ctx`` is an :class:`ExecContext` (a bare
        arena is accepted for backward compatibility). With ``profile``
        given, per-op wall time accumulates into it keyed by op id."""
        if not isinstance(ctx, ExecContext):
            ctx = ExecContext(ctx)
        regs: List[Optional[np.ndarray]] = [None] * self.num_regs
        regs[0] = x
        if profile is None:
            for op in self.ops:
                op.run(regs, ctx)
        else:
            for op in self.ops:
                tic = time.perf_counter()
                op.run(regs, ctx)
                profile[op.op_id] = (
                    profile.get(op.op_id, 0.0)
                    + time.perf_counter() - tic
                )
        return regs[self.out_reg]

    def refold(self) -> None:
        for op in self.ops:
            op.refold()

    # -- calibration ----------------------------------------------------
    def record_ranges(
        self, x: np.ndarray, arena: BufferArena,
        ranges: Dict[int, float],
    ) -> np.ndarray:
        """Float32 execution that records per-register |activation| max.

        The ranges feed the int8 per-tensor activation fake-quant; they
        are recorded immediately after each op so arena reuse cannot
        clobber the observed values.
        """
        regs: List[Optional[np.ndarray]] = [None] * self.num_regs
        regs[0] = x
        ctx = ExecContext(arena)
        self._observe(ranges, 0, x)
        for op in self.ops:
            op.run(regs, ctx)
            val = regs[op.dst]
            if isinstance(val, np.ndarray) and val.size:
                self._observe(ranges, op.dst, val)
        return regs[self.out_reg]

    @staticmethod
    def _observe(ranges: Dict[int, float], reg: int, val) -> None:
        amax = float(np.max(np.abs(val)))
        if np.isfinite(amax) and amax > ranges.get(reg, 0.0):
            ranges[reg] = amax

    # -- static memory planning -----------------------------------------
    def plan_memory(
        self,
        x: np.ndarray,
        precision: str = "float32",
        scales: Optional[Dict[int, float]] = None,
    ) -> Tuple[MemoryPlan, np.ndarray]:
        """Probe-execute once, recording scratch lifetimes, and color.

        A buffer's interval starts at the op that requested it. Scratch
        dies with its op; buffers that back a register value (found by
        walking each register's view chain) live until the last op that
        reads any aliasing register -- the plan output lives past the
        final op. Returns the memory plan and the probe's output (so
        the first call per signature does not execute twice).
        """
        probe = _RecordingArena()
        ctx = ExecContext(probe, precision, scales)
        regs: List[Optional[np.ndarray]] = [None] * self.num_regs
        regs[0] = x
        last_use: Dict[int, int] = {}
        for i, op in enumerate(self.ops):
            for r in op.reads():
                last_use[r] = i
        last_use[self.out_reg] = len(self.ops)
        for i, op in enumerate(self.ops):
            probe.op_index = i
            op.run(regs, ctx)
        by_id = {id(rec.array): rec for rec in probe.records}
        for reg, val in enumerate(regs):
            if not isinstance(val, np.ndarray):
                continue
            rec = by_id.get(id(_root_base(val)))
            if rec is not None:
                rec.end = max(rec.end, last_use.get(reg, rec.end))
        signature = (tuple(x.shape), str(x.dtype), precision)
        plan = _color_buffers(probe.records, signature)
        return plan, regs[self.out_reg]


class CompiledModel:
    """A module compiled to a :class:`ForwardPlan`, ready to serve.

    ``run`` takes and returns plain ndarrays. The folded weights are
    revalidated against the source parameters' version counters on
    every call; a bumped version (optimizer step, ``load_state_dict``)
    triggers a cheap refold -- which also drops cached float16/int8
    weight variants -- so training and serving coexist on one module.

    Execution uses a static memory plan per ``(input shape, dtype,
    precision)`` signature: the first call probe-executes and colors
    buffer lifetimes into a few shared slabs; steady-state calls run
    allocation-free through a :class:`PlannedArena`. With ``shards > 1``
    the batch is split across a persistent thread pool, one planned
    arena per shard -- eval-mode rows are independent, so the fused
    output is unchanged.

    A model restored from an on-disk artifact
    (:func:`repro.nn.serialization.load_plan`) has ``module=None`` and
    no live parameters: it never refolds and is safe to run as-is.
    """

    _MAX_MEMORY_PLANS = 16
    _MAX_PLANNED_ARENAS = 32

    def __init__(self, module: Optional[Module], plan: ForwardPlan) -> None:
        self.module = module
        self.plan = plan
        self._params = (
            [p for _, p in module.named_parameters()]
            if module is not None else []
        )
        self._version = self._param_version()
        self._arena = BufferArena()  # legacy path (use_memory_plan=False)
        self._shard_arenas: List[BufferArena] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self.use_memory_plan = True
        self.act_ranges: Dict[int, float] = {}
        self._memory_plans: Dict[Tuple, MemoryPlan] = {}
        self._planned_arenas: Dict[Tuple, PlannedArena] = {}
        _LIVE_MODELS.add(self)

    @classmethod
    def from_plan(cls, plan: ForwardPlan) -> "CompiledModel":
        """A detached model around a restored plan (no source module)."""
        return cls(None, plan)

    def _param_version(self) -> int:
        return sum(getattr(p, "_version", 0) for p in self._params)

    def _refresh(self) -> None:
        version = self._param_version()
        if version == self._version:
            return
        with self._lock:
            if version != self._version:
                self.plan.refold()
                self._version = version
                obs_metrics.counter("model.plan.refolds").increment()

    def _shard_slots(self, shards: int) -> ThreadPoolExecutor:
        with self._lock:
            if (
                self._executor is None
                or self._executor._max_workers < shards
            ):
                if self._executor is not None:
                    self._executor.shutdown(wait=False)
                self._executor = ThreadPoolExecutor(
                    max_workers=shards,
                    thread_name_prefix="repro-infer",
                )
            return self._executor

    def _legacy_arena(self, slot: int) -> BufferArena:
        if slot == 0:
            return self._arena
        with self._lock:
            while len(self._shard_arenas) < slot:
                self._shard_arenas.append(BufferArena())
            return self._shard_arenas[slot - 1]

    def _execute(
        self, x: np.ndarray, slot: int, precision: str
    ) -> np.ndarray:
        scales = self.act_ranges if precision == "int8" else None
        if not self.use_memory_plan:
            ctx = ExecContext(self._legacy_arena(slot), precision, scales)
            return self.plan.execute(x, ctx)
        sig = (tuple(x.shape), str(x.dtype), precision)
        mplan = self._memory_plans.get(sig)
        if mplan is None:
            mplan, out = self.plan.plan_memory(x, precision, scales)
            with self._lock:
                self._memory_plans.setdefault(sig, mplan)
                while len(self._memory_plans) > self._MAX_MEMORY_PLANS:
                    oldest = next(iter(self._memory_plans))
                    if oldest == sig:
                        break
                    del self._memory_plans[oldest]
            return out
        arena_key = (slot, sig)
        arena = self._planned_arenas.get(arena_key)
        if arena is None:
            arena = PlannedArena(mplan)
            with self._lock:
                self._planned_arenas[arena_key] = arena
                while (
                    len(self._planned_arenas) > self._MAX_PLANNED_ARENAS
                ):
                    oldest = next(iter(self._planned_arenas))
                    if oldest == arena_key:
                        break
                    del self._planned_arenas[oldest]
        return self.plan.execute(x, ExecContext(arena, precision, scales))

    def seed_memory_plan(self, mplan: MemoryPlan) -> None:
        """Install a memory plan restored from an artifact."""
        with self._lock:
            self._memory_plans.setdefault(mplan.signature, mplan)

    # ------------------------------------------------------------------
    def calibrate(self, batches) -> Dict[int, float]:
        """Record per-register activation ranges from ``batches``.

        ``batches`` is an iterable of input arrays (already normalized
        the way :meth:`run` inputs are). Ranges accumulate across calls,
        widening only. Returns the updated range table that int8
        execution will use for per-tensor activation fake-quant.
        """
        self._refresh()
        arena = BufferArena()
        ranges = dict(self.act_ranges)
        seen = 0
        for batch in batches:
            x = np.asarray(batch, dtype=np.float32)
            self.plan.record_ranges(x, arena, ranges)
            seen += 1
        if not seen:
            raise QuantizationError(
                "calibrate() needs at least one input batch"
            )
        self.act_ranges = ranges
        obs_metrics.counter("model.plan.calibrations").increment()
        return ranges

    def run(
        self,
        x: np.ndarray,
        shards: Optional[int] = None,
        precision: str = "float32",
    ) -> np.ndarray:
        """Execute the plan on ``x``; returns a fresh output array."""
        x = np.asarray(x)
        if precision not in PRECISIONS:
            raise InferenceCompileError(
                f"unknown precision {precision!r}; expected one of "
                f"{PRECISIONS}"
            )
        if precision == "int8" and not self.act_ranges:
            raise QuantizationError(
                "int8 execution requires activation ranges; run "
                "calibrate() on representative inputs first"
            )
        self._refresh()
        obs_metrics.counter("model.plan.executes").increment()
        if precision != "float32":
            obs_metrics.counter(
                "model.plan.quantized_executes"
            ).increment()
        with trace.span(
            "model.forward.compiled", batch=int(x.shape[0]),
            ops=len(self.plan.ops), shards=int(shards or 1),
            precision=precision,
        ):
            if not shards or shards <= 1 or x.shape[0] < 2 * shards:
                # The planned-arena buffers (including the output
                # register) are reused by the next call, so hand back
                # a copy.
                return self._execute(x, 0, precision).copy()
            executor = self._shard_slots(shards)
            chunks = np.array_split(x, shards)
            futures = [
                executor.submit(self._execute, chunk, i + 1, precision)
                for i, chunk in enumerate(chunks)
            ]
            # Concatenate copies the shard outputs out of their arenas.
            return np.concatenate([f.result() for f in futures], axis=0)

    __call__ = run

    def profile(
        self,
        x: np.ndarray,
        precision: str = "float32",
        repeats: int = 3,
    ) -> List[Dict[str, Any]]:
        """Per-op cumulative wall time over ``repeats`` executions.

        Returns rows sorted by total time descending:
        ``{"op_id", "op", "total_s", "share"}``.
        """
        x = np.asarray(x)
        self._refresh()
        scales = self.act_ranges if precision == "int8" else None
        arena = BufferArena()
        totals: Dict[int, float] = {}
        ctx = ExecContext(arena, precision, scales)
        for _ in range(max(1, repeats)):
            self.plan.execute(x, ctx, profile=totals)
        names = {op.op_id: op.name for op in self.plan.ops}
        grand_total = sum(totals.values()) or 1.0
        rows = [
            {
                "op_id": op_id,
                "op": names.get(op_id, "?"),
                "total_s": total,
                "share": total / grand_total,
            }
            for op_id, total in totals.items()
        ]
        rows.sort(key=lambda row: row["total_s"], reverse=True)
        return rows

    # ------------------------------------------------------------------
    def memory_stats(self) -> Dict[str, int]:
        """Arena-vs-planned byte footprint of the largest signature."""
        with self._lock:
            plans = list(self._memory_plans.values())
        if plans:
            biggest = max(plans, key=lambda p: p.arena_bytes)
            return {
                "arena_bytes": biggest.arena_bytes,
                "planned_bytes": biggest.planned_bytes,
                "planned_slots": len(biggest.slot_sizes),
                "buffers": len(biggest.assignments),
                "memory_plans": len(plans),
            }
        return {
            "arena_bytes": self._arena.nbytes,
            "planned_bytes": self._arena.nbytes,
            "planned_slots": 0,
            "buffers": len(self._arena),
            "memory_plans": 0,
        }

    def stats(self) -> Dict[str, Any]:
        """Plan shape and memory footprint for observability surfaces."""
        mem = self.memory_stats()
        return {
            "ops": len(self.plan.ops),
            "params": len(self._params),
            "param_version": self._version,
            "arena_buffers": mem["buffers"],
            "arena_bytes": mem["arena_bytes"],
            "planned_bytes": mem["planned_bytes"],
            "planned_slots": mem["planned_slots"],
            "memory_plans": mem["memory_plans"],
            "shard_arenas": len(self._shard_arenas),
            "calibrated": bool(self.act_ranges),
        }


_LIVE_MODELS: "weakref.WeakSet[CompiledModel]" = weakref.WeakSet()


def publish_plan_memory_metrics(registry) -> None:
    """Collector publishing plan memory gauges to ``registry``.

    Sums the arena-equivalent and planned byte footprints over every
    live :class:`CompiledModel` in the process, so Prometheus exposition
    shows plan memory alongside plan-cache stats. Designed for
    :meth:`repro.obs.metrics.MetricsRegistry.register_collector`.
    """
    arena_bytes = 0
    planned_bytes = 0
    for model in list(_LIVE_MODELS):
        mem = model.memory_stats()
        arena_bytes += mem["arena_bytes"]
        planned_bytes += mem["planned_bytes"]
    registry.gauge("model.plan.arena_bytes").set(arena_bytes)
    registry.gauge("model.plan.planned_bytes").set(planned_bytes)


# The global registry always sees plan memory; private registries (e.g.
# one per InferenceServer) opt in with the same collector.
obs_metrics.get_registry().register_collector(publish_plan_memory_metrics)


def compile_model(module: Module) -> CompiledModel:
    """Compile ``module`` into an autograd-free :class:`CompiledModel`.

    The plan always has eval semantics: batch norm uses running
    statistics and dropout is the identity, exactly like the eager
    forward after ``module.eval()``. Raises
    :class:`~repro.errors.InferenceCompileError` when the module tree
    contains something the compiler does not understand.
    """
    builder = PlanBuilder()
    try:
        out_reg = builder.module(0, module)
    except InferenceCompileError:
        raise
    except ModelError as exc:  # structural assumptions violated
        raise InferenceCompileError(str(exc)) from exc
    plan = ForwardPlan(builder.ops, builder.num_regs, out_reg)
    obs_metrics.counter("model.plan.compiles").increment()
    return CompiledModel(module, plan)
