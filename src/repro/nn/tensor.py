"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a numpy array and records the operations applied
to it; :meth:`Tensor.backward` walks the recorded graph in reverse
topological order accumulating gradients. The op set is exactly what the
mmHand network needs -- elementwise arithmetic with broadcasting, matmul,
reductions (sum/mean/max), shape ops (reshape/transpose/slice/concat),
and the nonlinearities (relu/sigmoid/tanh/exp/log).

Design notes
------------
* Gradients accumulate into ``.grad`` as plain numpy arrays.
* Broadcasting is undone in backward passes by summing over broadcast
  axes (:func:`_unbroadcast`).
* A module-level ``no_grad`` context manager disables graph recording
  for inference.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GradientError, ModelError

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling autograd recording (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def _recording() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(
        i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation."""

    __slots__ = (
        "data", "grad", "requires_grad", "_backward", "_parents",
        "_version",
    )

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, (np.ndarray, np.generic)):
            # Preserve float precision of numpy inputs (float64 graphs stay
            # float64, e.g. for gradient checking); cast ints/bools down.
            arr = np.asarray(data)
            if arr.dtype not in (np.float32, np.float64):
                arr = arr.astype(np.float32)
        else:
            arr = np.asarray(data, dtype=np.float32)
        self.data = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.data.shape}, "
            f"requires_grad={self.requires_grad})"
        )

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing this tensor's data."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    @property
    def version(self) -> int:
        """Mutation counter for in-place parameter updates.

        Optimizer steps and :meth:`Module.load_state_dict` call
        :meth:`bump_version` after rewriting ``.data``; compiled
        inference plans (:mod:`repro.nn.inference`) memoize folded
        weights against the sum of their source parameters' versions
        and refold when it changes. The slot is lazily initialised so
        the autograd hot path pays nothing for it.
        """
        return getattr(self, "_version", 0)

    def bump_version(self) -> int:
        """Record an in-place ``.data`` mutation; returns the new version."""
        version = getattr(self, "_version", 0) + 1
        self._version = version
        return version

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _recording() and any(p.requires_grad for p in parents)
        if requires:
            return Tensor(
                data, requires_grad=True, _parents=tuple(parents),
                _backward=backward,
            )
        return Tensor(data)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise GradientError(
                "backward() called on a tensor that does not require grad"
            )
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a "
                    "scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise GradientError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.data.shape}"
            )

        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(current)
                    stack.pop()

        visit(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad * other.data, self.data.shape)
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(grad * self.data, other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad / other.data, self.data.shape)
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.data.shape
                    )
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ModelError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1)
                )

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    ga = np.outer(grad, other.data) if grad.ndim == 1 else (
                        grad[..., None] * other.data
                    )
                else:
                    ga = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    gb = np.outer(self.data, grad) if grad.ndim == 1 else (
                        self.data[..., None] * grad
                    )
                else:
                    gb = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise ``max(x, minimum)`` (sub-gradient 0 below)."""
        mask = self.data > minimum
        out_data = np.where(mask, self.data, minimum)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(
                    g, axis if isinstance(axis, int) else tuple(axis)
                )
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, int):
            count = self.data.shape[axis]
        else:
            count = int(np.prod([self.data.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically by ``padding``."""
        if padding < 0:
            raise ModelError("padding must be non-negative")
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [
            (padding, padding),
            (padding, padding),
        ]
        out_data = np.pad(self.data, pad_width)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slices = tuple(
                    [slice(None)] * (self.data.ndim - 2)
                    + [slice(padding, -padding), slice(padding, -padding)]
                )
                self._accumulate(grad[slices])

        return Tensor._make(out_data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    if not tensors:
        raise ModelError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(lo), int(hi))
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    if not tensors:
        raise ModelError("stack requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, moved):
            if t.requires_grad:
                t._accumulate(g)

    return Tensor._make(out_data, tensors, backward)
