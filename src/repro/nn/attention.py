"""Attention blocks of mmSpaceNet (paper Sec. IV-A, Fig. 6).

Three mechanisms:

* :class:`FrameAttention` -- stage 1 of the two-stage channel attention:
  each frame of a segment is pooled over its whole 3-D volume (TGAP +
  TGMP) and a small conv block turns the pooled sequence into per-frame
  weights (Eq. 2-3).
* :class:`VelocityChannelAttention` -- stage 2: per velocity channel, GAP
  and GMP over the range-angle map are concatenated and a fully-connected
  layer encodes them into per-channel weights (Eq. 4-5).
* :class:`SpatialAttention` -- mean and max over the velocity/channel
  axis feed a conv producing a weight per range-angle position (Eq. 6-7).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear, Module
from repro.nn.tensor import Tensor, concat


class FrameAttention(Module):
    """Per-frame weights from 3-D global pooling (Eq. 2-3).

    Input ``(B, st, V, D, A)``; output the same shape with each frame
    scaled by its learned weight ``a_i = sigmoid(Conv1(TGAP + TGMP))``.
    The Conv1 block is two 1-D convolutions across the frame axis.
    """

    def __init__(
        self, segment_frames: int, hidden: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        # 1-D convs across frames implemented as 2-D convs on (1, st).
        self.conv1 = Conv2d(1, hidden, kernel_size=3, padding=1, rng=rng)
        self.conv2 = Conv2d(hidden, 1, kernel_size=3, padding=1, rng=rng)
        self.segment_frames = segment_frames

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 5:
            raise ModelError(
                f"FrameAttention expects (B, st, V, D, A), got {x.shape}"
            )
        b, st = x.shape[0], x.shape[1]
        pooled = x.mean(axis=(2, 3, 4)) + _max_over(x, (2, 3, 4))  # (B, st)
        seq = pooled.reshape(b, 1, 1, st)
        weights = self.conv2(self.conv1(seq).relu()).sigmoid()
        weights = weights.reshape(b, st, 1, 1, 1)
        return x * weights


class VelocityChannelAttention(Module):
    """Per-velocity-channel weights from GAP||GMP features (Eq. 4-5).

    Input ``(N, C, D, A)`` (``C`` is the velocity/channel axis); output
    the input scaled per channel by ``b = sigmoid(FC([GAP, GMP]))``.
    """

    def __init__(
        self, channels: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.channels = channels
        self.fc = Linear(2 * channels, channels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ModelError(
                f"VelocityChannelAttention expects (N, {self.channels}, D, "
                f"A), got {x.shape}"
            )
        n, c = x.shape[0], x.shape[1]
        gap = x.mean(axis=(2, 3))  # (N, C)
        gmp = _max_over(x, (2, 3)).reshape(n, c)
        features = concat([gap, gmp], axis=1)
        weights = self.fc(features).sigmoid().reshape(n, c, 1, 1)
        return x * weights


class SpatialAttention(Module):
    """Range-angle spatial weights from channel mean/max maps (Eq. 6-7)."""

    def __init__(
        self, kernel_size: int = 5, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        if kernel_size % 2 != 1:
            raise ModelError("spatial attention kernel must be odd")
        self.conv = Conv2d(
            2, 1, kernel_size=kernel_size, padding=kernel_size // 2, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ModelError(
                f"SpatialAttention expects (N, C, D, A), got {x.shape}"
            )
        mean_map = x.mean(axis=1, keepdims=True)
        max_map = x.max(axis=1, keepdims=True)
        weights = self.conv(concat([mean_map, max_map], axis=1)).sigmoid()
        return x * weights


def _max_over(x: Tensor, axes) -> Tensor:
    """Max over several axes keeping none (collapses them)."""
    out = x
    for axis in sorted(axes, reverse=True):
        out = out.max(axis=axis)
    return out
