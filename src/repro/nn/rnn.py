"""LSTM for the temporal feature model (paper Sec. IV-A).

A single-layer LSTM over the per-frame feature vectors mmSpaceNet
produces: consecutive radar frames are highly correlated, and the LSTM
extracts the temporal features that describe hand motion.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.init import xavier_uniform
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, stack


class LSTM(Module):
    """Single-layer LSTM, batch-first.

    Input ``(B, T, input_size)``; returns ``(outputs, (h, c))`` where
    ``outputs`` is ``(B, T, hidden_size)`` and ``h`` / ``c`` the final
    states ``(B, hidden_size)``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        gates = 4 * hidden_size
        self.w_ih = Tensor(
            xavier_uniform(rng, (gates, input_size), input_size, gates),
            requires_grad=True,
        )
        self.w_hh = Tensor(
            xavier_uniform(rng, (gates, hidden_size), hidden_size, gates),
            requires_grad=True,
        )
        bias = np.zeros(gates, dtype=np.float32)
        # Forget-gate bias starts at 1: standard trick for gradient flow.
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(
        self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ModelError(
                f"LSTM expects (B, T, {self.input_size}), got {x.shape}"
            )
        batch, steps, _ = x.shape
        h_dim = self.hidden_size
        if state is None:
            h = Tensor(np.zeros((batch, h_dim), dtype=np.float32))
            c = Tensor(np.zeros((batch, h_dim), dtype=np.float32))
        else:
            h, c = state
        outputs = []
        w_ih_t = self.w_ih.transpose()
        w_hh_t = self.w_hh.transpose()
        for t in range(steps):
            x_t = x[:, t, :]
            gates = x_t @ w_ih_t + h @ w_hh_t + self.bias
            i_gate = gates[:, 0:h_dim].sigmoid()
            f_gate = gates[:, h_dim : 2 * h_dim].sigmoid()
            g_gate = gates[:, 2 * h_dim : 3 * h_dim].tanh()
            o_gate = gates[:, 3 * h_dim : 4 * h_dim].sigmoid()
            c = f_gate * c + i_gate * g_gate
            h = o_gate * c.tanh()
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)
