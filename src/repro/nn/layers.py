"""Neural-network modules.

:class:`Module` provides parameter registration (attribute assignment of
tensors/submodules auto-registers them, like PyTorch), recursive
``parameters()`` / ``named_parameters()``, train/eval mode, and a
``state_dict`` for serialization. The concrete layers cover what mmHand
needs: linear, conv, transposed conv, batch/layer norm, dropout and the
simple activations.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn import functional as F
from repro.nn.init import kaiming_uniform
from repro.nn.tensor import Tensor


class Module:
    """Base class with parameter/submodule registration."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Tensor]:
        return [t for _, t in self.named_parameters()]

    def named_parameters(
        self, prefix: str = ""
    ) -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, getattr(self, name)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def train(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state["buffer:" + name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = {name: None for name, _ in self.named_buffers()}
        for key, value in state.items():
            if key.startswith("buffer:"):
                name = key[len("buffer:"):]
                if name not in buffers:
                    raise ModelError(f"unexpected buffer {name!r} in state")
                self._assign_buffer(name, value)
            else:
                if key not in params:
                    raise ModelError(f"unexpected parameter {key!r} in state")
                if params[key].data.shape != value.shape:
                    raise ModelError(
                        f"shape mismatch for {key!r}: "
                        f"{params[key].data.shape} vs {value.shape}"
                    )
                params[key].data = value.astype(params[key].data.dtype)
                # Invalidate any compiled inference plan folded from the
                # previous weights (repro.nn.inference memoizes on this).
                params[key].bump_version()
        missing = set(params) - {
            k for k in state if not k.startswith("buffer:")
        }
        if missing:
            raise ModelError(f"missing parameters in state: {sorted(missing)}")

    def _assign_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        target: Module = self
        for part in parts[:-1]:
            target = target._modules[part]
        target._buffers[parts[-1]] = value
        object.__setattr__(target, parts[-1], value)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            kaiming_uniform(rng, (out_features, in_features), in_features),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features, dtype=np.float32),
                   requires_grad=True)
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ModelError(
                f"Linear expects {self.in_features} input features, got "
                f"{x.shape[-1]}"
            )
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution on NCHW tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            kaiming_uniform(
                rng,
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in,
            ),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_channels, dtype=np.float32),
                   requires_grad=True)
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride,
            padding=self.padding,
        )


class ConvTranspose2d(Module):
    """Stride-2 transposed convolution as zero-upsampling + convolution.

    Doubles the spatial size; used by the hourglass upsampling path.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size % 2 != 1:
            raise ModelError("ConvTranspose2d requires an odd kernel size")
        self.stride = stride
        self.conv = Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=1,
            padding=kernel_size // 2,
            rng=rng,
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(F.upsample_zeros(x, self.stride))


class BatchNorm2d(Module):
    """Batch normalisation over NCHW channels with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.1,
                 eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(np.ones(channels, dtype=np.float32),
                            requires_grad=True)
        self.beta = Tensor(np.zeros(channels, dtype=np.float32),
                           requires_grad=True)
        self.register_buffer(
            "running_mean", np.zeros(channels, dtype=np.float32)
        )
        self.register_buffer(
            "running_var", np.ones(channels, dtype=np.float32)
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ModelError(
                f"BatchNorm2d expects (N, {self.channels}, H, W), got "
                f"{x.shape}"
            )
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            m = self.momentum
            new_mean = ((1 - m) * self.running_mean + m * mean).astype(
                np.float32
            )
            new_var = ((1 - m) * self.running_var + m * var).astype(
                np.float32
            )
            self._buffers["running_mean"] = new_mean
            self._buffers["running_var"] = new_var
            object.__setattr__(self, "running_mean", new_mean)
            object.__setattr__(self, "running_var", new_var)
            return F.batch_norm2d(
                x, self.gamma, self.beta, mean, var, self.eps,
                batch_stats=True,
            )
        return F.batch_norm2d(
            x, self.gamma, self.beta, self.running_mean, self.running_var,
            self.eps, batch_stats=False,
        )


class GroupNorm(Module):
    """Group normalisation over NCHW channels (batch-size independent)."""

    def __init__(self, groups: int, channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        if groups < 1 or channels % groups != 0:
            raise ModelError(
                f"channels ({channels}) must be divisible by groups "
                f"({groups})"
            )
        self.groups = groups
        self.channels = channels
        self.eps = eps
        self.gamma = Tensor(np.ones(channels, dtype=np.float32),
                            requires_grad=True)
        self.beta = Tensor(np.zeros(channels, dtype=np.float32),
                           requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ModelError(
                f"GroupNorm expects (N, {self.channels}, H, W), got "
                f"{x.shape}"
            )
        return F.group_norm(x, self.groups, self.gamma, self.beta,
                            self.eps)


class LayerNorm(Module):
    """Layer normalisation over the last dimension.

    The mesh-recovery networks use fully-connected layers with layer
    normalisation (paper Sec. V).
    """

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Tensor(np.ones(features, dtype=np.float32),
                            requires_grad=True)
        self.beta = Tensor(np.zeros(features, dtype=np.float32),
                           requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.features:
            raise ModelError(
                f"LayerNorm expects trailing dim {self.features}, got "
                f"{x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normed = centred * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; identity in eval mode or at rate 0."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelError("dropout rate must lie in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = self._rng.random(x.shape) < keep
        return x * Tensor(mask.astype(np.float32) / keep)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
