"""Optimizers and learning-rate schedules.

The paper trains with an initial learning rate of 0.001 under cosine
decay; :class:`Adam` + :class:`CosineSchedule` reproduce that setup.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.tensor import Tensor


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ModelError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ModelError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def clip_gradients(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is <= ``max_norm``.

        Returns the pre-clip norm (useful for logging).
        """
        if max_norm <= 0:
            raise ModelError("max_norm must be positive")
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = math.sqrt(total)
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- flat gradient view (data-parallel allreduce) -------------------
    def grad_vector_size(self) -> int:
        """Length of the flattened gradient vector."""
        return int(sum(p.data.size for p in self.parameters))

    def grad_vector(self) -> np.ndarray:
        """All parameter gradients flattened into one float32 vector
        (missing gradients contribute zeros), in parameter order --
        the wire format of the campaign gradient bus."""
        parts = [
            (
                param.grad
                if param.grad is not None
                else np.zeros_like(param.data)
            ).ravel()
            for param in self.parameters
        ]
        return np.concatenate(parts).astype(np.float32, copy=False)

    def set_grad_vector(self, flat: np.ndarray) -> None:
        """Scatter a flat float32 vector back into per-parameter
        ``grad`` arrays (inverse of :meth:`grad_vector`)."""
        expected = self.grad_vector_size()
        if flat.shape != (expected,):
            raise ModelError(
                f"gradient vector has shape {flat.shape}, "
                f"expected ({expected},)"
            )
        offset = 0
        for param in self.parameters:
            size = param.data.size
            param.grad = (
                flat[offset : offset + size]
                .reshape(param.data.shape)
                .astype(param.data.dtype, copy=True)
            )
            offset += size

    # -- checkpointing --------------------------------------------------
    def _state_entries(self) -> dict:
        """Subclass hook: slot arrays / scalars beyond ``lr``."""
        return {}

    def _load_state_entries(self, state: dict) -> None:
        pass

    def state_dict(self) -> dict:
        """Full optimizer state for crash-safe checkpoints
        (:mod:`repro.resilience.checkpoint`): the learning rate plus
        every per-parameter slot array."""
        return {
            "type": type(self).__name__,
            "lr": self.lr,
            **self._state_entries(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict`."""
        if state.get("type") != type(self).__name__:
            raise ModelError(
                f"optimizer state is for {state.get('type')!r}, "
                f"not {type(self).__name__}"
            )
        self.lr = float(state["lr"])
        self._load_state_entries(state)

    @staticmethod
    def _restore_slots(target, source) -> None:
        """Copy checkpointed slot arrays over live ones, shape-checked."""
        if len(source) != len(target):
            raise ModelError(
                f"optimizer state has {len(source)} slot arrays, "
                f"expected {len(target)}"
            )
        for slot, saved in zip(target, source):
            saved = np.asarray(saved)
            if slot.shape != saved.shape:
                raise ModelError(
                    f"optimizer slot shape mismatch: "
                    f"{saved.shape} vs {slot.shape}"
                )
            slot[...] = saved


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ModelError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data = param.data - self.lr * update
            param.bump_version()

    def _state_entries(self) -> dict:
        return {"momentum": self.momentum, "velocity": list(self._velocity)}

    def _load_state_entries(self, state: dict) -> None:
        self.momentum = float(state["momentum"])
        self._restore_slots(self._velocity, state["velocity"])


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW-style when decay > 0)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ModelError("betas must lie in [0, 1)")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = param.data - self.lr * update
            param.bump_version()

    def _state_entries(self) -> dict:
        return {
            "t": self._t,
            "weight_decay": self.weight_decay,
            "m": list(self._m),
            "v": list(self._v),
        }

    def _load_state_entries(self, state: dict) -> None:
        self._t = int(state["t"])
        self.weight_decay = float(state["weight_decay"])
        self._restore_slots(self._m, state["m"])
        self._restore_slots(self._v, state["v"])


class RMSProp(Optimizer):
    """RMSProp with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        decay: float = 0.99,
        eps: float = 1e-8,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= decay < 1.0:
            raise ModelError("decay must lie in [0, 1)")
        if not 0.0 <= momentum < 1.0:
            raise ModelError("momentum must lie in [0, 1)")
        self.decay = decay
        self.eps = eps
        self.momentum = momentum
        self._sq = [np.zeros_like(p.data) for p in self.parameters]
        self._vel = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, sq, vel in zip(self.parameters, self._sq, self._vel):
            if param.grad is None:
                continue
            grad = param.grad
            sq *= self.decay
            sq += (1.0 - self.decay) * grad * grad
            update = grad / (np.sqrt(sq) + self.eps)
            if self.momentum:
                vel *= self.momentum
                vel += update
                update = vel
            param.data = param.data - self.lr * update
            param.bump_version()

    def _state_entries(self) -> dict:
        return {
            "decay": self.decay,
            "momentum": self.momentum,
            "sq": list(self._sq),
            "vel": list(self._vel),
        }

    def _load_state_entries(self, state: dict) -> None:
        self.decay = float(state["decay"])
        self.momentum = float(state["momentum"])
        self._restore_slots(self._sq, state["sq"])
        self._restore_slots(self._vel, state["vel"])


class StepSchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(
        self, optimizer: Optimizer, lr0: float, step_size: int,
        gamma: float = 0.5,
    ) -> None:
        if step_size < 1:
            raise ModelError("step_size must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ModelError("gamma must lie in (0, 1]")
        if lr0 <= 0:
            raise ModelError("lr0 must be positive")
        self.optimizer = optimizer
        self.lr0 = lr0
        self.step_size = step_size
        self.gamma = gamma
        self._step = 0

    def current_lr(self) -> float:
        return self.lr0 * self.gamma ** (self._step // self.step_size)

    def step(self) -> float:
        self._step += 1
        lr = self.current_lr()
        self.optimizer.lr = lr
        return lr


class EarlyStopping:
    """Patience-based early stopping on a monitored metric (lower is
    better). Call :meth:`update` per epoch; it returns True when training
    should stop."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ModelError("patience must be >= 1")
        if min_delta < 0:
            raise ModelError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.bad_epochs = 0

    def update(self, metric: float) -> bool:
        if self.best is None or metric < self.best - self.min_delta:
            self.best = metric
            self.bad_epochs = 0
            return False
        self.bad_epochs += 1
        return self.bad_epochs >= self.patience


class CosineSchedule:
    """Cosine learning-rate decay from ``lr0`` to ``lr_min`` over
    ``total_steps`` (the paper's schedule)."""

    def __init__(
        self, optimizer: Optimizer, lr0: float, total_steps: int,
        lr_min: float = 0.0,
    ) -> None:
        if total_steps < 1:
            raise ModelError("total_steps must be >= 1")
        if lr0 <= 0 or lr_min < 0 or lr_min > lr0:
            raise ModelError("require 0 <= lr_min <= lr0 and lr0 > 0")
        self.optimizer = optimizer
        self.lr0 = lr0
        self.lr_min = lr_min
        self.total_steps = total_steps
        self._step = 0

    def current_lr(self) -> float:
        progress = min(self._step / self.total_steps, 1.0)
        return self.lr_min + 0.5 * (self.lr0 - self.lr_min) * (
            1.0 + math.cos(math.pi * progress)
        )

    def step(self) -> float:
        """Advance one step and apply the new learning rate."""
        self._step += 1
        lr = self.current_lr()
        self.optimizer.lr = lr
        return lr
